(** Deployment execution engines (§3.3).

    One event-driven executor parameterized by policy knobs; two
    canonical configurations:

    - {!baseline_config}: reproduces stock Terraform behaviour — full
      state refresh before applying, a fixed parallelism cap of 10, a
      FIFO walk of the ready set, naive fixed backoff on throttling.
    - {!cloudless_config}: the paper's proposal — scoped refresh,
      critical-path-first scheduling (remaining-longest-path priority),
      client-side rate pacing that avoids 429s entirely, exponential
      backoff with deterministic jitter.

    The executor drives the discrete-event {!Cloudless_sim.Cloud} via
    callbacks; all timing comes from the simulated clock. *)

module Addr = Cloudless_hcl.Addr
module Value = Cloudless_hcl.Value
module Smap = Value.Smap
module Cloud = Cloudless_sim.Cloud
module Rate_limiter = Cloudless_sim.Rate_limiter
module Service_model = Cloudless_sim.Service_model
module Prng = Cloudless_sim.Prng
module State = Cloudless_state.State
module Journal = Cloudless_state.Journal
module Failure = Cloudless_sim.Failure
module Diagnostic = Cloudless_error.Diagnostic
module Dag = Cloudless_graph.Dag
module Plan = Cloudless_plan.Plan

type schedule_policy = Fifo | Critical_path

(** Ready-set implementation.  [Sched_heap] is the default: a shared
    {!Cloudless_sim.Pqueue} binary heap giving O(log n) admissions.
    [Sched_list] is the historical O(n)-per-pick list scan, kept as a
    reference implementation for scheduler-overhead benchmarks (E11)
    and for equivalence tests — both produce identical pick orders. *)
type scheduler = Sched_heap | Sched_list

type refresh_mode = Refresh_none | Refresh_full | Refresh_scoped of Addr.Set.t

type config = {
  name : string;
  parallelism : int option;  (** concurrent in-flight ops; None = unbounded *)
  policy : schedule_policy;
  client_pacing : bool;  (** §3.3: admission control against API limits *)
  max_retries : int;
  backoff_base : float;
  backoff_exponential : bool;
  refresh : refresh_mode;
  pacing_budget : float * float;
      (** (burst capacity, refill/s) the pacer assumes the provider
          grants — the documented API budget *)
}

(* Terraform defaults: -parallelism=10, full refresh, plain walk.
   Providers retry throttled calls many times with exponential backoff,
   so give the baseline the same retry budget — the engines differ in
   *scheduling and admission*, not persistence. *)
let baseline_config =
  {
    name = "baseline";
    parallelism = Some 10;
    policy = Fifo;
    client_pacing = false;
    max_retries = 12;
    backoff_base = 2.;
    backoff_exponential = true;
    refresh = Refresh_full;
    pacing_budget = (50., 2.);
  }

let cloudless_config =
  {
    name = "cloudless";
    parallelism = None;
    policy = Critical_path;
    client_pacing = true;
    max_retries = 12;
    backoff_base = 2.;
    backoff_exponential = true;
    refresh = Refresh_none;  (* set per run: scoped *)
    pacing_budget = (50., 2.);
  }

type failure = { faddr : Addr.t; reason : string }

type report = {
  engine : string;
  started_at : float;
  finished_at : float;
  makespan : float;
  refresh_reads : int;
  refresh_duration : float;
  api_calls : int;  (** calls issued by this run (including retries) *)
  throttled : int;  (** 429 responses observed *)
  retries : int;
  applied : Addr.t list;
  failed : failure list;
  skipped : Addr.t list;  (** skipped because a dependency failed *)
  state : State.t;  (** state after the run *)
  sched_picks : int;  (** ready-set admissions performed *)
  sched_time : float;
      (** real (wall-clock) seconds spent inside ready-set operations —
          the engine's own scheduling overhead, as opposed to simulated
          cloud time *)
  peak_ready : int;  (** high-water mark of the ready set *)
  diagnostics : Diagnostic.t list;
      (** structured errors raised during execution (currently: retry
          exhaustion), in occurrence order *)
}

let succeeded r = r.failed = [] && r.skipped = []

(* ------------------------------------------------------------------ *)
(* Unknown resolution at apply time                                    *)
(* ------------------------------------------------------------------ *)

(* A desired attribute that referenced another resource's computed
   attribute was planned as [Vunknown "addr.attr"]; once the dependency
   is applied its real value is in state. *)
(* Split an unknown's "addr.attr" payload.  Separated out so the
   executor can memoize it: every instance of a fleet carries the same
   handful of references, and re-parsing the address per change was a
   measurable slice of apply-time allocation. *)
let split_unknown p : (Addr.t * string) option =
  match String.rindex_opt p '.' with
  | None -> None
  | Some i -> (
      let addr_part = String.sub p 0 i in
      let attr = String.sub p (i + 1) (String.length p - i - 1) in
      match Addr.of_string addr_part with
      | Some addr -> Some (addr, attr)
      | None -> None)

(* The worker is parameterized by the splitter and the lookup so the
   executor can route it through its split memo and apply-time write
   overlay (state-to-be, not yet folded into a [State.t]); the public
   entry points close over a plain state. *)
let rec resolve_value_gen split find (v : Value.t) : Value.t =
  match v with
  | Value.Vunknown p -> (
      match split p with
      | None -> Value.Vnull
      | Some (addr, attr) -> (
          match find addr with
          | Some rs -> (
              match Smap.find_opt attr rs.State.attrs with
              | Some v -> v
              | None -> Value.Vnull)
          | None -> Value.Vnull))
  | Value.Vlist vs ->
      (* Preserve sharing: almost no attribute holds an unknown at apply
         time, and rebuilding every list/map on the hot path costs real
         minor-heap words at the million-resource scale. *)
      let vs' = List.map (resolve_value_gen split find) vs in
      if List.for_all2 (fun a b -> a == b) vs vs' then v else Value.Vlist vs'
  | Value.Vmap m ->
      let m' =
        Smap.fold
          (fun k sub acc ->
            let sub' = resolve_value_gen split find sub in
            if sub' == sub then acc else Smap.add k sub' acc)
          m m
      in
      if m' == m then v else Value.Vmap m'
  | v -> v

let resolve_attrs_gen split find attrs =
  Smap.fold
    (fun k sub acc ->
      let sub' = resolve_value_gen split find sub in
      if sub' == sub then acc else Smap.add k sub' acc)
    attrs attrs

let resolve_value state v =
  resolve_value_gen split_unknown (fun a -> State.find_opt state a) v

let resolve_attrs state attrs =
  resolve_attrs_gen split_unknown (fun a -> State.find_opt state a) attrs

(* ------------------------------------------------------------------ *)
(* Refresh phase                                                       *)
(* ------------------------------------------------------------------ *)

type refresh_result = {
  rstate : State.t;
  reads : int;
  missing : Addr.t list;  (** in state but gone from the cloud (drift) *)
  rduration : float;
}

(** Re-read cloud attributes for tracked resources.  [addrs] limits the
    scope (None = all of state, Terraform's default full refresh). *)
let refresh (cloud : Cloud.t) ~engine ~(state : State.t) ?addrs
    ?(parallelism = 10) () : refresh_result =
  let targets =
    match addrs with
    | None -> State.resources state
    | Some set ->
        List.filter
          (fun (r : State.resource_state) -> Addr.Set.mem r.State.addr set)
          (State.resources state)
  in
  let started = Cloud.now cloud in
  let state_ref = ref state in
  let missing = ref [] in
  let reads = ref 0 in
  (* FIFO work list; throttled reads re-enter at the back.  A [Queue.t]
     keeps both operations O(1) — the former list append degraded to
     quadratic under sustained throttling. *)
  let queue = Queue.create () in
  List.iter (fun r -> Queue.add r queue) targets;
  let in_flight = ref 0 in
  let actor = Cloudless_sim.Activity_log.Iac_engine engine in
  let rec pump () =
    if (not (Queue.is_empty queue)) && !in_flight < parallelism then begin
      let r = Queue.pop queue in
      incr in_flight;
      incr reads;
      Cloud.submit cloud ~actor
        (Cloud.Read { cloud_id = r.State.cloud_id })
        (fun result ->
          decr in_flight;
          (match result with
          | Ok attrs ->
              state_ref := State.update_attrs !state_ref r.State.addr attrs
          | Error (Cloud.Not_found _) -> missing := r.State.addr :: !missing
          | Error (Cloud.Throttled _) ->
              (* re-queue at the back; the limiter will recover *)
              Queue.add r queue
          | Error _ -> ());
          pump ());
      pump ()
    end
  in
  pump ();
  Cloud.run_until_idle cloud;
  {
    rstate = !state_ref;
    reads = !reads;
    missing = List.rev !missing;
    rduration = Cloud.now cloud -. started;
  }

(* ------------------------------------------------------------------ *)
(* Apply phase                                                         *)
(* ------------------------------------------------------------------ *)

type node_status = Pending | Running | Done | Failed of string | Skipped

let change_duration (c : Plan.change) =
  match c.Plan.action with
  | Plan.Create -> Service_model.expected c.Plan.rtype Service_model.Op_create
  | Plan.Update _ -> Service_model.expected c.Plan.rtype Service_model.Op_update
  | Plan.Replace _ ->
      Service_model.expected c.Plan.rtype Service_model.Op_delete
      +. Service_model.expected c.Plan.rtype Service_model.Op_create
  | Plan.Delete -> Service_model.expected c.Plan.rtype Service_model.Op_delete
  | Plan.Noop -> 0.

module Pq = Cloudless_sim.Pqueue

let now_mono () = Unix.gettimeofday ()

(** Apply a plan.  Returns the report; the returned state reflects all
    successful operations.  [sched] selects the ready-set
    implementation (default {!Sched_heap}); both orders are identical,
    see {!scheduler}.

    [journal] (optional) receives a write-ahead record of every cloud
    write: an {!Journal.Intent} flushed *before* the call leaves the
    engine, the matching {!Journal.Outcome} as soon as the cloud
    answers — the crash-safety substrate (see [Recovery]).

    [crash] injects engine process death: with [Crash_after k] the
    apply raises {!Failure.Engine_crashed} at the (k+1)-th write — its
    intent is journaled, the cloud call never issued — and every
    callback belonging to the dead engine is disarmed, so operations
    already in flight complete on the cloud side with nobody
    listening, exactly like a killed process. *)
let apply (cloud : Cloud.t) ~(config : config) ~(state : State.t)
    ~(plan : Plan.t) ?(seed = 7) ?(sched = Sched_heap)
    ?(trace = Cloudless_obs.Trace.null) ?journal ?breaker
    ?(crash = Failure.No_crash) () : report =
  let module Trace = Cloudless_obs.Trace in
  Trace.with_span trace "execute" @@ fun () ->
  Trace.meta trace "engine" config.name;
  let prng = Prng.create seed in
  let actor = Cloudless_sim.Activity_log.Iac_engine config.name in
  let base_api_calls = Cloud.api_call_count cloud in
  let base_write_throttles = snd (Cloud.write_throttle_stats cloud) in
  let base_read_throttles = snd (Cloud.read_throttle_stats cloud) in

  (* phase 1: refresh *)
  let refresh_result =
    match config.refresh with
    | Refresh_none ->
        { rstate = state; reads = 0; missing = []; rduration = 0. }
    | Refresh_full -> refresh cloud ~engine:config.name ~state ()
    | Refresh_scoped addrs ->
        refresh cloud ~engine:config.name ~state ~addrs ()
  in
  (* Apply-time writes land in a hash overlay over the (immutable)
     post-refresh base; the final [State.t] is materialized exactly
     once after the run.  Folding [State.add] per change costs a
     O(log n) tree-path copy each — the single largest minor-heap
     producer on the million-create leg — where the overlay pays a few
     words per write and one O(n) bulk tree build (see
     {!Amap.of_sorted_array}).  [state_muts] counts every write the
     per-change sequence would have made, so the final serial is
     byte-identical to the historical fold. *)
  let base_state = refresh_result.rstate in
  let overlay : (Addr.t, State.resource_state option) Hashtbl.t =
    Hashtbl.create 1024
  in
  let state_muts = ref 0 in
  let live_find addr =
    match Hashtbl.find_opt overlay addr with
    | Some entry -> entry
    | None -> State.find_opt base_state addr
  in
  let state_add (row : State.resource_state) =
    Hashtbl.replace overlay row.State.addr (Some row);
    incr state_muts
  in
  let state_update_attrs addr attrs =
    match live_find addr with
    | None -> ()
    | Some r ->
        Hashtbl.replace overlay addr (Some { r with State.attrs });
        incr state_muts
  in
  let state_remove addr =
    Hashtbl.replace overlay addr None;
    incr state_muts
  in
  (* Unknown references repeat heavily (a fleet's instances all point
     at the same few subnets); split each distinct payload once. *)
  let split_cache : (string, (Addr.t * string) option) Hashtbl.t =
    Hashtbl.create 64
  in
  let split_memo p =
    match Hashtbl.find_opt split_cache p with
    | Some r -> r
    | None ->
        let r = split_unknown p in
        Hashtbl.add split_cache p r;
        r
  in
  let resolve_live attrs = resolve_attrs_gen split_memo live_find attrs in
  let resolve_live_value v = resolve_value_gen split_memo live_find v in
  let final_state () =
    if Hashtbl.length overlay = 0 then base_state
    else if State.size base_state = 0 then begin
      (* green-field apply (the 1M-create leg): one O(n) balanced build *)
      let rows =
        Hashtbl.fold
          (fun addr entry acc ->
            match entry with Some r -> (addr, r) :: acc | None -> acc)
          overlay []
        |> Array.of_list
      in
      Array.sort (fun (a, _) (b, _) -> Addr.compare a b) rows;
      State.of_sorted_rows
        ~outputs:(State.outputs base_state)
        ~serial:(State.serial base_state + !state_muts)
        rows
    end
    else
      let st =
        Hashtbl.fold
          (fun addr entry acc ->
            match entry with
            | Some r -> State.add acc r
            | None -> State.remove acc addr)
          overlay base_state
      in
      State.with_serial st (State.serial base_state + !state_muts)
  in
  let started_at = Cloud.now cloud in

  (* crash-safety machinery: write-ahead journaling + injected death *)
  let journal_append entry =
    match journal with Some j -> Journal.append j entry | None -> ()
  in
  (* op ids must stay unique across the segments of one journal (a
     resumed run appends to the journal of the crashed one), while the
     crash gate counts this run's ops only *)
  let ops_started =
    ref
      (match journal with
      | Some j -> Journal.max_op (Journal.entries j)
      | None -> 0)
  in
  let run_ops = ref 0 in
  let crashed = ref false in
  let diagnostics = ref [] in
  (* group commit ([Journal.Group k]): cloud calls are withheld in a
     FIFO while their intents accumulate in the journal's batch, then
     released together right after one {!Journal.barrier} — the
     write-ahead invariant (no call issued whose intent is not
     durable) holds batch-wise.  Release fires at K withheld calls and
     before every simulator step, so no op is ever withheld across a
     time advance: completion events are scheduled at the same
     simulated instant the WAL path would have used. *)
  let deferred : (unit -> unit) Queue.t = Queue.create () in
  let group =
    match journal with
    | Some j -> (
        match Journal.mode j with
        | Journal.Group k -> Some (j, k)
        | Journal.Wal -> None)
    | None -> None
  in
  let release_deferred () =
    match group with
    | Some (j, _) when not (Queue.is_empty deferred) ->
        Journal.barrier j;
        while not (Queue.is_empty deferred) do
          (Queue.pop deferred) ()
        done
    | _ -> ()
  in

  (* phase 2: apply — everything below runs on the flat interned
     execution graph ([Plan.exec_graph]): node ids are plan-order ints,
     adjacency is rank-sorted int arrays, per-node bookkeeping is flat
     arrays.  Pick orders are byte-identical to the historical
     [Addr]-keyed walk (see the exec_graph doc). *)
  let xg = Plan.exec_graph plan in
  let node_count = Plan.exec_size xg in
  let change_of id = xg.Plan.xchanges.(id) in
  let addr_of id = (change_of id).Plan.addr in
  journal_append
    (Journal.Run_started
       { engine = config.name; changes = node_count; time = started_at });
  (* Materialize the remaining-longest-path priority of every node once,
     up front, instead of consulting a [Dag] closure (and its
     hashtables) on every admission. *)
  let priority =
    match config.policy with
    | Fifo -> fun _ -> 0.
    | Critical_path ->
        let prio = Array.make node_count 0. in
        let order = Array.make (max 1 node_count) 0 in
        let offsets = Array.make (node_count + 1) 0 in
        let rounds = Plan.exec_rounds_into xg ~order ~offsets in
        for i = offsets.(rounds) - 1 downto 0 do
          let id = order.(i) in
          let tail =
            Array.fold_left
              (fun acc r -> Float.max acc prio.(r))
              0. xg.Plan.xrdeps.(id)
          in
          prio.(id) <- tail +. change_duration (change_of id)
        done;
        fun id -> prio.(id)
  in
  let status = Array.make node_count Pending in
  let remaining_deps = Array.map Array.length xg.Plan.xdeps in
  let in_flight = ref 0 in
  let retries = ref 0 in
  let applied = ref [] in
  let failed = ref [] in
  let picks = ref 0 in
  (* float-array cell, not a [float ref]: the accumulator is bumped
     twice per pick and a ref store would box each sum *)
  let sched_time = [| 0. |] in
  (* client-side pacing: mirror the provider's documented write budget *)
  let client_limiter =
    let capacity, refill_rate = config.pacing_budget in
    Rate_limiter.create ~capacity ~refill_rate
  in
  let backoff attempt =
    if config.backoff_exponential then
      config.backoff_base
      *. Float.pow 2. (float_of_int attempt)
      *. Prng.float_range prng 0.8 1.2
    else config.backoff_base
  in

  (* The ready set.  Both implementations produce the same pick order:

     - [Fifo] pops in insertion order (oldest first);
     - [Critical_path] pops the max priority, ties going to the most
       recently inserted node (what the historical newest-first list
       fold with a strict [>] yielded).

     The heap gives O(log n) picks and O(1) skip-removal (lazy
     tombstones); the list scan is O(n) per pick and kept only as the
     E11 reference. *)
  let add_ready, take_ready, remove_ready, peak_ready =
    match sched with
    | Sched_heap ->
        let order =
          match config.policy with
          | Fifo -> Pq.Min_first
          | Critical_path -> Pq.Max_first
        in
        let q : (int, int) Pq.t =
          Pq.create ~initial_capacity:node_count order
        in
        let add id = Pq.push q ~prio:(priority id) ~key:id id in
        let take () =
          match Pq.pop q with
          | None -> None
          | Some (_, _, id) ->
              incr picks;
              Some id
        in
        let remove id = ignore (Pq.remove q id) in
        (add, take, remove, fun () -> Pq.peak_length q)
    | Sched_list ->
        let ready : int list ref = ref [] in
        let count = ref 0 in
        let peak = ref 0 in
        let add id =
          ready := id :: !ready;
          incr count;
          if !count > !peak then peak := !count
        in
        let take () =
          match !ready with
          | [] -> None
          | _ ->
              let pick =
                match config.policy with
                | Fifo ->
                    (* FIFO = oldest first; list is newest-first *)
                    List.nth !ready (List.length !ready - 1)
                | Critical_path ->
                    List.fold_left
                      (fun best id ->
                        match best with
                        | None -> Some id
                        | Some b ->
                            if priority id > priority b then Some id else Some b)
                      None !ready
                    |> Option.get
              in
              ready := List.filter (fun id -> id <> pick) !ready;
              decr count;
              incr picks;
              Some pick
        in
        let remove id =
          let n = List.length !ready in
          ready := List.filter (fun i -> i <> id) !ready;
          count := !count - (n - List.length !ready)
        in
        (add, take, remove, fun () -> !peak)
  in
  let take_ready () =
    let t0 = now_mono () in
    let r = take_ready () in
    sched_time.(0) <- sched_time.(0) +. (now_mono () -. t0);
    r
  in

  let rec mark_skipped id =
    match status.(id) with
    | Pending | Running ->
        status.(id) <- Skipped;
        let t0 = now_mono () in
        remove_ready id;
        sched_time.(0) <- sched_time.(0) +. (now_mono () -. t0);
        Array.iter mark_skipped xg.Plan.xrdeps.(id)
    | _ -> ()
  in

  (* [complete] and [pump] are mutually recursive across the callback
     boundary; tie the knot with a forward reference. *)
  let pump_ref = ref (fun () -> ()) in
  let complete id ok =
    decr in_flight;
    (match ok with
    | Ok () ->
        status.(id) <- Done;
        applied := addr_of id :: !applied;
        Array.iter
          (fun d ->
            let n = remaining_deps.(d) - 1 in
            remaining_deps.(d) <- n;
            if n = 0 && status.(d) = Pending then add_ready d)
          xg.Plan.xrdeps.(id)
    | Error reason ->
        status.(id) <- Failed reason;
        failed := { faddr = addr_of id; reason } :: !failed;
        Array.iter mark_skipped xg.Plan.xrdeps.(id));
    !pump_ref ()
  in

  (* A single change may need several cloud ops (Replace).  [perform]
     runs the op sequence with retries, then calls [complete].

     Every write goes through [submit_logged]: journal the intent,
     apply the crash gate, issue the cloud call with a disarmable
     callback.  Outcomes are journaled at the top of each callback,
     before any state mutation, so the journal is never behind the
     in-memory record either. *)
  (* [submit_logged]/[ok_outcome]/[on_error] used to be let-bound
     inside [perform]; hoisting them into the recursive block saves
     three closure allocations per change on the hot path. *)
  (* The run-to-completion executor carries an optional breaker in
     observer mode: every write outcome feeds the (kind, rtype) cell,
     so retry exhaustion can be classified as outage (cell Open — the
     provider is down for this API) vs flake.  Unlike the control
     plane's applier it never fast-fails or parks: a one-shot CLI
     apply has nowhere to park work, it can only keep retrying. *)
  let breaker_kind = function
    | Journal.Op_create -> "create"
    | Journal.Op_update -> "update"
    | Journal.Op_delete -> "delete"
  in
  let record_breaker (c : Plan.change) kind result =
    match breaker with
    | None -> ()
    | Some b -> (
        let bkind = breaker_kind kind in
        match result with
        | Ok _ ->
            Breaker.success b ~now:(Cloud.now cloud) ~kind:bkind
              ~rtype:c.Plan.rtype
        | Error
            (Cloud.Throttled _ | Cloud.Transient _ | Cloud.Quota_exceeded _)
          ->
            Breaker.failure b ~now:(Cloud.now cloud) ~kind:bkind
              ~rtype:c.Plan.rtype
        | Error _ -> ())
  in
  let breaker_open (c : Plan.change) kind =
    match breaker with
    | None -> false
    | Some b ->
        Breaker.state b ~kind:(breaker_kind kind) ~rtype:c.Plan.rtype
        = Breaker.Open
  in
  let rec submit_logged (c : Plan.change) kind ~payload ~prior op handler =
    let addr = c.Plan.addr in
      incr ops_started;
      incr run_ops;
      let op_id = !ops_started in
      (* build the intent record only when a journal is attached — the
         bare-engine hot path must not pay for crash safety it never
         asked for *)
      (match journal with
      | None -> ()
      | Some j ->
          Journal.append j
            (Journal.Intent
               {
                 Journal.op = op_id;
                 iaddr = addr;
                 kind;
                 rtype = c.Plan.rtype;
                 region = c.Plan.region;
                 payload;
                 prior_cloud_id = prior;
                 deps = c.Plan.deps;
                 log_cursor =
                   Cloudless_sim.Activity_log.length (Cloud.log cloud);
                 itime = Cloud.now cloud;
               }));
      (match crash with
      | Failure.Crash_after k when !run_ops > k ->
          (* WAL: the intent is durable, the cloud call never leaves
             the engine.  Group: the intent may still sit in the
             unflushed batch — then it dies with the process
             ([Journal.abandon]) and so does its withheld call, which
             recovery simply replans.  Either way in-flight callbacks
             are disarmed. *)
          crashed := true;
          raise (Failure.Engine_crashed k)
      | _ -> ());
      match group with
      | None ->
          Cloud.submit cloud ~actor op (fun result ->
              record_breaker c kind result;
              if not !crashed then handler op_id result)
      | Some (_, k) ->
          Queue.add
            (fun () ->
              Cloud.submit cloud ~actor op (fun result ->
                  record_breaker c kind result;
                  if not !crashed then handler op_id result))
            deferred;
          if Queue.length deferred >= k then release_deferred ()
  and ok_outcome ~addr ~op ~kind ~cloud_id attrs =
      match journal with
      | None -> ()
      | Some j ->
          Journal.append j
            (Journal.Outcome
               {
                 Journal.oop = op;
                 oaddr = addr;
                 okind = kind;
                 ok = true;
                 cloud_id;
                 attrs;
                 retried = false;
                 reason = None;
                 otime = Cloud.now cloud;
               })
  and on_error ~id ~c ~attempt ~op ~kind err =
    let addr = c.Plan.addr in
    let record retried =
        match journal with
        | None -> ()
        | Some j ->
            Journal.append j
              (Journal.Outcome
                 {
                   Journal.oop = op;
                   oaddr = addr;
                   okind = kind;
                   ok = false;
                   cloud_id = None;
                   attrs = Smap.empty;
                   retried;
                   reason = Some (Cloud.error_to_string err);
                   otime = Cloud.now cloud;
                 })
      in
      match err with
      | Cloud.Throttled after when attempt < config.max_retries ->
          record true;
          incr retries;
          let delay = Float.max after (backoff attempt) in
          schedule_retry id c (attempt + 1) delay
      | Cloud.Transient _ when attempt < config.max_retries ->
          record true;
          incr retries;
          schedule_retry id c (attempt + 1) (backoff attempt)
      | err ->
          record false;
          (match err with
          | Cloud.Throttled _ | Cloud.Transient _ ->
              (* a retryable error out of retry budget: surface a
                 structured diagnostic, not just a failed report row.
                 With the circuit breaker Open for this (kind, rtype)
                 the exhaustion is an outage, not a flake — distinct
                 code so operators can tell them apart. *)
              if breaker_open c kind then begin
                Trace.count trace "retries_exhausted_outage" 1;
                diagnostics :=
                  Diagnostic.make ~stage:Diagnostic.Deploy
                    ~code:"retries-exhausted-outage" ~addr
                    (Printf.sprintf
                       "gave up after %d attempts with the %s/%s circuit \
                        breaker open — provider outage, not flake: %s"
                       (attempt + 1) (breaker_kind kind) c.Plan.rtype
                       (Cloud.error_to_string err))
                  :: !diagnostics
              end
              else begin
                Trace.count trace "retries_exhausted" 1;
                diagnostics :=
                  Diagnostic.make ~stage:Diagnostic.Deploy
                    ~code:"retries-exhausted" ~addr
                    (Printf.sprintf "gave up after %d attempts: %s"
                       (attempt + 1)
                       (Cloud.error_to_string err))
                  :: !diagnostics
              end
          | _ -> ());
          complete id (Error (Cloud.error_to_string err))
  and perform id (c : Plan.change) attempt =
    let addr = c.Plan.addr in
    match c.Plan.action with
    | Plan.Noop -> complete id (Ok ())
    | Plan.Create -> (
        match c.Plan.desired with
        | None -> complete id (Error "create without desired attributes")
        | Some desired ->
            let attrs = resolve_live desired in
            submit_logged c Journal.Op_create ~payload:attrs ~prior:None
              (Cloud.Create { rtype = c.Plan.rtype; region = c.Plan.region; attrs })
              (fun op result ->
                match result with
                | Ok cloud_attrs ->
                    let cloud_id =
                      match Smap.find_opt "id" cloud_attrs with
                      | Some (Value.Vstring s) -> s
                      | _ -> "?"
                    in
                    ok_outcome ~addr ~op ~kind:Journal.Op_create
                      ~cloud_id:(Some cloud_id) cloud_attrs;
                    state_add
                      {
                        State.addr = addr;
                        cloud_id;
                        rtype = c.Plan.rtype;
                        region = c.Plan.region;
                        attrs = cloud_attrs;
                        deps = c.Plan.deps;
                      };
                    complete id (Ok ())
                | Error err -> on_error ~id ~c ~attempt ~op ~kind:Journal.Op_create err))
    | Plan.Update changes -> (
        match (c.Plan.prior, c.Plan.desired) with
        | Some prior, Some _ ->
            let delta =
              List.fold_left
                (fun acc (ch : Plan.attr_change) ->
                  match ch.Plan.after with
                  | Some v ->
                      Smap.add ch.Plan.attr (resolve_live_value v) acc
                  | None -> acc)
                Smap.empty changes
            in
            submit_logged c Journal.Op_update ~payload:delta
              ~prior:(Some prior.State.cloud_id)
              (Cloud.Update { cloud_id = prior.State.cloud_id; attrs = delta })
              (fun op result ->
                match result with
                | Ok cloud_attrs ->
                    ok_outcome ~addr ~op ~kind:Journal.Op_update
                      ~cloud_id:(Some prior.State.cloud_id) cloud_attrs;
                    state_update_attrs addr cloud_attrs;
                    complete id (Ok ())
                | Error err -> on_error ~id ~c ~attempt ~op ~kind:Journal.Op_update err)
        | _ -> complete id (Error "update without prior state"))
    | Plan.Delete -> (
        match c.Plan.prior with
        | Some prior ->
            submit_logged c Journal.Op_delete ~payload:Smap.empty
              ~prior:(Some prior.State.cloud_id)
              (Cloud.Delete { cloud_id = prior.State.cloud_id })
              (fun op result ->
                match result with
                | Ok _ | Error (Cloud.Not_found _) ->
                    (* already gone = success for a delete *)
                    ok_outcome ~addr ~op ~kind:Journal.Op_delete
                      ~cloud_id:(Some prior.State.cloud_id) Smap.empty;
                    state_remove addr;
                    complete id (Ok ())
                | Error err -> on_error ~id ~c ~attempt ~op ~kind:Journal.Op_delete err)
        | None -> complete id (Error "delete without prior state"))
    | Plan.Replace _ -> (
        match (c.Plan.prior, c.Plan.desired) with
        | Some prior, Some desired ->
            let record_new op cloud_attrs k =
              let cloud_id =
                match Smap.find_opt "id" cloud_attrs with
                | Some (Value.Vstring s) -> s
                | _ -> "?"
              in
              ok_outcome ~addr ~op ~kind:Journal.Op_create ~cloud_id:(Some cloud_id)
                cloud_attrs;
              state_add
                {
                  State.addr = addr;
                  cloud_id;
                  rtype = c.Plan.rtype;
                  region = c.Plan.region;
                  attrs = cloud_attrs;
                  deps = c.Plan.deps;
                };
              k ()
            in
            if c.Plan.cbd then
              (* lifecycle create_before_destroy: the replacement comes
                 up first, then the old resource is destroyed — no
                 availability gap *)
              let attrs = resolve_live desired in
              submit_logged c Journal.Op_create ~payload:attrs ~prior:None
                (Cloud.Create
                   { rtype = c.Plan.rtype; region = c.Plan.region; attrs })
                (fun op result ->
                  match result with
                  | Ok cloud_attrs ->
                      record_new op cloud_attrs (fun () ->
                          submit_logged c Journal.Op_delete ~payload:Smap.empty
                            ~prior:(Some prior.State.cloud_id)
                            (Cloud.Delete { cloud_id = prior.State.cloud_id })
                            (fun op result ->
                              match result with
                              | Ok _ | Error (Cloud.Not_found _) ->
                                  ok_outcome ~addr ~op ~kind:Journal.Op_delete
                                    ~cloud_id:(Some prior.State.cloud_id)
                                    Smap.empty;
                                  complete id (Ok ())
                              | Error err ->
                                  on_error ~id ~c ~attempt ~op ~kind:Journal.Op_delete err))
                  | Error err -> on_error ~id ~c ~attempt ~op ~kind:Journal.Op_create err)
            else
              submit_logged c Journal.Op_delete ~payload:Smap.empty
                ~prior:(Some prior.State.cloud_id)
                (Cloud.Delete { cloud_id = prior.State.cloud_id })
                (fun op result ->
                  match result with
                  | Ok _ | Error (Cloud.Not_found _) ->
                      ok_outcome ~addr ~op ~kind:Journal.Op_delete
                        ~cloud_id:(Some prior.State.cloud_id) Smap.empty;
                      state_remove addr;
                      let attrs = resolve_live desired in
                      submit_logged c Journal.Op_create ~payload:attrs ~prior:None
                        (Cloud.Create
                           { rtype = c.Plan.rtype; region = c.Plan.region; attrs })
                        (fun op result ->
                          match result with
                          | Ok cloud_attrs ->
                              record_new op cloud_attrs (fun () ->
                                  complete id (Ok ()))
                          | Error err ->
                              on_error ~id ~c ~attempt ~op ~kind:Journal.Op_create err)
                  | Error err -> on_error ~id ~c ~attempt ~op ~kind:Journal.Op_delete err)
        | _ -> complete id (Error "replace without prior state"))

  and schedule_retry id c attempt delay =
    (* keep the op slot while backing off (like real engines do); the
       wake-up is inert if the engine died in the meantime *)
    Cloud.schedule cloud ~delay (fun () ->
        if not !crashed then perform id c attempt)

  and book acc k =
    (* reserve [k] write slots, returning the longest wait booked;
       recursive sibling of [pump] rather than a per-admission inner
       closure (the hot path allocates nothing here) *)
    if k = 0 then acc
    else
      book
        (Float.max acc (Rate_limiter.reserve client_limiter ~now:(Cloud.now cloud)))
        (k - 1)

  and pump () =
    let can_start =
      match config.parallelism with
      | Some cap -> !in_flight < cap
      | None -> true
    in
    if can_start then
      match take_ready () with
      | None -> ()
      | Some id ->
          let c = change_of id in
          incr in_flight;
          if config.client_pacing then begin
            (* §3.3: do not fire writes the provider would throttle.
               [reserve] books a token slot (possibly in the future), so
               queued ops space themselves at the provider's refill rate
               instead of re-bursting together. *)
            let writes_needed =
              match c.Plan.action with
              | Plan.Noop -> 0
              | Plan.Replace _ -> 2  (* delete + create *)
              | Plan.Create | Plan.Update _ | Plan.Delete -> 1
            in
            let wait = book 0. writes_needed in
            if wait > 0. then
              (* small guard so the op lands strictly after the refill
                 boundary (float-exact arrivals would race the bucket) *)
              Cloud.schedule cloud ~delay:(wait +. 0.05) (fun () ->
                  if not !crashed then begin
                    perform id c 0;
                    pump ()
                  end)
            else begin
              perform id c 0;
              pump ()
            end
          end
          else begin
            perform id c 0;
            pump ()
          end
  in

  pump_ref := pump;

  (* seed the ready set, in plan (insertion) order *)
  for id = 0 to node_count - 1 do
    if remaining_deps.(id) = 0 then add_ready id
  done;
  pump ();
  (* drive the simulation, pumping after every event; withheld
     group-commit calls release (behind their barrier) before each
     step so the event clock never advances past them *)
  let rec drive () =
    release_deferred ();
    if Cloud.step cloud then begin
      pump ();
      drive ()
    end
  in
  drive ();

  let finished_at = Cloud.now cloud in
  journal_append (Journal.Run_finished { time = finished_at });
  let skipped = ref [] in
  for id = node_count - 1 downto 0 do
    if status.(id) = Skipped then skipped := addr_of id :: !skipped
  done;
  let skipped = !skipped in
  let throttled =
    snd (Cloud.write_throttle_stats cloud)
    - base_write_throttles
    + snd (Cloud.read_throttle_stats cloud)
    - base_read_throttles
  in
  (* executor-owned per-stage counters; the cloud itself counted
     api_calls/throttled onto the active span as calls were submitted *)
  Trace.count trace "retries" !retries;
  Trace.count trace "refresh_reads" refresh_result.reads;
  Trace.count trace "sched_picks" !picks;
  Trace.count trace "applied" (List.length !applied);
  Trace.count trace "failed" (List.length !failed);
  Trace.count trace "skipped" (List.length skipped);
  {
    engine = config.name;
    started_at;
    finished_at;
    makespan = finished_at -. started_at;
    refresh_reads = refresh_result.reads;
    refresh_duration = refresh_result.rduration;
    api_calls = Cloud.api_call_count cloud - base_api_calls;
    throttled;
    retries = !retries;
    applied = List.rev !applied;
    failed = List.rev !failed;
    skipped;
    state = final_state ();
    sched_picks = !picks;
    sched_time = sched_time.(0);
    peak_ready = peak_ready ();
    diagnostics = List.rev !diagnostics;
  }
