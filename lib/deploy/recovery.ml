(** Crash recovery: journal replay + orphan adoption.

    After an engine dies mid-apply ({!Failure.Engine_crashed}, or a
    real process death), three kinds of evidence survive:

    - the last persisted state file (complete up to the previous run),
    - the write-ahead journal ({!Journal}) — every op's intent, and
      the outcome of every op the engine saw complete,
    - the cloud itself: its resources and its activity log.

    [resume_state] folds them back into one truthful state.  Known
    outcomes are merged by {!Journal.replay}.  Each intent whose
    outcome never reached the journal (the crash window) is
    reconciled against the cloud's own activity log:

    - {e create}: look for an unclaimed [Log_create] by this engine at
      or after the intent's log cursor, with matching type, region and
      requested attributes.  Found ⇒ the call did land before the
      crash — {e adopt} the resource under the intent's address (the
      fix for the classic orphan problem).  Not found ⇒ the call never
      made it — leave it to the re-plan.  A claim set keeps
      adoption bijective even when several identical resources (e.g.
      instances of one group) were in flight at once.
    - {e update}: re-read the live attributes — whether or not the
      patch landed, the refreshed row lets the re-plan re-diff it.
    - {e delete}: if the target cloud id is gone, the delete landed —
      drop the row; otherwise the re-plan will delete it again.

    The caller then re-plans the configuration against the recovered
    state and applies the remainder: total work stays bounded by what
    the crash actually interrupted. *)

module Addr = Cloudless_hcl.Addr
module Value = Cloudless_hcl.Value
module Smap = Value.Smap
module Cloud = Cloudless_sim.Cloud
module Activity_log = Cloudless_sim.Activity_log
module State = Cloudless_state.State
module Journal = Cloudless_state.Journal

type resume_report = {
  replayed : int;  (** journaled outcomes merged into state *)
  adopted : Addr.t list;  (** in-flight creates claimed from the log *)
  refreshed : Addr.t list;  (** in-flight updates re-read from the cloud *)
  confirmed_deleted : Addr.t list;  (** in-flight deletes proven done *)
  replanned : Addr.t list;
      (** intents recovery could not prove done — left to the re-plan *)
}

(** Does the live resource look like what the intent asked for?
    Every concrete requested attribute must match; computed
    attributes (id, arn, …) and nulls don't discriminate. *)
let attrs_match payload live =
  Smap.for_all
    (fun k v ->
      match v with
      | _ when k = "id" || k = "arn" || k = "region" ->
          true (* cloud-computed; the live value wins *)
      | Value.Vnull | Value.Vunknown _ -> true
      | v -> Smap.find_opt k live = Some v)
    payload

let resume_state (cloud : Cloud.t) ~engine ~(state : State.t)
    ~(entries : Journal.entry list) : State.t * resume_report =
  (* the dead engine's in-flight calls finish (or fail) on the cloud
     side first — recovery reads the settled record, like a restarted
     process observing the provider some time after the crash *)
  Cloud.run_until_idle cloud;
  let st = ref (Journal.replay state entries) in
  let replayed =
    List.length
      (List.filter
         (fun (s : Journal.op_status) ->
           match s.Journal.resolution with
           | Some o -> o.Journal.ok
           | None -> false)
         (Journal.analyze entries))
  in
  let log = Cloud.log cloud in
  let claimed : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let adopted = ref [] in
  let refreshed = ref [] in
  let confirmed = ref [] in
  let replanned = ref [] in
  List.iter
    (fun (i : Journal.intent) ->
      match i.Journal.kind with
      | Journal.Op_create -> (
          let candidate =
            List.find_opt
              (fun (e : Activity_log.entry) ->
                e.Activity_log.op = Activity_log.Log_create
                && e.Activity_log.actor = Activity_log.Iac_engine engine
                && e.Activity_log.rtype = i.Journal.rtype
                && e.Activity_log.region = i.Journal.region
                && (not (Hashtbl.mem claimed e.Activity_log.cloud_id))
                && State.find_by_cloud_id !st e.Activity_log.cloud_id = None
                && match Cloud.lookup cloud e.Activity_log.cloud_id with
                   | Some r -> attrs_match i.Journal.payload r.Cloud.attrs
                   | None -> false)
              (Activity_log.since log i.Journal.log_cursor)
          in
          match candidate with
          | Some e ->
              let cloud_id = e.Activity_log.cloud_id in
              Hashtbl.replace claimed cloud_id ();
              let live = Option.get (Cloud.lookup cloud cloud_id) in
              st :=
                State.add !st
                  {
                    State.addr = i.Journal.iaddr;
                    cloud_id;
                    rtype = i.Journal.rtype;
                    region = i.Journal.region;
                    attrs = live.Cloud.attrs;
                    deps = i.Journal.deps;
                  };
              adopted := i.Journal.iaddr :: !adopted
          | None -> replanned := i.Journal.iaddr :: !replanned)
      | Journal.Op_update -> (
          match
            Option.bind i.Journal.prior_cloud_id (fun cid ->
                Cloud.lookup cloud cid)
          with
          | Some live ->
              st := State.update_attrs !st i.Journal.iaddr live.Cloud.attrs;
              refreshed := i.Journal.iaddr :: !refreshed
          | None -> replanned := i.Journal.iaddr :: !replanned)
      | Journal.Op_delete -> (
          match i.Journal.prior_cloud_id with
          | Some cid when Cloud.lookup cloud cid = None ->
              (match State.find_opt !st i.Journal.iaddr with
              | Some r when r.State.cloud_id = cid ->
                  st := State.remove !st i.Journal.iaddr
              | _ -> ());
              confirmed := i.Journal.iaddr :: !confirmed
          | _ -> replanned := i.Journal.iaddr :: !replanned))
    (Journal.unresolved entries);
  ( !st,
    {
      replayed;
      adopted = List.rev !adopted;
      refreshed = List.rev !refreshed;
      confirmed_deleted = List.rev !confirmed;
      replanned = List.rev !replanned;
    } )

(** Cloud resources created by an IaC engine that no state row tracks
    — the orphan count E13 sweeps.  Computed from the activity log so
    it sees exactly what a reconciliation audit would. *)
let orphans (cloud : Cloud.t) ~(state : State.t) : string list =
  List.filter_map
    (fun (e : Activity_log.entry) ->
      match (e.Activity_log.op, e.Activity_log.actor) with
      | Activity_log.Log_create, Activity_log.Iac_engine _ ->
          let cid = e.Activity_log.cloud_id in
          if Cloud.lookup cloud cid <> None && State.find_by_cloud_id state cid = None
          then Some cid
          else None
      | _ -> None)
    (Activity_log.all (Cloud.log cloud))
  |> List.sort_uniq compare
