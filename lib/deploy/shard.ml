(** Domain-parallel apply over disjoint plan shards.

    A plan's execution graph often splits into weakly-connected
    components — independent fleets, tenants, or stacks with no
    dependency path between them.  Nothing one component does can be
    observed by another (no edges, no shared addresses), so each can
    be applied in its own hermetic simulation and the results merged
    after the fact.  That is what this module does:

    1. find the weakly-connected components of [Plan.exec_graph]
       (union-find over the flat adjacency, O(E α));
    2. cut the plan into one sub-plan per component (changes keep
       their plan order);
    3. run a full {!Executor.apply} per component, each against its
       own fresh cloud from [make_cloud], distributing components over
       [domains] OCaml 5 domains via an atomic work counter;
    4. merge deterministically.

    {b Determinism.}  The merge depends only on the per-component
    results, never on which domain ran a component or in what order
    they finished: shard reports are collected into a slot array
    indexed by component id, applied/failed/skipped lists concatenate
    in component order, the makespan is the max over components (all
    shard clouds start at simulated time 0), counters are sums, and
    state rows are folded component by component.  Hence the output is
    byte-identical for any [domains] value — E16 asserts this across
    [--domains {1,2,4}] — and [domains = 1] runs the exact same
    decomposition sequentially.

    {b Scope.}  Shards run journal-free (a write-ahead journal is a
    single ordered stream; sharding it would serialize the domains
    again) and with refresh forced off; crash injection is likewise
    unsupported.  Each shard talks to its own simulated cloud, so
    cloud ids are unique within a shard but may repeat across shards —
    fine for disjoint fleets, which never cross-reference. *)

module Addr = Cloudless_hcl.Addr
module State = Cloudless_state.State
module Cloud = Cloudless_sim.Cloud
module Plan = Cloudless_plan.Plan

type shard = {
  component : int;  (** component id (ascending first-change order) *)
  nodes : int;  (** actionable changes in this component *)
  report : Executor.report;
}

type report = {
  domains : int;
      (** effective worker-pool width: the requested count (0 = size to
          the machine) capped at [min components cores] — extra domains
          past either bound could never hold work *)
  cores : int;  (** [Domain.recommended_domain_count] at run time *)
  shards : shard list;  (** component order *)
  makespan : float;  (** max over shards (each starts at sim time 0) *)
  applied : Addr.t list;  (** concatenated in component order *)
  failed : Executor.failure list;
  skipped : Addr.t list;
  api_calls : int;
  retries : int;
  throttled : int;
  sched_picks : int;
  sched_time : float;
  peak_ready : int;  (** max over shards *)
  state : State.t;  (** input state updated with every shard's outcome *)
  wall_s : float;  (** real seconds for the whole sharded apply *)
}

let succeeded r = r.failed = [] && r.skipped = []

(** Weakly-connected components of the execution graph: returns
    [(comp, count)] where [comp.(id)] is the component of change [id].
    Components are numbered by their smallest member id, ascending, so
    the numbering is independent of traversal order. *)
let components (xg : Plan.exec_graph) : int array * int =
  let n = Plan.exec_size xg in
  let parent = Array.init n (fun i -> i) in
  let rec find i =
    if parent.(i) = i then i
    else begin
      let r = find parent.(i) in
      parent.(i) <- r;
      r
    end
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then
      (* smaller root wins, so a root is its component's smallest id *)
      if ra < rb then parent.(rb) <- ra else parent.(ra) <- rb
  in
  Array.iteri (fun id deps -> Array.iter (fun d -> union id d) deps) xg.Plan.xdeps;
  let comp = Array.make n (-1) in
  let count = ref 0 in
  for id = 0 to n - 1 do
    let r = find id in
    if comp.(r) = -1 then begin
      comp.(r) <- !count;
      incr count
    end;
    comp.(id) <- comp.(r)
  done;
  (comp, !count)

(* Run [jobs] on [domains] domains pulling indices from an atomic
   counter; results land in a slot array indexed by job, so completion
   order never leaks into the output.  A job's exception is re-raised
   on the calling domain after every worker has drained. *)
let run_jobs ~domains (jobs : (unit -> 'a) array) : 'a array =
  let n = Array.length jobs in
  let results : ('a, exn) result option array = Array.make n None in
  let run i =
    results.(i) <-
      Some (match jobs.(i) () with r -> Ok r | exception e -> Error e)
  in
  if domains <= 1 then
    for i = 0 to n - 1 do
      run i
    done
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          run i;
          loop ()
        end
      in
      loop ()
    in
    let helpers =
      List.init (min (domains - 1) (max 0 (n - 1))) (fun _ ->
          Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join helpers
  end;
  Array.map
    (function
      | Some (Ok r) -> r
      | Some (Error e) -> raise e
      | None -> assert false)
    results

(** Apply [plan] sharded by weakly-connected component, [domains]-wide
    ([0] = size the pool to the machine).  The pool is capped at
    [min components cores]: a domain per component is the most
    parallelism the decomposition exposes, and domains beyond the core
    count only add scheduler pressure.  [make_cloud c] must build a
    fresh, independent cloud for component [c] — shards never share a
    simulation.  [config.refresh] is forced to [Refresh_none] and
    journaling/crash injection are unavailable (see the module doc).
    The result is byte-identical for any [domains] value. *)
let apply ~(make_cloud : int -> Cloud.t) ?(domains = 1)
    ~(config : Executor.config) ~(state : State.t) ~(plan : Plan.t)
    ?(seed = 7) ?(sched = Executor.Sched_heap) () : report =
  let wall0 = Unix.gettimeofday () in
  (* Touch the schema catalog before spawning: its registry hashtable
     is populated by a module initializer and read-only afterwards, so
     forcing it here keeps the domains strictly read-side. *)
  ignore (Cloudless_schema.Catalog.find "aws_instance");
  let config = { config with Executor.refresh = Executor.Refresh_none } in
  let xg = Plan.exec_graph plan in
  let n = Plan.exec_size xg in
  let comp, ncomp = components xg in
  let cores = Domain.recommended_domain_count () in
  let domains =
    let requested = if domains <= 0 then cores else domains in
    max 1 (min requested (min (max 1 ncomp) cores))
  in
  (* cut the actionable changes into per-component sub-plans, keeping
     plan order inside each *)
  let buckets = Array.make ncomp [] in
  for id = n - 1 downto 0 do
    buckets.(comp.(id)) <- xg.Plan.xchanges.(id) :: buckets.(comp.(id))
  done;
  let jobs =
    Array.init ncomp (fun c () ->
        let sub =
          { Plan.changes = buckets.(c); default_region = plan.Plan.default_region }
        in
        let cloud = make_cloud c in
        Executor.apply cloud ~config ~state ~plan:sub ~seed ~sched ())
  in
  let reports = run_jobs ~domains jobs in
  let shards =
    List.init ncomp (fun c ->
        { component = c; nodes = List.length buckets.(c); report = reports.(c) })
  in
  (* deterministic merge: component order only *)
  let merged_state =
    Array.to_list reports
    |> List.mapi (fun c r -> (c, r))
    |> List.fold_left
         (fun st (c, (r : Executor.report)) ->
           List.fold_left
             (fun st (ch : Plan.change) ->
               match State.find_opt r.Executor.state ch.Plan.addr with
               | Some row -> State.add st row
               | None -> State.remove st ch.Plan.addr)
             st buckets.(c))
         state
  in
  let sum f = Array.fold_left (fun acc r -> acc + f r) 0 reports in
  let maxf f = Array.fold_left (fun acc r -> Float.max acc (f r)) 0. reports in
  {
    domains;
    cores;
    shards;
    makespan = maxf (fun r -> r.Executor.makespan);
    applied =
      List.concat_map (fun s -> s.report.Executor.applied) shards;
    failed = List.concat_map (fun s -> s.report.Executor.failed) shards;
    skipped = List.concat_map (fun s -> s.report.Executor.skipped) shards;
    api_calls = sum (fun r -> r.Executor.api_calls);
    retries = sum (fun r -> r.Executor.retries);
    throttled = sum (fun r -> r.Executor.throttled);
    sched_picks = sum (fun r -> r.Executor.sched_picks);
    sched_time =
      Array.fold_left (fun acc r -> acc +. r.Executor.sched_time) 0. reports;
    peak_ready =
      Array.fold_left (fun acc r -> max acc r.Executor.peak_ready) 0 reports;
    state = merged_state;
    wall_s = Unix.gettimeofday () -. wall0;
  }
