(** The deployment executor: one event-driven engine parameterized by
    policy knobs.  Two presets reproduce the paper's comparison —
    {!baseline_config} (Terraform-like: bounded parallelism, FIFO
    walk, full refresh) and {!cloudless_config} (§3.3: unbounded
    admission under client pacing, critical-path scheduling, scoped
    refresh).

    The executor drives the discrete-event {!Cloudless_sim.Cloud};
    all times in the report are simulated seconds except
    [sched_time], which is real wall-clock overhead of the engine's
    own ready-set bookkeeping. *)

module Addr = Cloudless_hcl.Addr
module Value = Cloudless_hcl.Value
module Smap = Value.Smap
module Cloud = Cloudless_sim.Cloud
module State = Cloudless_state.State
module Journal = Cloudless_state.Journal
module Failure = Cloudless_sim.Failure
module Diagnostic = Cloudless_error.Diagnostic
module Plan = Cloudless_plan.Plan

type schedule_policy = Fifo | Critical_path

(** Ready-set implementation.  [Sched_heap] is the default: a shared
    {!Cloudless_sim.Pqueue} binary heap giving O(log n) admissions.
    [Sched_list] is the historical O(n)-per-pick list scan, kept as a
    reference implementation for scheduler-overhead benchmarks (E11)
    and for equivalence tests — both produce identical pick orders. *)
type scheduler = Sched_heap | Sched_list

type refresh_mode = Refresh_none | Refresh_full | Refresh_scoped of Addr.Set.t

type config = {
  name : string;
  parallelism : int option;  (** concurrent in-flight ops; None = unbounded *)
  policy : schedule_policy;
  client_pacing : bool;  (** §3.3: admission control against API limits *)
  max_retries : int;
  backoff_base : float;
  backoff_exponential : bool;
  refresh : refresh_mode;
  pacing_budget : float * float;
      (** (burst capacity, refill/s) the pacer assumes the provider
          grants — the documented API budget *)
}

val baseline_config : config
val cloudless_config : config

type failure = { faddr : Addr.t; reason : string }

type report = {
  engine : string;
  started_at : float;
  finished_at : float;
  makespan : float;
  refresh_reads : int;
  refresh_duration : float;
  api_calls : int;  (** calls issued by this run (including retries) *)
  throttled : int;  (** 429 responses observed *)
  retries : int;
  applied : Addr.t list;
  failed : failure list;
  skipped : Addr.t list;  (** skipped because a dependency failed *)
  state : State.t;  (** state after the run *)
  sched_picks : int;  (** ready-set admissions performed *)
  sched_time : float;
      (** real (wall-clock) seconds spent inside ready-set operations —
          the engine's own scheduling overhead, as opposed to simulated
          cloud time *)
  peak_ready : int;  (** high-water mark of the ready set *)
  diagnostics : Diagnostic.t list;
      (** structured errors raised during execution (currently: retry
          exhaustion), in occurrence order *)
}

val succeeded : report -> bool

(** Substitute [Vunknown "addr.attr"] placeholders (planned references
    to not-yet-applied resources) with the real values now in state. *)
val resolve_value : State.t -> Value.t -> Value.t

val resolve_attrs : State.t -> Value.t Smap.t -> Value.t Smap.t

type refresh_result = {
  rstate : State.t;
  reads : int;
  missing : Addr.t list;  (** in state but gone from the cloud (drift) *)
  rduration : float;
}

(** Re-read cloud attributes for tracked resources.  [addrs] limits the
    scope (None = all of state, Terraform's default full refresh). *)
val refresh :
  Cloud.t ->
  engine:string ->
  state:State.t ->
  ?addrs:Addr.Set.t ->
  ?parallelism:int ->
  unit ->
  refresh_result

(** Per-node lifecycle, exposed for consumers that mirror the
    executor's bookkeeping (the control plane's applier). *)
type node_status = Pending | Running | Done | Failed of string | Skipped

(** Expected simulated duration of a change under the service model. *)
val change_duration : Plan.change -> float

(** Apply a plan.  Returns the report; the returned state reflects all
    successful operations.

    [journal] (optional) receives a write-ahead record of every cloud
    write: a {!Journal.Intent} made durable *before* the call leaves
    the engine, the matching {!Journal.Outcome} as soon as the cloud
    answers — the crash-safety substrate (see {!Recovery}).  In
    [Journal.Group k] mode cloud calls are withheld behind the batch's
    flush barrier (released at [k] pending calls and before every
    simulator step), so the write-ahead invariant holds batch-wise;
    see {!Journal.mode} for the crash-window contract.

    [crash] injects engine process death: with [Crash_after k] the
    apply raises {!Failure.Engine_crashed} at the (k+1)-th write — the
    cloud call never issued — and every callback belonging to the dead
    engine is disarmed, so operations already in flight complete on
    the cloud side with nobody listening, exactly like a killed
    process.

    [breaker] (optional) attaches a circuit {!Breaker} in observer
    mode: every write outcome feeds its (kind, rtype) cell, and retry
    exhaustion while the cell is Open is reported with the distinct
    diagnostic code ["retries-exhausted-outage"] (vs the generic
    ["retries-exhausted"]) so operators can tell a provider outage
    from a flake. *)
val apply :
  Cloud.t ->
  config:config ->
  state:State.t ->
  plan:Plan.t ->
  ?seed:int ->
  ?sched:scheduler ->
  ?trace:Cloudless_obs.Trace.t ->
  ?journal:Journal.t ->
  ?breaker:Breaker.t ->
  ?crash:Failure.crash_policy ->
  unit ->
  report
