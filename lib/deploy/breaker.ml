(* Circuit breakers keyed by (cloud API kind, resource type).

   A cell trips Open after a run of consecutive failures, rejects all
   traffic for a cooldown window (fast-fail, no cloud call, no retry
   budget burned), then admits exactly one half-open probe; the probe's
   outcome closes the cell or re-opens it with a longer cooldown.  The
   machine is pure bookkeeping — deterministic, no PRNG, no clock of
   its own: callers pass simulated [now] on every transition-relevant
   call, so identical event orders give identical breaker histories. *)

type config = {
  failure_threshold : int;
      (** consecutive failures that trip a Closed cell Open *)
  cooldown : float;  (** seconds a fresh trip stays Open *)
  cooldown_factor : float;
      (** cooldown multiplier per consecutive re-trip (backoff) *)
  max_cooldown : float;
}

let default_config =
  {
    failure_threshold = 5;
    cooldown = 30.;
    cooldown_factor = 2.;
    max_cooldown = 600.;
  }

type state = Closed | Open | Half_open

let state_to_string = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half_open"

type cell = {
  ckind : string;
  crtype : string;
  mutable cstate : state;
  mutable failures : int;  (** consecutive failures while Closed *)
  mutable trips : int;  (** consecutive Opens without a Close between *)
  mutable open_until : float;  (** when Open: earliest probe time *)
  mutable probing : bool;  (** when Half_open: probe in flight *)
}

type t = {
  config : config;
  cells : (string * string, cell) Hashtbl.t;
  mutable rejections : int;
  mutable violations : int;
  on_transition :
    kind:string -> rtype:string -> before:state -> after:state ->
    now:float -> unit;
}

let create ?(config = default_config)
    ?(on_transition = fun ~kind:_ ~rtype:_ ~before:_ ~after:_ ~now:_ -> ())
    () =
  { config; cells = Hashtbl.create 8; rejections = 0; violations = 0;
    on_transition }

let cell t ~kind ~rtype =
  let key = (kind, rtype) in
  match Hashtbl.find_opt t.cells key with
  | Some c -> c
  | None ->
      let c =
        { ckind = kind; crtype = rtype; cstate = Closed; failures = 0;
          trips = 0; open_until = 0.; probing = false }
      in
      Hashtbl.replace t.cells key c;
      c

let transition t c after ~now =
  if c.cstate <> after then begin
    let before = c.cstate in
    c.cstate <- after;
    t.on_transition ~kind:c.ckind ~rtype:c.crtype ~before ~after ~now
  end

(** Ask permission to issue one cloud call.  [`Reject d] means the
    cell is Open (or a half-open probe is already in flight): fail
    fast, retry no earlier than [d] seconds from now.  An Open cell
    whose cooldown has elapsed transitions to Half_open and grants the
    caller the probe slot. *)
let acquire t ~now ~kind ~rtype =
  match Hashtbl.find_opt t.cells (kind, rtype) with
  | None -> `Proceed  (* no history = Closed *)
  | Some c -> (
      match c.cstate with
      | Closed -> `Proceed
      | Open ->
          if now >= c.open_until then begin
            transition t c Half_open ~now;
            c.probing <- true;
            `Proceed
          end
          else begin
            t.rejections <- t.rejections + 1;
            `Reject (c.open_until -. now)
          end
      | Half_open ->
          if c.probing then begin
            t.rejections <- t.rejections + 1;
            `Reject 1.0  (* probe pending; its verdict lands shortly *)
          end
          else begin
            c.probing <- true;
            `Proceed
          end)

let trip t c ~now =
  c.trips <- c.trips + 1;
  let cd =
    Float.min t.config.max_cooldown
      (t.config.cooldown
      *. Float.pow t.config.cooldown_factor (float_of_int (c.trips - 1)))
  in
  c.open_until <- now +. cd;
  c.failures <- 0;
  transition t c Open ~now

(** Record a successful cloud call for this cell. *)
let success t ~now ~kind ~rtype =
  match Hashtbl.find_opt t.cells (kind, rtype) with
  | None -> ()
  | Some c -> (
      match c.cstate with
      | Closed -> c.failures <- 0
      | Half_open ->
          c.probing <- false;
          c.failures <- 0;
          c.trips <- 0;
          transition t c Closed ~now
      | Open -> ()  (* stale completion from before the trip *))

(** Record a failed (retryable) cloud call for this cell. *)
let failure t ~now ~kind ~rtype =
  let c = cell t ~kind ~rtype in
  match c.cstate with
  | Closed ->
      c.failures <- c.failures + 1;
      if c.failures >= t.config.failure_threshold then trip t c ~now
  | Half_open ->
      c.probing <- false;
      trip t c ~now
  | Open -> ()

let state t ~kind ~rtype =
  match Hashtbl.find_opt t.cells (kind, rtype) with
  | None -> Closed
  | Some c -> c.cstate

let open_cells t =
  Hashtbl.fold (fun _ c n -> if c.cstate = Open then n + 1 else n) t.cells 0

let any_open t =
  Hashtbl.fold (fun _ c acc -> acc || c.cstate = Open) t.cells false

(** Earliest time any Open cell will admit a half-open probe. *)
let next_probe_at t =
  Hashtbl.fold
    (fun _ c acc ->
      if c.cstate <> Open then acc
      else
        match acc with
        | None -> Some c.open_until
        | Some a -> Some (Float.min a c.open_until))
    t.cells None

(** Tripwire for the invariant "no cloud call is issued while the cell
    is Open": call at the submit site, after {!acquire} granted the
    call.  A grant leaves the cell Closed or Half_open, so observing
    Open here means a call path bypassed the breaker. *)
let note_issue t ~kind ~rtype =
  if state t ~kind ~rtype = Open then t.violations <- t.violations + 1

let rejections t = t.rejections
let violations t = t.violations

(* Machine-recognizable fast-fail reason: the shard parks work whose
   failures carry this prefix instead of counting them as permanent. *)
let open_prefix = "breaker open"

let open_reason ~kind ~rtype remaining =
  Printf.sprintf "%s: %s/%s unavailable (probe in %.1fs)" open_prefix kind
    rtype remaining

let is_open_reason s =
  String.length s >= String.length open_prefix
  && String.sub s 0 (String.length open_prefix) = open_prefix
