(** Domain-parallel apply over disjoint plan shards.

    A plan's execution graph often splits into weakly-connected
    components — independent fleets, tenants, or stacks with no
    dependency path between them.  Each component is cut into its own
    sub-plan, applied against its own hermetic cloud on a pool of
    OCaml 5 domains, and the results are merged deterministically: the
    output is byte-identical for any domain count (E16 asserts this).

    Shards run journal-free (a write-ahead journal is a single ordered
    stream; sharding it would serialize the domains again) and with
    refresh forced off; crash injection is likewise unsupported. *)

module Addr = Cloudless_hcl.Addr
module State = Cloudless_state.State
module Cloud = Cloudless_sim.Cloud
module Plan = Cloudless_plan.Plan

type shard = {
  component : int;  (** component id (ascending first-change order) *)
  nodes : int;  (** actionable changes in this component *)
  report : Executor.report;
}

type report = {
  domains : int;
      (** effective worker-pool width: the requested count (0 = size to
          the machine) capped at [min components cores] — extra domains
          past either bound could never hold work *)
  cores : int;  (** [Domain.recommended_domain_count] at run time *)
  shards : shard list;  (** component order *)
  makespan : float;  (** max over shards (each starts at sim time 0) *)
  applied : Addr.t list;  (** concatenated in component order *)
  failed : Executor.failure list;
  skipped : Addr.t list;
  api_calls : int;
  retries : int;
  throttled : int;
  sched_picks : int;
  sched_time : float;
  peak_ready : int;  (** max over shards *)
  state : State.t;  (** input state updated with every shard's outcome *)
  wall_s : float;  (** real seconds for the whole sharded apply *)
}

val succeeded : report -> bool

(** Weakly-connected components of the execution graph: returns
    [(comp, count)] where [comp.(id)] is the component of change [id].
    Components are numbered by their smallest member id, ascending, so
    the numbering is independent of traversal order. *)
val components : Plan.exec_graph -> int array * int

(** Apply [plan] sharded by weakly-connected component, [domains]-wide
    ([0] = size the pool to the machine).  The pool is capped at
    [min components cores]: a domain per component is the most
    parallelism the decomposition exposes, and domains beyond the core
    count only add scheduler pressure.  [make_cloud c] must build a
    fresh, independent cloud for component [c] — shards never share a
    simulation.  [config.refresh] is forced to [Refresh_none] and
    journaling/crash injection are unavailable (see the module doc).
    The result is byte-identical for any [domains] value. *)
val apply :
  make_cloud:(int -> Cloud.t) ->
  ?domains:int ->
  config:Executor.config ->
  state:State.t ->
  plan:Plan.t ->
  ?seed:int ->
  ?sched:Executor.scheduler ->
  unit ->
  report
