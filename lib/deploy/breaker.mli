(** Circuit breakers keyed by (cloud API kind, resource type).

    A cell trips Open after [failure_threshold] consecutive failures,
    rejects all traffic for a cooldown window (fast-fail: no cloud
    call, no retry budget burned), then admits exactly one half-open
    probe whose outcome closes the cell or re-opens it with a longer
    cooldown.  Deterministic: no PRNG, no wall clock — callers pass
    simulated [now]. *)

type config = {
  failure_threshold : int;
      (** consecutive failures that trip a Closed cell Open *)
  cooldown : float;  (** seconds a fresh trip stays Open *)
  cooldown_factor : float;
      (** cooldown multiplier per consecutive re-trip (backoff) *)
  max_cooldown : float;
}

(** threshold 5, cooldown 30 s doubling per re-trip, capped at 600 s *)
val default_config : config

type state = Closed | Open | Half_open

val state_to_string : state -> string

type t

(** [on_transition] fires on every cell state change (trip, probe
    admission, close) — the shard hangs metrics and degraded-mode
    tracking off it. *)
val create :
  ?config:config ->
  ?on_transition:
    (kind:string ->
    rtype:string ->
    before:state ->
    after:state ->
    now:float ->
    unit) ->
  unit ->
  t

(** Ask permission to issue one cloud call.  [`Reject d]: the cell is
    Open (or a half-open probe is in flight); fail fast and retry no
    earlier than [d] seconds from now.  An Open cell past its cooldown
    moves to Half_open and grants the caller the probe slot. *)
val acquire :
  t -> now:float -> kind:string -> rtype:string -> [ `Proceed | `Reject of float ]

(** Record a successful cloud call: resets the failure run; closes the
    cell if this was the half-open probe. *)
val success : t -> now:float -> kind:string -> rtype:string -> unit

(** Record a failed retryable cloud call: extends the failure run,
    trips the cell at the threshold; a failed half-open probe re-opens
    with a longer cooldown. *)
val failure : t -> now:float -> kind:string -> rtype:string -> unit

val state : t -> kind:string -> rtype:string -> state
val open_cells : t -> int
val any_open : t -> bool

(** Earliest time any Open cell will admit a half-open probe. *)
val next_probe_at : t -> float option

(** Tripwire for "no cloud call while Open": call at the submit site
    after {!acquire} granted the call; increments {!violations} if the
    cell is somehow Open. *)
val note_issue : t -> kind:string -> rtype:string -> unit

(** Calls fast-failed by {!acquire}. *)
val rejections : t -> int

(** {!note_issue} observations of a call issued while Open — always 0
    unless a call path bypasses the breaker. *)
val violations : t -> int

(** Fast-fail failure reason carrying the {!is_open_reason} prefix. *)
val open_reason : kind:string -> rtype:string -> float -> string

(** Does this failure reason come from a breaker fast-fail? *)
val is_open_reason : string -> bool
