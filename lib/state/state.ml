(** Deployment state: the IaC framework's record of what it believes
    exists in the cloud.

    Equivalent to Terraform's state file.  Maps resource addresses to
    their cloud identity and last-known attributes, and records the
    dependency edges observed at apply time (needed to destroy in the
    right order even after the configuration changed).

    Serialized as HCL itself — one [instance] block per resource — so
    the whole toolchain shares a single syntax. *)

module Addr = Cloudless_hcl.Addr
module Value = Cloudless_hcl.Value
module Smap = Value.Smap

type resource_state = {
  addr : Addr.t;
  cloud_id : string;
  rtype : string;
  region : string;
  attrs : Value.t Smap.t;  (** last attributes observed from the cloud *)
  deps : Addr.t list;  (** dependencies at the time of creation *)
}

type t = {
  serial : int;  (** bumped on every mutation; optimistic concurrency *)
  resources : resource_state Amap.t;
  mutable cloud_index : Addr.t Smap.t option;
      (** lazily-built reverse index (cloud id -> address), rebuilt on
          first {!find_by_cloud_id} after a topology change — keeping
          it incrementally would double the spine rebuilds on the
          apply hot path.  Cloud ids are unique per deployment; were a
          state ever to hold duplicates (e.g. a merge of independently
          numbered shards), the highest address wins — previously it
          was the latest add, equally arbitrary.  Updates that keep
          [resources] unchanged (or change only attributes) share the
          memo. *)
  outputs : (string * Value.t) list;
}

let empty =
  {
    serial = 0;
    resources = Amap.empty;
    cloud_index = None;
    outputs = [];
  }

let serial t = t.serial
let resources t = List.map snd (Amap.bindings t.resources)
let size t = Amap.cardinal t.resources
let find_opt t addr = Amap.find_opt addr t.resources
let mem t addr = Amap.mem addr t.resources
let outputs t = t.outputs

let add t (r : resource_state) =
  {
    t with
    serial = t.serial + 1;
    resources = Amap.add r.addr r t.resources;
    cloud_index = None;
  }

let remove t addr =
  {
    t with
    serial = t.serial + 1;
    resources = Amap.remove addr t.resources;
    cloud_index = None;
  }

let set_outputs t outputs = { t with serial = t.serial + 1; outputs }

(** Override the serial — for callers that batch mutations (the
    executor's apply overlay) and must account for every individual
    write the batch replaced, matching what a per-write [add]/[remove]
    sequence would have produced. *)
let with_serial t serial = { t with serial }

(** Build a state from rows sorted strictly ascending by address in
    O(n) — the bulk counterpart of folding {!add}, which pays a path
    copy per row.  The caller supplies the serial (see
    {!with_serial}); [outputs] defaults to none. *)
let of_sorted_rows ?(outputs = []) ~serial
    (rows : (Addr.t * resource_state) array) =
  { serial; resources = Amap.of_sorted_array rows; cloud_index = None; outputs }

(** Update just the attributes of a tracked resource. *)
let update_attrs t addr attrs =
  match Amap.find_opt addr t.resources with
  | None -> t
  | Some r ->
      {
        t with
        serial = t.serial + 1;
        resources = Amap.add addr { r with attrs } t.resources;
      }

(** The lookup function expansion needs (see
    {!Cloudless_hcl.Eval.env.state_lookup}). *)
let lookup t addr =
  Option.map (fun r -> r.attrs) (Amap.find_opt addr t.resources)

(* Force (and memoize) the reverse index. *)
let cloud_index t =
  match t.cloud_index with
  | Some ix -> ix
  | None ->
      let ix =
        Amap.fold
          (fun addr r acc -> Smap.add r.cloud_id addr acc)
          t.resources Smap.empty
      in
      t.cloud_index <- Some ix;
      ix

(** Find the state entry for a cloud id via the (lazily-built) reverse
    index: O(log n) per lookup instead of a fold over every tracked
    resource. *)
let find_by_cloud_id t cloud_id =
  match Smap.find_opt cloud_id (cloud_index t) with
  | Some addr -> Amap.find_opt addr t.resources
  | None -> None

(** Addresses tracked in state but not in [addrs] — candidates for
    deletion in a plan. *)
let orphans t addrs =
  (* hashed membership, not [Addr.Set.of_list]: [addrs] is every
     desired address (possibly millions) while the recorded resources
     may be few — don't pay a balanced-tree build on the big side *)
  if Amap.is_empty t.resources then []
  else begin
  let keep = Hashtbl.create (2 * Amap.cardinal t.resources) in
  List.iter (fun a -> Hashtbl.replace keep a ()) addrs;
  Amap.fold
    (fun addr _ acc -> if Hashtbl.mem keep addr then acc else addr :: acc)
    t.resources []
  |> List.rev
  end

(* ------------------------------------------------------------------ *)
(* Serialization (HCL blocks)                                          *)
(* ------------------------------------------------------------------ *)

module Ast = Cloudless_hcl.Ast
module Codec = Cloudless_hcl.Codec
module Printer = Cloudless_hcl.Printer
module Parser = Cloudless_hcl.Parser
module Loc = Cloudless_hcl.Loc

(* Corrupt state files surface through the typed error channel with a
   span pointing into the state file itself. *)
let corrupt ?(span = Loc.dummy) fmt =
  Cloudless_error.fail ~stage:Cloudless_error.Diagnostic.State_io
    ~code:"corrupt-state" ~span fmt

(* Unknowns must never reach the state file; replace them defensively
   with nulls on write. *)
let rec sanitize (v : Value.t) : Value.t =
  match v with
  | Value.Vunknown _ -> Value.Vnull
  | Value.Vlist vs -> Value.Vlist (List.map sanitize vs)
  | Value.Vmap m -> Value.Vmap (Smap.map sanitize m)
  | v -> v

let resource_to_block (r : resource_state) : Ast.block =
  let attr name value = { Ast.aname = name; avalue = value; aspan = Loc.dummy } in
  let attrs_obj =
    Codec.value_to_expr (Value.Vmap (Smap.map sanitize r.attrs))
  in
  let deps_list =
    Ast.mk
      (Ast.ListLit
         (List.map (fun d -> Ast.string_lit (Addr.to_string d)) r.deps))
  in
  {
    Ast.btype = "instance";
    labels = [ Addr.to_string r.addr ];
    bbody =
      {
        Ast.attrs =
          [
            attr "cloud_id" (Ast.string_lit r.cloud_id);
            attr "type" (Ast.string_lit r.rtype);
            attr "region" (Ast.string_lit r.region);
            attr "attributes" attrs_obj;
            attr "depends" deps_list;
          ];
        blocks = [];
      };
    bspan = Loc.dummy;
  }

let to_string t =
  let header =
    {
      Ast.btype = "state";
      labels = [];
      bbody =
        {
          Ast.attrs =
            [
              { Ast.aname = "serial"; avalue = Ast.mk (Ast.Int t.serial); aspan = Loc.dummy };
            ];
          blocks = [];
        };
      bspan = Loc.dummy;
    }
  in
  let output_blocks =
    List.map
      (fun (name, v) ->
        {
          Ast.btype = "output";
          labels = [ name ];
          bbody =
            {
              Ast.attrs =
                [
                  {
                    Ast.aname = "value";
                    avalue = Codec.value_to_expr (sanitize v);
                    aspan = Loc.dummy;
                  };
                ];
              blocks = [];
            };
          bspan = Loc.dummy;
        })
      t.outputs
  in
  Printer.config_to_string
    {
      Ast.attrs = [];
      blocks = (header :: List.map resource_to_block (resources t)) @ output_blocks;
    }

let literal ?(span = Loc.dummy) body name =
  match Ast.attr body name with
  | None -> corrupt ~span "state: missing %S" name
  | Some e -> (
      match Codec.expr_to_value e with
      | Some v -> v
      | None ->
          corrupt
            ?span:(Some (Option.value ~default:span (Ast.attr_span body name)))
            "state: %S is not literal" name)

let of_string ?(file = "<state>") src =
  let body = Parser.parse ~file src in
  List.fold_left
    (fun acc (b : Ast.block) ->
      match (b.Ast.btype, b.Ast.labels) with
      | "state", _ ->
          let serial =
            Value.to_int (literal ~span:b.Ast.bspan b.Ast.bbody "serial")
          in
          { acc with serial }
      | "instance", [ addr_str ] ->
          let span = b.Ast.bspan in
          let addr =
            match Addr.of_string addr_str with
            | Some a -> a
            | None -> corrupt ~span "state: bad address %s" addr_str
          in
          let attrs =
            match literal ~span b.Ast.bbody "attributes" with
            | Value.Vmap m -> m
            | _ -> corrupt ~span "state: attributes must be an object"
          in
          let deps =
            match literal ~span b.Ast.bbody "depends" with
            | Value.Vlist vs ->
                List.map
                  (fun v ->
                    match Addr.of_string (Value.to_string v) with
                    | Some a -> a
                    | None -> corrupt ~span "state: bad dep address")
                  vs
            | _ -> corrupt ~span "state: depends must be a list"
          in
          let r =
            {
              addr;
              cloud_id = Value.to_string (literal ~span b.Ast.bbody "cloud_id");
              rtype = Value.to_string (literal ~span b.Ast.bbody "type");
              region = Value.to_string (literal ~span b.Ast.bbody "region");
              attrs;
              deps;
            }
          in
          {
            acc with
            resources = Amap.add addr r acc.resources;
            cloud_index = None;
          }
      | "output", [ name ] ->
          let v = literal ~span:b.Ast.bspan b.Ast.bbody "value" in
          { acc with outputs = acc.outputs @ [ (name, v) ] }
      | ty, _ -> corrupt ~span:b.Ast.bspan "state: unexpected block %s" ty)
    empty body.Ast.blocks

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)
(* ------------------------------------------------------------------ *)

(** Attribute-level difference between two states for the same address
    set; used by drift reporting and the time machine. *)
type entry_diff = {
  diff_addr : Addr.t;
  changed : (string * Value.t option * Value.t option) list;
      (** (attr, old value, new value) *)
}

let diff_entry (a : resource_state) (b : resource_state) : entry_diff option =
  let keys =
    List.sort_uniq String.compare
      (List.map fst (Smap.bindings a.attrs) @ List.map fst (Smap.bindings b.attrs))
  in
  let changed =
    List.filter_map
      (fun k ->
        let va = Smap.find_opt k a.attrs and vb = Smap.find_opt k b.attrs in
        match (va, vb) with
        | Some x, Some y when Value.equal x y -> None
        | None, None -> None
        | _ -> Some (k, va, vb))
      keys
  in
  if changed = [] then None else Some { diff_addr = a.addr; changed }

type state_diff = {
  added : Addr.t list;  (** in [b] but not [a] *)
  removed : Addr.t list;  (** in [a] but not [b] *)
  modified : entry_diff list;
}

let diff a b =
  let added =
    Amap.fold
      (fun addr _ acc -> if Amap.mem addr a.resources then acc else addr :: acc)
      b.resources []
    |> List.rev
  in
  let removed =
    Amap.fold
      (fun addr _ acc -> if Amap.mem addr b.resources then acc else addr :: acc)
      a.resources []
    |> List.rev
  in
  let modified =
    Amap.fold
      (fun addr ra acc ->
        match Amap.find_opt addr b.resources with
        | None -> acc
        | Some rb -> (
            match diff_entry ra rb with None -> acc | Some d -> d :: acc))
      a.resources []
    |> List.rev
  in
  { added; removed; modified }

let diff_is_empty d = d.added = [] && d.removed = [] && d.modified = []
