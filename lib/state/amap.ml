(** Address-keyed balanced map, specialized for {!State}.

    Same AVL shape and operation costs as [Map.Make (Addr)], with one
    addition the stdlib cannot offer: {!of_sorted_array} builds the
    tree bottom-up in O(n) — n nodes allocated total, against the
    n·log n a fold of [add]s pays in path copies.  The apply hot path
    installs every created resource through that constructor (the
    executor batches its writes in a hash overlay and materializes the
    tree once), which is most of the difference between a GC-quiet
    1M-resource apply and one that spends its time copying spines. *)

module Addr = Cloudless_hcl.Addr

type 'a t =
  | Empty
  | Node of { l : 'a t; k : Addr.t; v : 'a; r : 'a t; h : int }

let empty = Empty
let is_empty = function Empty -> true | Node _ -> false
let height = function Empty -> 0 | Node { h; _ } -> h

let mk l k v r =
  let hl = height l and hr = height r in
  Node { l; k; v; r; h = (if hl >= hr then hl + 1 else hr + 1) }

(* Rebalance after one insertion/removal on either side; children are
   valid AVL trees whose heights differ by at most 3 (stdlib Map's
   invariant under single-op updates). *)
let bal l k v r =
  let hl = height l and hr = height r in
  if hl > hr + 2 then
    match l with
    | Empty -> invalid_arg "Amap.bal"
    | Node { l = ll; k = lk; v = lv; r = lr; _ } ->
        if height ll >= height lr then mk ll lk lv (mk lr k v r)
        else (
          match lr with
          | Empty -> invalid_arg "Amap.bal"
          | Node { l = lrl; k = lrk; v = lrv; r = lrr; _ } ->
              mk (mk ll lk lv lrl) lrk lrv (mk lrr k v r))
  else if hr > hl + 2 then
    match r with
    | Empty -> invalid_arg "Amap.bal"
    | Node { l = rl; k = rk; v = rv; r = rr; _ } ->
        if height rr >= height rl then mk (mk l k v rl) rk rv rr
        else (
          match rl with
          | Empty -> invalid_arg "Amap.bal"
          | Node { l = rll; k = rlk; v = rlv; r = rlr; _ } ->
              mk (mk l k v rll) rlk rlv (mk rlr rk rv rr))
  else mk l k v r

let rec add k v = function
  | Empty -> Node { l = Empty; k; v; r = Empty; h = 1 }
  | Node { l; k = k'; v = v'; r; _ } ->
      let c = Addr.compare k k' in
      if c = 0 then mk l k v r
      else if c < 0 then bal (add k v l) k' v' r
      else bal l k' v' (add k v r)

let rec find_opt k = function
  | Empty -> None
  | Node { l; k = k'; v; r; _ } ->
      let c = Addr.compare k k' in
      if c = 0 then Some v else find_opt k (if c < 0 then l else r)

let rec mem k = function
  | Empty -> false
  | Node { l; k = k'; r; _ } ->
      let c = Addr.compare k k' in
      c = 0 || mem k (if c < 0 then l else r)

let rec min_binding = function
  | Empty -> invalid_arg "Amap.min_binding"
  | Node { l = Empty; k; v; _ } -> (k, v)
  | Node { l; _ } -> min_binding l

let rec remove_min = function
  | Empty -> invalid_arg "Amap.remove_min"
  | Node { l = Empty; r; _ } -> r
  | Node { l; k; v; r; _ } -> bal (remove_min l) k v r

let glue l r =
  match (l, r) with
  | Empty, t | t, Empty -> t
  | _, _ ->
      let k, v = min_binding r in
      bal l k v (remove_min r)

let rec remove k = function
  | Empty -> Empty
  | Node { l; k = k'; v; r; _ } ->
      let c = Addr.compare k k' in
      if c = 0 then glue l r
      else if c < 0 then bal (remove k l) k' v r
      else bal l k' v (remove k r)

let rec fold f t acc =
  match t with
  | Empty -> acc
  | Node { l; k; v; r; _ } -> fold f r (f k v (fold f l acc))

let rec bindings_aux acc = function
  | Empty -> acc
  | Node { l; k; v; r; _ } -> bindings_aux ((k, v) :: bindings_aux acc r) l

let bindings t = bindings_aux [] t

let rec cardinal = function
  | Empty -> 0
  | Node { l; r; _ } -> cardinal l + 1 + cardinal r

(** O(n) balanced build from a strictly-ascending (by address) array.
    The midpoint split keeps sibling heights within one of each other,
    so the result satisfies the AVL invariant exactly. *)
let of_sorted_array (arr : (Addr.t * 'a) array) =
  let rec build lo hi =
    if lo >= hi then Empty
    else
      let mid = (lo + hi) / 2 in
      let k, v = arr.(mid) in
      mk (build lo mid) k v (build (mid + 1) hi)
  in
  build 0 (Array.length arr)
