(** The write-ahead deployment journal (crash-safe applies).

    The state file ({!State}) is rewritten only after a whole apply —
    an engine that dies mid-deployment would lose every resource it
    created so far (the classic orphan problem).  The journal closes
    that window: the executor appends one {!Intent} entry *before*
    each cloud write and one {!Outcome} entry as soon as the cloud
    answers, flushing each line to disk immediately, so the on-disk
    record is never behind the cloud by more than the set of calls
    actually in flight at the instant of death.

    Recovery replays the journal over the last persisted state
    ({!replay}) and hands the still-unresolved intents ({!unresolved})
    to the adoption pass (see [Cloudless_deploy.Recovery]), which
    checks the cloud's own activity log to decide adopt-vs-replan.

    Format: JSONL, one self-contained entry per line, written through
    a flushed append so a crash can only ever truncate the *last*
    line; {!of_string} tolerates a torn tail.  Times are simulated
    seconds rendered with ["%.17g"] so a journal is byte-reproducible
    for a fixed seed and crash point.  Attribute maps and dependency
    lists are embedded as canonical HCL expression text — the same
    codec the state file uses, so the two records cannot disagree on
    value syntax. *)

module Addr = Cloudless_hcl.Addr
module Value = Cloudless_hcl.Value
module Smap = Value.Smap
module Codec = Cloudless_hcl.Codec
module Printer = Cloudless_hcl.Printer
module Parser = Cloudless_hcl.Parser
module Ast = Cloudless_hcl.Ast
module Trace = Cloudless_obs.Trace

type op_kind = Op_create | Op_update | Op_delete

let op_kind_to_string = function
  | Op_create -> "create"
  | Op_update -> "update"
  | Op_delete -> "delete"

let op_kind_of_string = function
  | "create" -> Some Op_create
  | "update" -> Some Op_update
  | "delete" -> Some Op_delete
  | _ -> None

type intent = {
  op : int;  (** monotone per-run operation index (= crash index) *)
  iaddr : Addr.t;
  kind : op_kind;
  rtype : string;
  region : string;
  payload : Value.t Smap.t;
      (** what was (about to be) sent: full resolved attributes for a
          create, the attribute delta for an update, empty for a
          delete *)
  prior_cloud_id : string option;  (** update/delete target *)
  deps : Addr.t list;  (** recorded so adoption can rebuild the state row *)
  log_cursor : int;
      (** activity-log length when the intent was recorded; adoption
          only considers cloud events at or after this cursor *)
  itime : float;  (** simulated seconds *)
}

type outcome = {
  oop : int;  (** the {!intent.op} this resolves *)
  oaddr : Addr.t;
  okind : op_kind;
  ok : bool;
  cloud_id : string option;  (** created/updated/deleted cloud identity *)
  attrs : Value.t Smap.t;  (** cloud-returned attributes on success *)
  retried : bool;  (** failed, but the engine scheduled another attempt *)
  reason : string option;  (** failure detail *)
  otime : float;
}

type entry =
  | Run_started of { engine : string; changes : int; time : float }
  | Intent of intent
  | Outcome of outcome
  | Run_finished of { time : float }
  | Wave_mark of { wave : int; wphase : string; tenants : string list; wtime : float }
      (** E18 rollout boundary record: wave [wave] entered phase
          [wphase] ("started" | "committed" | "rolled_back" |
          "halted") over [tenants].  Written by the rollout driver's
          own journal so a mid-wave crash resumes from the last
          *committed* wave boundary.  Tenant names are identifiers
          (no spaces), so the list is stored space-joined. *)

(* ------------------------------------------------------------------ *)
(* Serialization (JSONL; strings, ints, %.17g floats and nulls only)   *)
(* ------------------------------------------------------------------ *)

let hcl_of_map m =
  Printer.expr_to_string
    (Codec.value_to_expr (Value.Vmap (Smap.map State.sanitize m)))

let map_of_hcl s =
  match Codec.expr_to_value (Parser.parse_expr_string ~file:"<journal>" s) with
  | Some (Value.Vmap m) -> m
  | _ -> raise (Trace.Parse_error "journal: attrs is not an object literal")

let hcl_of_deps deps =
  Printer.expr_to_string
    (Ast.mk
       (Ast.ListLit (List.map (fun d -> Ast.string_lit (Addr.to_string d)) deps)))

let deps_of_hcl s =
  match Codec.expr_to_value (Parser.parse_expr_string ~file:"<journal>" s) with
  | Some (Value.Vlist vs) ->
      List.map
        (fun v ->
          match Addr.of_string (Value.to_string v) with
          | Some a -> a
          | None -> raise (Trace.Parse_error "journal: bad dep address"))
        vs
  | _ -> raise (Trace.Parse_error "journal: deps is not a list literal")

(* Direct-to-buffer encoder: each entry is rendered straight into the
   caller's [Buffer] — no per-field [Printf.sprintf], no field list, no
   [String.concat] — so a journaled apply allocates almost nothing per
   line beyond the HCL attribute text.  Byte-identical to the seed's
   string-building encoder, kept below as {!Reference.entry_to_line}
   and asserted equal by the test suite. *)

let add_escaped buf s =
  (* Trace.json_escape, written into the caller's buffer.  Clean runs
     (the overwhelmingly common case: identifiers, cloud ids, region
     names) are copied with one [add_substring] instead of a per-char
     push — at a million journal lines the difference is the bench. *)
  let n = String.length s in
  let run = ref 0 in
  for i = 0 to n - 1 do
    let c = String.unsafe_get s i in
    if
      match c with
      | '"' | '\\' -> true
      | c -> Char.code c < 0x20
    then begin
      if i > !run then Buffer.add_substring buf s !run (i - !run);
      (match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c)));
      run := i + 1
    end
  done;
  if n > !run then Buffer.add_substring buf s !run (n - !run)

let add_key buf k =
  Buffer.add_char buf '"';
  Buffer.add_string buf k;
  Buffer.add_string buf "\":"

let add_str buf k v =
  add_key buf k;
  Buffer.add_char buf '"';
  add_escaped buf v;
  Buffer.add_char buf '"'

let add_int buf k v =
  add_key buf k;
  Buffer.add_string buf (string_of_int v)

(* [Trace.float_lit] is a ["%.17g"] sprintf — ~400ns, the single most
   expensive token on a journal line.  Simulated timestamps repeat
   heavily (every op submitted in one ready burst shares the clock),
   so a one-slot memo absorbs most of them.  The slot is domain-local:
   the sharded apply path is journal-free today, but nothing should
   quietly break if two domains ever journal concurrently.  Bitwise
   comparison keeps the memo exact (nan, -0.); the initial slot pairs
   nan's bits with the "null" that [float_lit] renders nan as. *)
let float_memo =
  Domain.DLS.new_key (fun () ->
      (ref (Int64.bits_of_float Float.nan), ref "null"))

let add_float buf k v =
  add_key buf k;
  let bits, lit = Domain.DLS.get float_memo in
  let b = Int64.bits_of_float v in
  if b <> !bits then begin
    bits := b;
    lit := Trace.float_lit v
  end;
  Buffer.add_string buf !lit

let add_bool buf k v = add_int buf k (if v then 1 else 0)

let add_opt buf k = function
  | None ->
      add_key buf k;
      Buffer.add_string buf "null"
  | Some s -> add_str buf k s

let sep buf = Buffer.add_char buf ','

(* Fused attribute/deps emitters: the composition of {!hcl_of_map} /
   {!hcl_of_deps} (sanitize -> Codec AST -> Printer text) with
   {!add_escaped}, performed in a single pass with no map copy, no AST
   and no intermediate strings — at fleet scale the three-stage
   pipeline above is the whole cost of a journaled apply.  Byte
   equality with the composed pipeline (and hence with
   {!Reference.entry_to_line}) is asserted by the test suite over
   arbitrary values. *)

(* One character of a rendered HCL string literal, JSON-escaped:
   [Printer.escape_template_lit] then [Trace.json_escape], composed.
   E.g. a literal quote becomes backslash-quote in HCL, and each of
   those two bytes is then escaped again for JSON (four bytes out). *)
let add_hcl_str_body buf s =
  let n = String.length s in
  let run = ref 0 in
  for i = 0 to n - 1 do
    let c = String.unsafe_get s i in
    if
      match c with
      | '"' | '\\' -> true
      | '$' -> i + 1 < n && s.[i + 1] = '{'
      | c -> Char.code c < 0x20
    then begin
      if i > !run then Buffer.add_substring buf s !run (i - !run);
      (match c with
      | '"' -> Buffer.add_string buf "\\\\\\\""
      | '\\' -> Buffer.add_string buf "\\\\\\\\"
      | '\n' -> Buffer.add_string buf "\\\\n"
      | '\t' -> Buffer.add_string buf "\\\\t"
      | '$' -> Buffer.add_string buf "\\\\$"
      | '\r' -> Buffer.add_string buf "\\r"
      | c -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c)));
      run := i + 1
    end
  done;
  if n > !run then Buffer.add_substring buf s !run (n - !run)

(* An HCL string literal (quotes included) as it appears inside a JSON
   string field. *)
let add_hcl_string buf s =
  Buffer.add_string buf "\\\"";
  add_hcl_str_body buf s;
  Buffer.add_string buf "\\\""

(* Canonical HCL for a sanitized value ([Vunknown] renders as the
   [null] {!State.sanitize} would have substituted), JSON-escaped. *)
let rec add_hcl_value buf (v : Value.t) =
  match v with
  | Value.Vunknown _ | Value.Vnull -> Buffer.add_string buf "null"
  | Value.Vbool b -> Buffer.add_string buf (string_of_bool b)
  | Value.Vint n -> Buffer.add_string buf (string_of_int n)
  | Value.Vfloat f -> Buffer.add_string buf (Value.float_to_string f)
  | Value.Vstring s -> add_hcl_string buf s
  | Value.Vlist vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string buf ", ";
          add_hcl_value buf v)
        vs;
      Buffer.add_char buf ']'
  | Value.Vmap m -> add_hcl_map_value buf m

and add_hcl_map_value buf m =
  Buffer.add_string buf "{ ";
  let first = ref true in
  Smap.iter
    (fun k v ->
      if !first then first := false else Buffer.add_string buf ", ";
      if Printer.ident_like k then Buffer.add_string buf k
      else add_hcl_string buf k;
      Buffer.add_string buf " = ";
      add_hcl_value buf v)
    m;
  Buffer.add_string buf " }"

let add_attrs buf k m =
  add_key buf k;
  Buffer.add_char buf '"';
  add_hcl_map_value buf m;
  Buffer.add_char buf '"'

(* Address fast path: almost every address is [rtype.rname] or
   [rtype.rname[i]] out of plain identifiers — no module path, no data
   mode, nothing to escape in either the JSON or the HCL-string
   context — so it can be emitted directly, skipping the
   [Addr.to_string] sprintf.  Anything unusual falls back to the
   rendered string. *)
let ident_clean s =
  String.for_all
    (fun c -> Char.code c >= 0x20 && c <> '"' && c <> '\\' && c <> '$')
    s

let addr_plain (a : Addr.t) =
  a.Addr.module_path = []
  && a.Addr.mode = Addr.Managed
  && (match a.Addr.key with Addr.Kstr _ -> false | _ -> true)
  && ident_clean a.Addr.rtype && ident_clean a.Addr.rname

let add_addr_body buf (a : Addr.t) =
  Buffer.add_string buf a.Addr.rtype;
  Buffer.add_char buf '.';
  Buffer.add_string buf a.Addr.rname;
  match a.Addr.key with
  | Addr.Knone -> ()
  | Addr.Kint i ->
      Buffer.add_char buf '[';
      Buffer.add_string buf (string_of_int i);
      Buffer.add_char buf ']'
  | Addr.Kstr _ -> assert false (* excluded by [addr_plain] *)

let add_addr buf k a =
  add_key buf k;
  Buffer.add_char buf '"';
  if addr_plain a then add_addr_body buf a
  else add_escaped buf (Addr.to_string a);
  Buffer.add_char buf '"'

let add_deps buf k deps =
  add_key buf k;
  Buffer.add_string buf "\"[";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_string buf ", ";
      if addr_plain d then begin
        Buffer.add_string buf "\\\"";
        add_addr_body buf d;
        Buffer.add_string buf "\\\""
      end
      else add_hcl_string buf (Addr.to_string d))
    deps;
  Buffer.add_string buf "]\""

let add_entry buf entry =
  Buffer.add_char buf '{';
  (match entry with
  | Run_started { engine; changes; time } ->
      add_str buf "e" "start";
      sep buf;
      add_str buf "engine" engine;
      sep buf;
      add_int buf "changes" changes;
      sep buf;
      add_float buf "time" time
  | Intent i ->
      add_str buf "e" "intent";
      sep buf;
      add_int buf "op" i.op;
      sep buf;
      add_addr buf "addr" i.iaddr;
      sep buf;
      add_str buf "kind" (op_kind_to_string i.kind);
      sep buf;
      add_str buf "rtype" i.rtype;
      sep buf;
      add_str buf "region" i.region;
      sep buf;
      add_opt buf "prior" i.prior_cloud_id;
      sep buf;
      add_int buf "cursor" i.log_cursor;
      sep buf;
      add_deps buf "deps" i.deps;
      sep buf;
      add_attrs buf "attrs" i.payload;
      sep buf;
      add_float buf "time" i.itime
  | Outcome o ->
      add_str buf "e" "outcome";
      sep buf;
      add_int buf "op" o.oop;
      sep buf;
      add_addr buf "addr" o.oaddr;
      sep buf;
      add_str buf "kind" (op_kind_to_string o.okind);
      sep buf;
      add_bool buf "ok" o.ok;
      sep buf;
      add_opt buf "cloud_id" o.cloud_id;
      sep buf;
      add_bool buf "retried" o.retried;
      sep buf;
      add_opt buf "reason" o.reason;
      sep buf;
      add_attrs buf "attrs" o.attrs;
      sep buf;
      add_float buf "time" o.otime
  | Run_finished { time } ->
      add_str buf "e" "finish";
      sep buf;
      add_float buf "time" time
  | Wave_mark { wave; wphase; tenants; wtime } ->
      add_str buf "e" "wave";
      sep buf;
      add_int buf "wave" wave;
      sep buf;
      add_str buf "phase" wphase;
      sep buf;
      add_str buf "tenants" (String.concat " " tenants);
      sep buf;
      add_float buf "time" wtime);
  Buffer.add_char buf '}'

let entry_to_line entry =
  let buf = Buffer.create 256 in
  add_entry buf entry;
  Buffer.contents buf

(** The seed's string-building encoder, kept (like [Dag.Reference] and
    the executor's [Sched_list]) as the oracle the buffer encoder is
    asserted byte-identical against. *)
module Reference = struct
  let kv_str k v = Printf.sprintf "\"%s\":\"%s\"" k (Trace.json_escape v)
  let kv_int k v = Printf.sprintf "\"%s\":%d" k v
  let kv_float k v = Printf.sprintf "\"%s\":%s" k (Trace.float_lit v)
  let kv_bool k v = kv_int k (if v then 1 else 0)

  let kv_opt k = function
    | None -> Printf.sprintf "\"%s\":null" k
    | Some s -> kv_str k s

  let obj fields = "{" ^ String.concat "," fields ^ "}"

  let entry_to_line = function
    | Run_started { engine; changes; time } ->
        obj
          [
            kv_str "e" "start"; kv_str "engine" engine; kv_int "changes" changes;
            kv_float "time" time;
          ]
    | Intent i ->
        obj
          [
            kv_str "e" "intent";
            kv_int "op" i.op;
            kv_str "addr" (Addr.to_string i.iaddr);
            kv_str "kind" (op_kind_to_string i.kind);
            kv_str "rtype" i.rtype;
            kv_str "region" i.region;
            kv_opt "prior" i.prior_cloud_id;
            kv_int "cursor" i.log_cursor;
            kv_str "deps" (hcl_of_deps i.deps);
            kv_str "attrs" (hcl_of_map i.payload);
            kv_float "time" i.itime;
          ]
    | Outcome o ->
        obj
          [
            kv_str "e" "outcome";
            kv_int "op" o.oop;
            kv_str "addr" (Addr.to_string o.oaddr);
            kv_str "kind" (op_kind_to_string o.okind);
            kv_bool "ok" o.ok;
            kv_opt "cloud_id" o.cloud_id;
            kv_bool "retried" o.retried;
            kv_opt "reason" o.reason;
            kv_str "attrs" (hcl_of_map o.attrs);
            kv_float "time" o.otime;
          ]
    | Run_finished { time } -> obj [ kv_str "e" "finish"; kv_float "time" time ]
    | Wave_mark { wave; wphase; tenants; wtime } ->
        obj
          [
            kv_str "e" "wave";
            kv_int "wave" wave;
            kv_str "phase" wphase;
            kv_str "tenants" (String.concat " " tenants);
            kv_float "time" wtime;
          ]

  let to_string entries =
    String.concat "" (List.map (fun e -> entry_to_line e ^ "\n") entries)
end

let field fields k =
  match List.assoc_opt k fields with
  | Some v -> v
  | None -> raise (Trace.Parse_error ("journal: missing field " ^ k))

let str fields k =
  match field fields k with
  | Trace.Jstr s -> s
  | _ -> raise (Trace.Parse_error ("journal: field " ^ k ^ " is not a string"))

let str_opt fields k =
  match field fields k with
  | Trace.Jnull -> None
  | Trace.Jstr s -> Some s
  | _ -> raise (Trace.Parse_error ("journal: field " ^ k ^ " is not a string"))

let num fields k =
  match field fields k with
  | Trace.Jnum f -> f
  | _ -> raise (Trace.Parse_error ("journal: field " ^ k ^ " is not a number"))

let int_field fields k = int_of_float (num fields k)
let bool_field fields k = int_field fields k <> 0

let addr_field fields k =
  match Addr.of_string (str fields k) with
  | Some a -> a
  | None -> raise (Trace.Parse_error ("journal: bad address in " ^ k))

let kind_field fields k =
  match op_kind_of_string (str fields k) with
  | Some kd -> kd
  | None -> raise (Trace.Parse_error ("journal: bad op kind in " ^ k))

let entry_of_line line =
  let fields =
    match Trace.parse_json line with
    | Trace.Jobj fields -> fields
    | _ -> raise (Trace.Parse_error "journal: entry is not an object")
  in
  match str fields "e" with
  | "start" ->
      Run_started
        {
          engine = str fields "engine";
          changes = int_field fields "changes";
          time = num fields "time";
        }
  | "intent" ->
      Intent
        {
          op = int_field fields "op";
          iaddr = addr_field fields "addr";
          kind = kind_field fields "kind";
          rtype = str fields "rtype";
          region = str fields "region";
          payload = map_of_hcl (str fields "attrs");
          prior_cloud_id = str_opt fields "prior";
          deps = deps_of_hcl (str fields "deps");
          log_cursor = int_field fields "cursor";
          itime = num fields "time";
        }
  | "outcome" ->
      Outcome
        {
          oop = int_field fields "op";
          oaddr = addr_field fields "addr";
          okind = kind_field fields "kind";
          ok = bool_field fields "ok";
          cloud_id = str_opt fields "cloud_id";
          attrs = map_of_hcl (str fields "attrs");
          retried = bool_field fields "retried";
          reason = str_opt fields "reason";
          otime = num fields "time";
        }
  | "finish" -> Run_finished { time = num fields "time" }
  | "wave" ->
      Wave_mark
        {
          wave = int_field fields "wave";
          wphase = str fields "phase";
          tenants =
            (match str fields "tenants" with
            | "" -> []
            | s -> String.split_on_char ' ' s);
          wtime = num fields "time";
        }
  | e -> raise (Trace.Parse_error ("journal: unknown entry kind " ^ e))

let to_string entries =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      add_entry buf e;
      Buffer.add_char buf '\n')
    entries;
  Buffer.contents buf

(** Parse a journal, dropping a torn tail: a crash mid-append can only
    truncate the final line, so parsing stops (without error) at the
    first line that does not decode. *)
let of_string src =
  let lines = String.split_on_char '\n' src in
  let rec go acc = function
    | [] | [ "" ] -> List.rev acc
    | line :: rest -> (
        match entry_of_line line with
        | e -> go (e :: acc) rest
        | exception _ -> List.rev acc)
  in
  go [] lines

(* ------------------------------------------------------------------ *)
(* The appender                                                        *)
(* ------------------------------------------------------------------ *)

type mode =
  | Wal  (** flush every intent before its cloud call leaves the engine *)
  | Group of int
      (** group commit: buffer up to K intents behind one flush
          barrier.  The executor defers the matching cloud calls until
          {!barrier} runs, so the write-ahead invariant (no call
          issued whose intent is not durable) still holds — the trade
          is a wider crash window: up to K *not-yet-issued* ops can
          vanish with the batch.  Recovery sees nothing of them (no
          intent, no cloud activity) and simply replans them. *)

type t = {
  mutable entries_rev : entry list;
  mutable n_entries : int;  (** length of [entries_rev] *)
  mutable n_durable : int;  (** entries up to the last barrier *)
  retain : bool;
  mode : mode;
  batch : Buffer.t;
      (** rendered lines since the last barrier.  Nothing reaches the
          sink's own buffer until {!barrier} writes and flushes the
          whole batch, so the durable prefix of the file is exactly
          the barrier history — {!abandon} can model a crash
          faithfully by dropping the batch. *)
  mutable batched_intents : int;
  sink : out_channel option;
  mutable closed : bool;
}

let mode t = t.mode

(** Write the pending batch through to the sink and flush it.  In
    {!Wal} mode this runs implicitly on every intent/run-marker append;
    in {!Group} mode the executor calls it before releasing deferred
    cloud calls (and it self-triggers at the batch cap). *)
let barrier t =
  (match t.sink with
  | Some oc when (not t.closed) && Buffer.length t.batch > 0 ->
      Buffer.output_buffer oc t.batch;
      flush oc
  | _ -> ());
  Buffer.clear t.batch;
  t.batched_intents <- 0;
  t.n_durable <- t.n_entries

(** A live journal.  With [path] appended entries are written through
    {!barrier} flushes (every intent in {!Wal} mode, batched in
    {!Group} mode); without, the journal is memory-only (tests,
    benchmarks measuring pure engine behaviour).  [retain:false] drops
    the in-memory copy — {!entries} then answers [[]] — for million-op
    benchmark runs where keeping every entry alive would dominate the
    heap. *)
let create ?path ?(retain = true) ?(mode = Wal) () =
  (match mode with
  | Group k when k < 1 -> invalid_arg "Journal.create: Group batch must be >= 1"
  | _ -> ());
  {
    entries_rev = [];
    n_entries = 0;
    n_durable = 0;
    retain;
    mode;
    batch = Buffer.create 512;
    batched_intents = 0;
    sink = Option.map (fun p -> open_out_bin p) path;
    closed = false;
  }

let append t entry =
  if t.retain then begin
    t.entries_rev <- entry :: t.entries_rev;
    t.n_entries <- t.n_entries + 1
  end;
  if not t.closed then begin
    (match t.sink with
    | Some _ ->
        add_entry t.batch entry;
        Buffer.add_char t.batch '\n'
    | None -> ());
    match (t.mode, entry) with
    | Wal, Outcome _ ->
        (* an outcome may ride in the batch until the next intent's
           barrier (or {!close}): losing one to a crash merely
           re-creates the unresolved-intent window the adoption pass
           ([Cloudless_deploy.Recovery]) resolves from the cloud's own
           activity log.  This halves the syscalls of a journaled
           apply. *)
        ()
    | Wal, (Run_started _ | Intent _ | Run_finished _ | Wave_mark _) ->
        barrier t
    | Group k, Intent _ ->
        t.batched_intents <- t.batched_intents + 1;
        if t.batched_intents >= k then barrier t
    | Group _, (Run_started _ | Run_finished _ | Wave_mark _) -> barrier t
    | Group _, Outcome _ -> ()
  end

let entries t = List.rev t.entries_rev

let close t =
  if not t.closed then begin
    barrier t;
    t.closed <- true;
    match t.sink with Some oc -> close_out oc | None -> ()
  end

(** Model engine death: discard everything appended since the last
    {!barrier} — on disk *and* in the retained entry list — then close
    the sink.  The file is left exactly as a crash at this instant
    would leave it (the durable barrier prefix; no torn tail, which
    {!of_string} would also tolerate).  The disk-fidelity crash tests
    use this instead of {!close}, whose final barrier would leak the
    doomed batch into the journal. *)
let abandon t =
  if not t.closed then begin
    Buffer.clear t.batch;
    t.batched_intents <- 0;
    if t.retain && t.n_entries > t.n_durable then begin
      let drop = t.n_entries - t.n_durable in
      let rec chop k l = if k = 0 then l else chop (k - 1) (List.tl l) in
      t.entries_rev <- chop drop t.entries_rev;
      t.n_entries <- t.n_durable
    end;
    t.closed <- true;
    match t.sink with Some oc -> close_out oc | None -> ()
  end

let load path =
  let ic = open_in_bin path in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string src

(* ------------------------------------------------------------------ *)
(* Replay & analysis                                                   *)
(* ------------------------------------------------------------------ *)

type op_status = { intent : intent; resolution : outcome option }

(** Highest op index recorded.  A resumed run seeds its op counter from
    here so ids stay unique across the segments of one journal (each
    engine incarnation appends its own [Run_started] … sequence). *)
let max_op entries =
  List.fold_left
    (fun acc -> function
      | Intent i -> max acc i.op
      | Outcome o -> max acc o.oop
      | Run_started _ | Run_finished _ | Wave_mark _ -> acc)
    0 entries

(** Every intent in op order, paired with its final outcome ([None] =
    the crash window: intent durable, result unknown). *)
let analyze entries =
  let tbl : (int, intent * outcome option) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (function
      | Intent i ->
          Hashtbl.replace tbl i.op (i, None);
          order := i.op :: !order
      | Outcome o -> (
          match Hashtbl.find_opt tbl o.oop with
          | Some (i, _) -> Hashtbl.replace tbl o.oop (i, Some o)
          | None -> ())
      | Run_started _ | Run_finished _ | Wave_mark _ -> ())
    entries;
  List.rev_map
    (fun op ->
      let intent, resolution = Hashtbl.find tbl op in
      { intent; resolution })
    !order

(** Intents whose result never made it to the journal, in op order. *)
let unresolved entries =
  List.filter_map
    (fun s -> if s.resolution = None then Some s.intent else None)
    (analyze entries)

(** [true] when the journal's last run ran to completion — nothing to
    recover. *)
let finished entries =
  match List.rev entries with Run_finished _ :: _ -> true | _ -> false

(** Fold the journal's *known* outcomes over [state]: successful
    creates are added under their recorded cloud id, updates patch
    attributes, deletes remove the row (only while it still points at
    the deleted cloud id — a create-before-destroy replace deletes the
    *old* identity after the new one was recorded).  Replay is
    idempotent: re-applying an already-merged journal reproduces the
    same state, which makes crash-during-recovery safe. *)
let replay state entries =
  let intents : (int, intent) Hashtbl.t = Hashtbl.create 64 in
  List.fold_left
    (fun st entry ->
      match entry with
      | Run_started _ | Run_finished _ | Wave_mark _ -> st
      | Intent i ->
          Hashtbl.replace intents i.op i;
          st
      | Outcome o when not o.ok -> st
      | Outcome o -> (
          match o.okind with
          | Op_create -> (
              match (o.cloud_id, Hashtbl.find_opt intents o.oop) with
              | Some cloud_id, Some i ->
                  State.add st
                    {
                      State.addr = o.oaddr;
                      cloud_id;
                      rtype = i.rtype;
                      region = i.region;
                      attrs = o.attrs;
                      deps = i.deps;
                    }
              | _ -> st)
          | Op_update -> State.update_attrs st o.oaddr o.attrs
          | Op_delete -> (
              match (State.find_opt st o.oaddr, o.cloud_id) with
              | Some r, Some gone when r.State.cloud_id = gone ->
                  State.remove st o.oaddr
              | _ -> st)))
    state entries
