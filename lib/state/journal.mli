(** The write-ahead deployment journal (crash-safe applies).

    The state file ({!State}) is rewritten only after a whole apply —
    an engine that dies mid-deployment would lose every resource it
    created so far (the classic orphan problem).  The journal closes
    that window: the executor appends one {!Intent} entry *before*
    each cloud write and one {!Outcome} entry as soon as the cloud
    answers.  Every intent is flushed to disk before the call leaves
    the engine; outcomes ride the channel buffer until the next
    intent's flush (or close), so the on-disk record is never behind
    the cloud by more than the calls in flight plus at most the
    already-resolved outcomes since the last flush — all of which
    recovery treats as unresolved intents and hands to the adoption
    pass.

    Recovery replays the journal over the last persisted state
    ({!replay}) and hands the still-unresolved intents ({!unresolved})
    to the adoption pass (see [Cloudless_deploy.Recovery]), which
    checks the cloud's own activity log to decide adopt-vs-replan.

    Format: JSONL, one self-contained entry per line, written through
    a flushed append so a crash can only ever truncate the *last*
    line; {!of_string} tolerates a torn tail.  Times are simulated
    seconds rendered with ["%.17g"] so a journal is byte-reproducible
    for a fixed seed and crash point.  Attribute maps and dependency
    lists are embedded as canonical HCL expression text — the same
    codec the state file uses, so the two records cannot disagree on
    value syntax. *)

module Addr = Cloudless_hcl.Addr
module Value = Cloudless_hcl.Value
module Smap = Value.Smap

type op_kind = Op_create | Op_update | Op_delete

val op_kind_to_string : op_kind -> string
val op_kind_of_string : string -> op_kind option

type intent = {
  op : int;  (** monotone per-run operation index (= crash index) *)
  iaddr : Addr.t;
  kind : op_kind;
  rtype : string;
  region : string;
  payload : Value.t Smap.t;
      (** what was (about to be) sent: full resolved attributes for a
          create, the attribute delta for an update, empty for a
          delete *)
  prior_cloud_id : string option;  (** update/delete target *)
  deps : Addr.t list;  (** recorded so adoption can rebuild the state row *)
  log_cursor : int;
      (** activity-log length when the intent was recorded; adoption
          only considers cloud events at or after this cursor *)
  itime : float;  (** simulated seconds *)
}

type outcome = {
  oop : int;  (** the {!intent.op} this resolves *)
  oaddr : Addr.t;
  okind : op_kind;
  ok : bool;
  cloud_id : string option;  (** created/updated/deleted cloud identity *)
  attrs : Value.t Smap.t;  (** cloud-returned attributes on success *)
  retried : bool;  (** failed, but the engine scheduled another attempt *)
  reason : string option;  (** failure detail *)
  otime : float;
}

type entry =
  | Run_started of { engine : string; changes : int; time : float }
  | Intent of intent
  | Outcome of outcome
  | Run_finished of { time : float }
  | Wave_mark of { wave : int; wphase : string; tenants : string list; wtime : float }
      (** E18 rollout boundary record: wave [wave] entered phase
          [wphase] ("started" | "committed" | "rolled_back" |
          "halted") over [tenants].  Written by the rollout driver's
          own journal so a mid-wave crash resumes from the last
          *committed* wave boundary.  Tenant names must not contain
          spaces (stored space-joined).  Replay and op analysis
          ignore it; appending one forces a {!barrier} in both
          modes. *)

(** Render one entry (no trailing newline) straight into [buf] — the
    hot-path encoder: no per-field [sprintf], no intermediate string
    list.  Byte-identical to {!Reference.entry_to_line}. *)
val add_entry : Buffer.t -> entry -> unit

(** {!add_entry} into a fresh buffer. *)
val entry_to_line : entry -> string

(** Render entries as JSONL (inverse of {!of_string}). *)
val to_string : entry list -> string

(** The seed's string-building encoder, kept as the oracle the buffer
    encoder is asserted byte-identical against (tests, E16). *)
module Reference : sig
  val entry_to_line : entry -> string
  val to_string : entry list -> string
end

(** Parse a journal, dropping a torn tail: a crash mid-append can only
    truncate the final line, so parsing stops (without error) at the
    first line that does not decode. *)
val of_string : string -> entry list

(* ------------------------------------------------------------------ *)
(* The appender                                                        *)
(* ------------------------------------------------------------------ *)

type t

type mode =
  | Wal  (** flush every intent before its cloud call leaves the engine *)
  | Group of int
      (** group commit: buffer up to K intents behind one flush
          barrier.  The executor defers the matching cloud calls until
          {!barrier} runs, preserving the write-ahead invariant (no
          call issued whose intent is not durable) at a wider crash
          window: a crash can lose up to K buffered intents, but every
          one of them corresponds to a cloud call that was *never
          issued* — recovery sees nothing of them (no journal line, no
          cloud activity) and simply replans them.  Flushed intents
          without outcomes are adopted exactly as in {!Wal} mode.
          Batches also flush on run markers, at {!close}, and whenever
          the executor forces a {!barrier}. *)

(** A live journal.  With [path] appended entries are written through
    {!barrier} flushes — every intent immediately in {!Wal} mode
    (default), batched in {!Group} mode; without, the journal is
    memory-only (tests, benchmarks measuring pure engine behaviour).
    [retain] (default [true]) keeps the in-memory entry list
    {!entries} serves; pass [false] for huge benchmark runs —
    {!entries} then answers [[]], so resume-from-journal flows must
    not use it.  Raises [Invalid_argument] for [Group k] with
    [k < 1]. *)
val create : ?path:string -> ?retain:bool -> ?mode:mode -> unit -> t

val mode : t -> mode

(** Append one entry.  {!Wal} mode flushes intents and run markers
    before returning; {!Group} mode buffers until the batch cap, a run
    marker, or an explicit {!barrier}. *)
val append : t -> entry -> unit

(** Write the pending batch to the sink and flush it.  The executor's
    group-commit path calls this before releasing the deferred cloud
    calls of the batch; no-op when nothing is pending. *)
val barrier : t -> unit

(** Model engine death at this instant: discard everything appended
    since the last {!barrier} — on disk and in the retained entry
    list — and close the sink.  The file is left exactly as a crash
    would leave it (the durable barrier prefix).  Disk-fidelity crash
    tests use this instead of {!close}, whose final barrier would
    leak the doomed batch. *)
val abandon : t -> unit

(** All entries appended so far, in order. *)
val entries : t -> entry list

(** Close the file sink (idempotent; memory-only journals no-op). *)
val close : t -> unit

(** Read a journal file from disk ({!of_string} semantics). *)
val load : string -> entry list

(* ------------------------------------------------------------------ *)
(* Replay & analysis                                                   *)
(* ------------------------------------------------------------------ *)

type op_status = { intent : intent; resolution : outcome option }

(** Highest op index recorded.  A resumed run seeds its op counter from
    here so ids stay unique across the segments of one journal (each
    engine incarnation appends its own [Run_started] … sequence). *)
val max_op : entry list -> int

(** Every intent in op order, paired with its final outcome ([None] =
    the crash window: intent durable, result unknown). *)
val analyze : entry list -> op_status list

(** Intents whose result never made it to the journal, in op order. *)
val unresolved : entry list -> intent list

(** [true] when the journal's last run ran to completion — nothing to
    recover. *)
val finished : entry list -> bool

(** Fold the journal's *known* outcomes over [state]: successful
    creates are added under their recorded cloud id, updates patch
    attributes, deletes remove the row (only while it still points at
    the deleted cloud id — a create-before-destroy replace deletes the
    *old* identity after the new one was recorded).  Replay is
    idempotent: re-applying an already-merged journal reproduces the
    same state, which makes crash-during-recovery safe. *)
val replay : State.t -> entry list -> State.t
