(** Expression evaluation and configuration expansion.

    Expansion turns a structured {!Config.t} into the flat list of
    resource *instances* that must exist in the cloud — expanding
    [count], [for_each] and [module] blocks, resolving variables,
    locals and data sources, and propagating "(known after apply)"
    unknowns for attributes that only the cloud can decide (§2.1's
    dependency-graph construction step).

    References between resources are resolved against (a) instances
    expanded earlier in this run, then (b) prior deployment state, and
    otherwise become {!Value.Vunknown} carrying the provenance address,
    exactly like Terraform's plan-time unknowns. *)

module Smap = Value.Smap
module Sset = Set.Make (String)

exception Eval_error of string * Loc.span

let errf span fmt = Fmt.kstr (fun s -> raise (Eval_error (s, span))) fmt

(** One concrete resource instance produced by expansion. *)
type instance = {
  addr : Addr.t;
  provider : string;
  attrs : Value.t Smap.t;
  explicit_deps : Addr.t list;  (** from [depends_on] *)
  ref_deps : Addr.t list;  (** from expression references *)
  lifecycle : Config.lifecycle;
  ispan : Loc.span;
}

(** External services the evaluator needs. *)
type env = {
  var_values : Value.t Smap.t;  (** caller-supplied variable values *)
  data_resolver :
    rtype:string -> name:string -> args:Value.t Smap.t -> Value.t Smap.t option;
  state_lookup : Addr.t -> Value.t Smap.t option;
      (** prior deployment state, for resolving computed attributes *)
  module_registry : string -> Config.t option;
      (** module source -> configuration *)
}

let default_env =
  {
    var_values = Smap.empty;
    data_resolver = (fun ~rtype:_ ~name:_ ~args:_ -> Some Smap.empty);
    state_lookup = (fun _ -> None);
    module_registry = (fun _ -> None);
  }

type expansion_result = {
  instances : instance list;  (** dependency order *)
  outputs : (string * Value.t) list;
}

(* Expansion of one resource block: shape depends on its meta-args. *)
type node_expansion =
  | Single of instance
  | Counted of instance list
  | For_eached of (string * instance) list

(* Module expansion: outputs per instance key. *)
type module_expansion =
  | Mod_single of Value.t Smap.t
  | Mod_counted of Value.t Smap.t list
  | Mod_for_eached of (string * Value.t Smap.t) list

type scope = {
  env : env;
  module_path : string list;
  vars : Value.t Smap.t;
  locals_src : (string * Ast.expr) list;
  locals_tbl : (string, Ast.expr) Hashtbl.t;
      (** first-binding index of [locals_src] *)
  locals_cache : (string, Value.t) Hashtbl.t;
  mutable locals_forcing : string list;  (** cycle detection *)
  resources : (string * string, node_expansion) Hashtbl.t;
  data : (string * string, Value.t Smap.t) Hashtbl.t;
  modules : (string, module_expansion) Hashtbl.t;
  count_index : int option;
  each_binding : (Value.t * Value.t) option;  (** (key, value) *)
  for_bindings : Value.t Smap.t;
}

(* Index a locals binding list by name, keeping the first binding for a
   name like [List.assoc_opt] would. *)
let locals_index (locals : (string * Ast.expr) list) =
  let tbl = Hashtbl.create (max 8 (2 * List.length locals)) in
  List.iter
    (fun (n, e) -> if not (Hashtbl.mem tbl n) then Hashtbl.add tbl n e)
    locals;
  tbl

let make_scope ?(env = default_env) ?(module_path = []) ?(locals = [])
    ?(vars = Smap.empty) () =
  {
    env;
    module_path;
    vars;
    locals_src = locals;
    locals_tbl = locals_index locals;
    locals_cache = Hashtbl.create 8;
    locals_forcing = [];
    resources = Hashtbl.create 16;
    data = Hashtbl.create 4;
    modules = Hashtbl.create 4;
    count_index = None;
    each_binding = None;
    for_bindings = Smap.empty;
  }

(* The sentinel attribute that marks a map as a resource object so that
   access to a missing (computed) attribute yields an unknown instead of
   an error. *)
let addr_key = "__addr__"

let instance_value inst =
  Smap.add addr_key (Value.Vstring (Addr.to_string inst.addr)) inst.attrs

let strip_addr m = Smap.remove addr_key m

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)
(* ------------------------------------------------------------------ *)

(* Functions that behave sensibly even when list/map elements are
   unknown (they do not inspect element contents). *)
let unknown_tolerant_fns =
  [ "length"; "concat"; "tolist"; "keys"; "merge"; "coalesce"; "try"; "can" ]

let rec eval scope (e : Ast.expr) : Value.t =
  match e.Ast.desc with
  | Ast.Null -> Value.Vnull
  | Ast.Bool b -> Value.Vbool b
  | Ast.Int n -> Value.Vint n
  | Ast.Float f -> Value.Vfloat f
  | Ast.Template parts -> eval_template scope e.Ast.espan parts
  | Ast.Var name -> eval_var scope e.Ast.espan name
  | Ast.GetAttr (inner, attr) -> eval_getattr scope e.Ast.espan inner attr
  | Ast.Index (inner, idx) -> eval_index scope e.Ast.espan inner idx
  | Ast.Splat (inner, attr) -> eval_splat scope e.Ast.espan inner attr
  | Ast.ListLit es -> Value.Vlist (List.map (eval scope) es)
  | Ast.ObjectLit kvs ->
      Value.Vmap
        (List.fold_left
           (fun acc (k, v) ->
             let key =
               match k with
               | Ast.Kident s -> s
               | Ast.Kexpr ke -> value_to_key scope ke
             in
             Smap.add key (eval scope v) acc)
           Smap.empty kvs)
  | Ast.Call (name, args, expand) -> eval_call scope e.Ast.espan name args expand
  | Ast.Unop (op, inner) -> eval_unop scope e.Ast.espan op inner
  | Ast.Binop (op, a, b) -> eval_binop scope e.Ast.espan op a b
  | Ast.Cond (c, a, b) -> (
      match eval scope c with
      | Value.Vunknown p -> Value.Vunknown (p ^ "?")
      | cv -> if cond_truthy e.Ast.espan cv then eval scope a else eval scope b)
  | Ast.ForList fc -> eval_for_list scope e.Ast.espan fc
  | Ast.ForMap (fc, v) -> eval_for_map scope e.Ast.espan fc v
  | Ast.Paren inner -> eval scope inner

and cond_truthy span v =
  try Value.truthy v
  with Value.Type_error msg -> errf span "condition: %s" msg

and value_to_key scope ke =
  match eval scope ke with
  | Value.Vstring s -> s
  | v -> Value.to_string v

and eval_template scope span parts =
  match parts with
  | [ Ast.Lit s ] -> Value.Vstring s
  | [] -> Value.Vstring ""
  | [ Ast.Interp e ] ->
      (* A template that is exactly one interpolation preserves the
         value's type (Terraform 0.12+ behaviour). *)
      eval scope e
  | parts ->
      let buf = Buffer.create 32 in
      let unknown = ref None in
      List.iter
        (function
          | Ast.Lit s -> Buffer.add_string buf s
          | Ast.Interp e -> (
              match eval scope e with
              | Value.Vunknown p -> if !unknown = None then unknown := Some p
              | v -> (
                  try Buffer.add_string buf (Value.to_string v)
                  with Value.Type_error msg -> errf span "in template: %s" msg)))
        parts;
      (match !unknown with
      | Some p -> Value.Vunknown ("template:" ^ p)
      | None -> Value.Vstring (Buffer.contents buf))

and eval_var scope span name =
  match Smap.find_opt name scope.for_bindings with
  | Some v -> v
  | None -> (
      match name with
      | "var" -> Value.Vmap scope.vars
      | "local" ->
          (* Force every local: rarely used bare, but legal. *)
          Value.Vmap
            (List.fold_left
               (fun acc (n, _) -> Smap.add n (force_local scope span n) acc)
               Smap.empty scope.locals_src)
      | "path" ->
          Value.of_assoc
            [
              ("module", Value.Vstring (String.concat "/" scope.module_path));
              ("root", Value.Vstring "");
            ]
      | "count" | "each" | "data" | "module" ->
          errf span "%S cannot be used as a bare value" name
      | _ -> errf span "reference to undeclared identifier %S" name)

and force_local scope span name =
  match Hashtbl.find_opt scope.locals_cache name with
  | Some v -> v
  | None ->
      if List.mem name scope.locals_forcing then
        errf span "dependency cycle through local.%s" name;
      (match Hashtbl.find_opt scope.locals_tbl name with
      | None -> errf span "reference to undeclared local.%s" name
      | Some e ->
          scope.locals_forcing <- name :: scope.locals_forcing;
          let v =
            Fun.protect
              ~finally:(fun () ->
                scope.locals_forcing <- List.tl scope.locals_forcing)
              (fun () -> eval scope e)
          in
          Hashtbl.replace scope.locals_cache name v;
          v)

and eval_getattr scope span inner attr =
  match inner.Ast.desc with
  | Ast.Var root when not (Smap.mem root scope.for_bindings) -> (
      match root with
      | "var" -> (
          match Smap.find_opt attr scope.vars with
          | Some v -> v
          | None -> errf span "reference to undeclared variable var.%s" attr)
      | "local" -> force_local scope span attr
      | "count" -> (
          match (attr, scope.count_index) with
          | "index", Some i -> Value.Vint i
          | "index", None ->
              errf span "count.index used outside a counted resource"
          | _, _ -> errf span "unknown attribute count.%s" attr)
      | "each" -> (
          match scope.each_binding with
          | None -> errf span "each.%s used outside a for_each resource" attr
          | Some (k, v) -> (
              match attr with
              | "key" -> k
              | "value" -> v
              | _ -> errf span "unknown attribute each.%s" attr))
      | "path" -> (
          match attr with
          | "module" -> Value.Vstring (String.concat "/" scope.module_path)
          | "root" -> Value.Vstring ""
          | _ -> errf span "unknown attribute path.%s" attr)
      | "module" -> eval_module_ref scope span attr
      | "data" ->
          (* needs a second GetAttr level: handled when the chain is
             data.<type>.<name>; a bare data.<type> is meaningless *)
          errf span "incomplete data source reference data.%s" attr
      | _ -> eval_resource_ref scope span root attr)
  | Ast.GetAttr ({ Ast.desc = Ast.Var "data"; _ }, dtype) ->
      eval_data_ref scope span dtype attr
  | _ -> generic_getattr scope span (eval scope inner) attr

and generic_getattr _scope span v attr =
  match v with
  | Value.Vmap m -> (
      match Smap.find_opt attr m with
      | Some v -> v
      | None -> (
          match Smap.find_opt addr_key m with
          | Some (Value.Vstring owner) ->
              (* computed attribute of a resource object *)
              Value.unknown (owner ^ "." ^ attr)
          | _ -> errf span "object has no attribute %S" attr))
  | Value.Vunknown p -> Value.unknown (p ^ "." ^ attr)
  | Value.Vlist _ ->
      errf span "cannot access attribute %S on a list (index it first)" attr
  | v -> errf span "cannot access attribute %S on %s" attr (Value.type_name v)

and eval_resource_ref scope span rtype rname =
  match Hashtbl.find_opt scope.resources (rtype, rname) with
  | Some (Single inst) -> Value.Vmap (instance_value inst)
  | Some (Counted insts) ->
      Value.Vlist (List.map (fun i -> Value.Vmap (instance_value i)) insts)
  | Some (For_eached kvs) ->
      Value.Vmap
        (List.fold_left
           (fun acc (k, i) -> Smap.add k (Value.Vmap (instance_value i)) acc)
           Smap.empty kvs)
  | None ->
      errf span "reference to undeclared resource %s.%s (or dependency cycle)"
        rtype rname

and eval_data_ref scope span dtype dname =
  match Hashtbl.find_opt scope.data (dtype, dname) with
  | Some attrs ->
      let addr =
        Addr.make ~module_path:scope.module_path ~mode:Addr.Data ~rtype:dtype
          ~rname:dname ()
      in
      Value.Vmap
        (Smap.add addr_key (Value.Vstring (Addr.to_string addr)) attrs)
  | None ->
      errf span "reference to undeclared data source data.%s.%s" dtype dname

and eval_module_ref scope span mname =
  match Hashtbl.find_opt scope.modules mname with
  | Some (Mod_single outs) -> Value.Vmap outs
  | Some (Mod_counted outs) ->
      Value.Vlist (List.map (fun o -> Value.Vmap o) outs)
  | Some (Mod_for_eached kvs) ->
      Value.Vmap
        (List.fold_left
           (fun acc (k, o) -> Smap.add k (Value.Vmap o) acc)
           Smap.empty kvs)
  | None -> errf span "reference to undeclared module.%s" mname

and eval_index scope span inner idx =
  let v = eval scope inner in
  let i = eval scope idx in
  match (v, i) with
  | Value.Vunknown p, _ -> Value.unknown (p ^ "[...]")
  | _, Value.Vunknown p -> Value.unknown ("[" ^ p ^ "]")
  | Value.Vlist vs, _ -> (
      let n =
        try Value.to_int i
        with Value.Type_error msg -> errf span "list index: %s" msg
      in
      match List.nth_opt vs n with
      | Some v -> v
      | None ->
          errf span "list index %d out of bounds (length %d)" n
            (List.length vs))
  | Value.Vmap m, _ -> (
      let k = Value.to_string i in
      match Smap.find_opt k m with
      | Some v -> v
      | None -> (
          match Smap.find_opt addr_key m with
          | Some (Value.Vstring owner) ->
              Value.unknown (Printf.sprintf "%s[%s]" owner k)
          | _ -> errf span "map has no key %S" k))
  | v, _ -> errf span "cannot index a %s" (Value.type_name v)

and eval_splat scope span inner attr =
  match eval scope inner with
  | Value.Vunknown p -> Value.unknown (p ^ "[*]." ^ attr)
  | Value.Vlist vs ->
      Value.Vlist (List.map (fun v -> generic_getattr scope span v attr) vs)
  | Value.Vnull -> Value.Vlist []
  | v -> Value.Vlist [ generic_getattr scope span v attr ]

and eval_call scope span name args expand =
  (* try/can are lazy over evaluation errors (Terraform semantics):
     arguments are attempted in order and failures are swallowed *)
  match name with
  | "try" ->
      let rec attempt = function
        | [] -> errf span "try: no argument evaluated successfully"
        | [ last ] -> eval scope last
        | e :: rest -> (
            match eval scope e with
            | Value.Vunknown _ -> attempt rest
            | v -> v
            | exception Eval_error _ -> attempt rest)
      in
      attempt args
  | "can" -> (
      match args with
      | [ e ] -> (
          match eval scope e with
          | Value.Vunknown _ as v -> v
          | _ -> Value.Vbool true
          | exception Eval_error _ -> Value.Vbool false)
      | _ -> errf span "can expects exactly 1 argument")
  | _ -> eval_call_strict scope span name args expand

and eval_call_strict scope span name args expand =
  let args = List.map (eval scope) args in
  let args =
    if not expand then args
    else
      match List.rev args with
      | last :: rev_rest -> List.rev rev_rest @ Value.to_list last
      | [] -> args
  in
  (
      let needs_shortcircuit =
        (not (List.mem name unknown_tolerant_fns))
        && List.exists Value.has_unknown args
      in
      if needs_shortcircuit then Value.unknown ("fn:" ^ name)
      else
        try Funcs.call name args with
        | Funcs.Call_error msg -> errf span "%s" msg
        | Value.Type_error msg -> errf span "in %s(): %s" name msg)

and eval_unop scope span op inner =
  let v = eval scope inner in
  match (op, v) with
  | _, Value.Vunknown p -> Value.unknown (p ^ ":unop")
  | Ast.Neg, Value.Vint n -> Value.Vint (-n)
  | Ast.Neg, Value.Vfloat f -> Value.Vfloat (-.f)
  | Ast.Neg, v -> errf span "cannot negate a %s" (Value.type_name v)
  | Ast.Not, Value.Vbool b -> Value.Vbool (not b)
  | Ast.Not, v -> errf span "cannot apply '!' to a %s" (Value.type_name v)

and eval_binop scope span op a b =
  match op with
  | Ast.And -> (
      match eval scope a with
      | Value.Vbool false -> Value.Vbool false
      | Value.Vbool true -> eval_bool scope span b
      | Value.Vunknown p -> (
          (* false && unknown is false; need the other side *)
          match eval scope b with
          | Value.Vbool false -> Value.Vbool false
          | _ -> Value.unknown (p ^ "&&"))
      | v -> errf span "'&&' expects bools, got %s" (Value.type_name v))
  | Ast.Or -> (
      match eval scope a with
      | Value.Vbool true -> Value.Vbool true
      | Value.Vbool false -> eval_bool scope span b
      | Value.Vunknown p -> (
          match eval scope b with
          | Value.Vbool true -> Value.Vbool true
          | _ -> Value.unknown (p ^ "||"))
      | v -> errf span "'||' expects bools, got %s" (Value.type_name v))
  | _ -> (
      let va = eval scope a and vb = eval scope b in
      match (va, vb) with
      | Value.Vunknown p, _ | _, Value.Vunknown p ->
          Value.unknown (p ^ ":binop")
      | _ -> apply_binop span op va vb)

and eval_bool scope span e =
  match eval scope e with
  | Value.Vbool _ as v -> v
  | Value.Vunknown _ as v -> v
  | v -> errf span "expected bool, got %s" (Value.type_name v)

and apply_binop span op va vb =
  let arith fi ff =
    match (va, vb) with
    | Value.Vint x, Value.Vint y -> Value.Vint (fi x y)
    | (Value.Vint _ | Value.Vfloat _), (Value.Vint _ | Value.Vfloat _) ->
        Value.Vfloat (ff (Value.to_float va) (Value.to_float vb))
    | _ ->
        errf span "arithmetic on %s and %s" (Value.type_name va)
          (Value.type_name vb)
  in
  let cmp f =
    match (va, vb) with
    | (Value.Vint _ | Value.Vfloat _), (Value.Vint _ | Value.Vfloat _) ->
        Value.Vbool (f (Float.compare (Value.to_float va) (Value.to_float vb)) 0)
    | Value.Vstring x, Value.Vstring y -> Value.Vbool (f (String.compare x y) 0)
    | _ ->
        errf span "cannot compare %s with %s" (Value.type_name va)
          (Value.type_name vb)
  in
  match op with
  | Ast.Add -> (
      match (va, vb) with
      | Value.Vstring x, Value.Vstring y -> Value.Vstring (x ^ y)
      | _ -> arith ( + ) ( +. ))
  | Ast.Sub -> arith ( - ) ( -. )
  | Ast.Mul -> arith ( * ) ( *. )
  | Ast.Div -> (
      match (va, vb) with
      | _, Value.Vint 0 -> errf span "division by zero"
      | Value.Vint x, Value.Vint y when x mod y = 0 -> Value.Vint (x / y)
      | _ -> Value.Vfloat (Value.to_float va /. Value.to_float vb))
  | Ast.Mod -> (
      match (va, vb) with
      | _, Value.Vint 0 -> errf span "modulo by zero"
      | Value.Vint x, Value.Vint y -> Value.Vint (((x mod y) + y) mod y)
      | _ -> errf span "'%%' expects integers")
  | Ast.Eq -> Value.Vbool (Value.equal va vb)
  | Ast.Neq -> Value.Vbool (not (Value.equal va vb))
  | Ast.Lt -> cmp ( < )
  | Ast.Gt -> cmp ( > )
  | Ast.Le -> cmp ( <= )
  | Ast.Ge -> cmp ( >= )
  | Ast.And | Ast.Or -> assert false

and for_collection scope span fc =
  match eval scope fc.Ast.coll with
  | Value.Vlist vs -> List.mapi (fun i v -> (Value.Vint i, v)) vs
  | Value.Vmap m ->
      List.map (fun (k, v) -> (Value.Vstring k, v)) (Smap.bindings m)
  | Value.Vunknown _ -> errf span "for-expression over an unknown collection"
  | v -> errf span "for-expression expects list or map, got %s" (Value.type_name v)

and bind_for scope fc k v =
  let bindings = Smap.add fc.Ast.val_var v scope.for_bindings in
  let bindings =
    match fc.Ast.key_var with
    | Some kv -> Smap.add kv k bindings
    | None -> bindings
  in
  { scope with for_bindings = bindings }

and eval_for_list scope span fc =
  let items = for_collection scope span fc in
  let out =
    List.filter_map
      (fun (k, v) ->
        let scope' = bind_for scope fc k v in
        let keep =
          match fc.Ast.cond with
          | None -> true
          | Some c -> cond_truthy span (eval scope' c)
        in
        if keep then Some (eval scope' fc.Ast.body) else None)
      items
  in
  Value.Vlist out

and eval_for_map scope span fc velt =
  let items = for_collection scope span fc in
  let out =
    List.fold_left
      (fun acc (k, v) ->
        let scope' = bind_for scope fc k v in
        let keep =
          match fc.Ast.cond with
          | None -> true
          | Some c -> cond_truthy span (eval scope' c)
        in
        if keep then
          let key = Value.to_string (eval scope' fc.Ast.body) in
          Smap.add key (eval scope' velt) acc
        else acc)
      Smap.empty items
  in
  Value.Vmap out

(* ------------------------------------------------------------------ *)
(* Body evaluation: attributes + nested blocks -> attribute map        *)
(* ------------------------------------------------------------------ *)

(* Nested blocks of the same type accumulate into a list of objects
   (Terraform's block-list representation).  [dynamic "ty" { for_each =
   coll  iterator = it?  content { ... } }] expands to one "ty" block
   per collection element, with the iterator (default: the block type
   name) bound to {key, value} inside the content. *)
let rec eval_body scope (body : Ast.body) : Value.t Smap.t =
  let attrs =
    List.fold_left
      (fun acc (a : Ast.attribute) ->
        Smap.add a.Ast.aname (eval scope a.Ast.avalue) acc)
      Smap.empty body.Ast.attrs
  in
  let add_block acc btype v =
    let existing =
      match Smap.find_opt btype acc with
      | Some (Value.Vlist vs) -> vs
      | Some v -> [ v ]
      | None -> []
    in
    Smap.add btype (Value.Vlist (existing @ [ v ])) acc
  in
  List.fold_left
    (fun acc (b : Ast.block) ->
      match (b.Ast.btype, b.Ast.labels) with
      | "dynamic", [ gen_type ] ->
          let coll =
            match Ast.attr b.Ast.bbody "for_each" with
            | Some e -> e
            | None -> errf b.Ast.bspan "dynamic block needs for_each"
          in
          let iterator =
            match Ast.attr b.Ast.bbody "iterator" with
            | Some { Ast.desc = Ast.Var it; _ } -> it
            | Some { Ast.desc = Ast.Template [ Ast.Lit it ]; _ } -> it
            | Some _ -> errf b.Ast.bspan "iterator must be a name"
            | None -> gen_type
          in
          let content =
            match Ast.blocks_of_type b.Ast.bbody "content" with
            | [ c ] -> c.Ast.bbody
            | _ -> errf b.Ast.bspan "dynamic block needs exactly one content block"
          in
          let items =
            match eval scope coll with
            | Value.Vlist vs -> List.mapi (fun i v -> (Value.Vint i, v)) vs
            | Value.Vmap m ->
                List.map (fun (k, v) -> (Value.Vstring k, v)) (Smap.bindings m)
            | v ->
                errf b.Ast.bspan "dynamic for_each expects list or map, got %s"
                  (Value.type_name v)
          in
          List.fold_left
            (fun acc (k, v) ->
              let binding =
                Value.of_assoc [ ("key", k); ("value", v) ]
              in
              let scope' =
                { scope with for_bindings = Smap.add iterator binding scope.for_bindings }
              in
              add_block acc gen_type (Value.Vmap (eval_body scope' content)))
            acc items
      | _ -> add_block acc b.Ast.btype (Value.Vmap (eval_body scope b.Ast.bbody)))
    attrs body.Ast.blocks

(* ------------------------------------------------------------------ *)
(* Node ordering                                                       *)
(* ------------------------------------------------------------------ *)

type node =
  | Ndata of Config.data_source
  | Nres of Config.resource
  | Nmod of Config.module_call

let node_key = function
  | Ndata d -> "data." ^ d.Config.dtype ^ "." ^ d.Config.dname
  | Nres r -> r.Config.rtype ^ "." ^ r.Config.rname
  | Nmod m -> "module." ^ m.Config.mname

let node_span = function
  | Ndata d -> d.Config.dspan
  | Nres r -> r.Config.rspan
  | Nmod m -> m.Config.mspan

(* Static targets of a node, with local references expanded
   transitively so that ordering respects locals that mention
   resources. *)
let node_targets ?locals (cfg : Config.t) node : Refs.target list =
  let locals =
    match locals with Some t -> t | None -> locals_index cfg.Config.locals
  in
  let direct =
    match node with
    | Ndata d -> Refs.of_body d.Config.dbody
    | Nres r ->
        Refs.of_body r.Config.rbody
        @ (match r.Config.rcount with Some e -> Refs.of_expr e | None -> [])
        @ (match r.Config.rfor_each with Some e -> Refs.of_expr e | None -> [])
        @ List.map
            (fun (ty, n) ->
              if ty = "module" then Refs.Tmodule (n, None)
              else if String.length ty > 5 && String.sub ty 0 5 = "data." then
                Refs.Tdata (String.sub ty 5 (String.length ty - 5), n)
              else Refs.Tresource (ty, n))
            r.Config.rdepends_on
    | Nmod m ->
        List.concat_map (fun (_, e) -> Refs.of_expr e) m.Config.margs
        @ (match m.Config.mcount with Some e -> Refs.of_expr e | None -> [])
        @
        (match m.Config.mfor_each with Some e -> Refs.of_expr e | None -> [])
  in
  (* Expand Tlocal transitively. *)
  let rec expand_locals seen targets =
    List.concat_map
      (fun t ->
        match t with
        | Refs.Tlocal name when not (Sset.mem name seen) -> (
            match Hashtbl.find_opt locals name with
            | Some e -> expand_locals (Sset.add name seen) (Refs.of_expr e)
            | None -> [ t ])
        | t -> [ t ])
      targets
  in
  expand_locals Sset.empty direct

let target_node_key = function
  | Refs.Tresource (t, n) -> Some (t ^ "." ^ n)
  | Refs.Tdata (t, n) -> Some ("data." ^ t ^ "." ^ n)
  | Refs.Tmodule (m, _) -> Some ("module." ^ m)
  | Refs.Tvar _ | Refs.Tlocal _ | Refs.Tcount | Refs.Teach | Refs.Tpath -> None

(* Stable topological sort of nodes; raises on cycles. *)
let order_nodes (cfg : Config.t) : node list =
  let nodes =
    List.map (fun d -> Ndata d) cfg.Config.data_sources
    @ List.map (fun r -> Nres r) cfg.Config.resources
    @ List.map (fun m -> Nmod m) cfg.Config.modules
  in
  let by_key = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace by_key (node_key n) n) nodes;
  let locals = locals_index cfg.Config.locals in
  let deps n =
    node_targets ~locals cfg n
    |> List.filter_map target_node_key
    |> List.filter_map (Hashtbl.find_opt by_key)
  in
  let visited = Hashtbl.create 16 in
  let out = ref [] in
  let rec visit path n =
    let key = node_key n in
    match Hashtbl.find_opt visited key with
    | Some `Done -> ()
    | Some `In_progress ->
        errf (node_span n) "dependency cycle involving %s" key
    | None ->
        Hashtbl.replace visited key `In_progress;
        List.iter (visit (key :: path)) (deps n);
        Hashtbl.replace visited key `Done;
        out := n :: !out
  in
  List.iter (visit []) nodes;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Expansion                                                           *)
(* ------------------------------------------------------------------ *)

let provider_of_rtype rtype =
  match String.index_opt rtype '_' with
  | Some i -> String.sub rtype 0 i
  | None -> rtype

(* Resolve a node-level dependency target to the base addresses of the
   instances it denotes in the current scope. *)
let target_instance_addrs scope (cfg : Config.t) target : Addr.t list =
  match target with
  | Refs.Tresource (t, n) -> (
      match Hashtbl.find_opt scope.resources (t, n) with
      | Some (Single i) -> [ i.addr ]
      | Some (Counted is) -> List.map (fun i -> i.addr) is
      | Some (For_eached kvs) -> List.map (fun (_, i) -> i.addr) kvs
      | None -> [])
  | Refs.Tdata (t, n) ->
      if
        List.exists
          (fun d -> d.Config.dtype = t && d.Config.dname = n)
          cfg.Config.data_sources
      then
        [
          Addr.make ~module_path:scope.module_path ~mode:Addr.Data ~rtype:t
            ~rname:n ();
        ]
      else []
  | Refs.Tmodule _ | Refs.Tvar _ | Refs.Tlocal _ | Refs.Tcount | Refs.Teach
  | Refs.Tpath ->
      []

let rec expand_config (env : env) ~module_path ~vars (cfg : Config.t) :
    expansion_result * scope =
  (* Fill in variable defaults; unknown variables are an error, missing
     required variables too. *)
  let var_scope = make_scope ~env ~module_path () in
  let vars =
    List.fold_left
      (fun acc (v : Config.variable) ->
        match Smap.find_opt v.Config.vname vars with
        | Some value -> Smap.add v.Config.vname value acc
        | None -> (
            match v.Config.vdefault with
            | Some d -> Smap.add v.Config.vname (eval var_scope d) acc
            | None ->
                errf v.Config.vspan "no value for required variable %S"
                  v.Config.vname))
      Smap.empty cfg.Config.variables
  in
  let scope = make_scope ~env ~module_path ~locals:cfg.Config.locals ~vars () in
  let acc_instances = ref [] in
  let emit inst = acc_instances := inst :: !acc_instances in
  let nodes = order_nodes cfg in
  List.iter
    (fun node ->
      match node with
      | Ndata d -> expand_data scope d
      | Nres r ->
          let expansion, instances = expand_resource scope cfg r in
          Hashtbl.replace scope.resources (r.Config.rtype, r.Config.rname)
            expansion;
          List.iter emit instances
      | Nmod m ->
          let expansion, instances = expand_module scope env m in
          Hashtbl.replace scope.modules m.Config.mname expansion;
          List.iter emit instances)
    nodes;
  let outputs =
    List.map
      (fun (o : Config.output) -> (o.Config.oname, eval scope o.Config.ovalue))
      cfg.Config.outputs
  in
  ({ instances = List.rev !acc_instances; outputs }, scope)

and expand_data scope (d : Config.data_source) =
  let args = eval_body scope d.Config.dbody in
  match
    scope.env.data_resolver ~rtype:d.Config.dtype ~name:d.Config.dname ~args
  with
  | Some attrs ->
      (* data attributes: resolver results override the arguments *)
      let merged = Smap.union (fun _ _ r -> Some r) args attrs in
      Hashtbl.replace scope.data (d.Config.dtype, d.Config.dname) merged
  | None ->
      errf d.Config.dspan "data source type %S is not available"
        d.Config.dtype

and expand_resource scope cfg (r : Config.resource) :
    node_expansion * instance list =
  let provider =
    match r.Config.rprovider with
    | Some p -> p
    | None -> provider_of_rtype r.Config.rtype
  in
  let targets = node_targets ~locals:scope.locals_tbl cfg (Nres r) in
  let ref_deps =
    List.concat_map (target_instance_addrs scope cfg) targets
  in
  let explicit_deps =
    List.concat_map
      (fun (ty, n) ->
        let target =
          if ty = "module" then Refs.Tmodule (n, None)
          else if String.length ty > 5 && String.sub ty 0 5 = "data." then
            Refs.Tdata (String.sub ty 5 (String.length ty - 5), n)
          else Refs.Tresource (ty, n)
        in
        target_instance_addrs scope cfg target)
      r.Config.rdepends_on
  in
  let build key count_index each_binding =
    let addr =
      Addr.make ~module_path:scope.module_path ~rtype:r.Config.rtype
        ~rname:r.Config.rname ~key ()
    in
    let inst_scope = { scope with count_index; each_binding } in
    let attrs = eval_body inst_scope r.Config.rbody in
    (* Merge prior state: computed attributes (e.g. [id]) become known. *)
    let attrs =
      match scope.env.state_lookup addr with
      | Some sattrs -> Smap.union (fun _ conf _ -> Some conf) attrs sattrs
      | None -> attrs
    in
    {
      addr;
      provider;
      attrs;
      explicit_deps;
      ref_deps;
      lifecycle = r.Config.rlifecycle;
      ispan = r.Config.rspan;
    }
  in
  match (r.Config.rcount, r.Config.rfor_each) with
  | Some _, Some _ ->
      errf r.Config.rspan "resource cannot have both count and for_each"
  | Some ce, None -> (
      match eval scope ce with
      | Value.Vint n when n >= 0 ->
          let insts =
            List.init n (fun i -> build (Addr.Kint i) (Some i) None)
          in
          (Counted insts, insts)
      | Value.Vint n -> errf r.Config.rspan "negative count %d" n
      | Value.Vunknown p ->
          errf r.Config.rspan "count depends on unknown value (%s)" p
      | v ->
          errf r.Config.rspan "count must be an integer, got %s"
            (Value.type_name v))
  | None, Some fe -> (
      match eval scope fe with
      | Value.Vmap m ->
          let kvs =
            List.map
              (fun (k, v) ->
                (k, build (Addr.Kstr k) None (Some (Value.Vstring k, v))))
              (Smap.bindings m)
          in
          (For_eached kvs, List.map snd kvs)
      | Value.Vlist vs ->
          let kvs =
            List.map
              (fun v ->
                let k = Value.to_string v in
                (k, build (Addr.Kstr k) None (Some (Value.Vstring k, v))))
              vs
          in
          (For_eached kvs, List.map snd kvs)
      | Value.Vunknown p ->
          errf r.Config.rspan "for_each depends on unknown value (%s)" p
      | v ->
          errf r.Config.rspan "for_each must be a map or set, got %s"
            (Value.type_name v))
  | None, None ->
      let inst = build Addr.Knone None None in
      (Single inst, [ inst ])

and expand_module scope env (m : Config.module_call) :
    module_expansion * instance list =
  let child_cfg =
    match env.module_registry m.Config.msource with
    | Some cfg -> cfg
    | None ->
        errf m.Config.mspan "module source %S not found in registry"
          m.Config.msource
  in
  let expand_one path_elem count_index each_binding =
    let inst_scope = { scope with count_index; each_binding } in
    let vars =
      List.fold_left
        (fun acc (name, e) -> Smap.add name (eval inst_scope e) acc)
        Smap.empty m.Config.margs
    in
    let result, _child_scope =
      expand_config env
        ~module_path:(scope.module_path @ [ path_elem ])
        ~vars child_cfg
    in
    let outputs =
      List.fold_left
        (fun acc (n, v) -> Smap.add n v acc)
        Smap.empty result.outputs
    in
    (outputs, result.instances)
  in
  match (m.Config.mcount, m.Config.mfor_each) with
  | Some _, Some _ ->
      errf m.Config.mspan "module cannot have both count and for_each"
  | Some ce, None -> (
      match eval scope ce with
      | Value.Vint n when n >= 0 ->
          let results =
            List.init n (fun i ->
                expand_one
                  (Printf.sprintf "%s[%d]" m.Config.mname i)
                  (Some i) None)
          in
          ( Mod_counted (List.map fst results),
            List.concat_map snd results )
      | v ->
          errf m.Config.mspan "module count must be an integer, got %s"
            (Value.type_name v))
  | None, Some fe -> (
      match eval scope fe with
      | Value.Vmap map ->
          let results =
            List.map
              (fun (k, v) ->
                ( k,
                  expand_one
                    (Printf.sprintf "%s[%S]" m.Config.mname k)
                    None
                    (Some (Value.Vstring k, v)) ))
              (Smap.bindings map)
          in
          ( Mod_for_eached (List.map (fun (k, (o, _)) -> (k, o)) results),
            List.concat_map (fun (_, (_, is)) -> is) results )
      | Value.Vlist vs ->
          let results =
            List.map
              (fun v ->
                let k = Value.to_string v in
                ( k,
                  expand_one
                    (Printf.sprintf "%s[%S]" m.Config.mname k)
                    None
                    (Some (Value.Vstring k, v)) ))
              vs
          in
          ( Mod_for_eached (List.map (fun (k, (o, _)) -> (k, o)) results),
            List.concat_map (fun (_, (_, is)) -> is) results )
      | v ->
          errf m.Config.mspan "module for_each must be a map or set, got %s"
            (Value.type_name v))
  | None, None ->
      let outputs, instances = expand_one m.Config.mname None None in
      (Mod_single outputs, instances)

(** Expand a configuration to its resource instances and output values.
    With a live [trace], expansion runs in an ["expand"] span counting
    the instances and outputs it produced. *)
let expand ?(env = default_env) ?(vars = Smap.empty)
    ?(trace = Cloudless_obs.Trace.null) (cfg : Config.t) : expansion_result =
  let module Trace = Cloudless_obs.Trace in
  Trace.with_span trace "expand" (fun () ->
      let env = { env with var_values = vars } in
      let result = fst (expand_config env ~module_path:[] ~vars cfg) in
      Trace.count trace "instances" (List.length result.instances);
      Trace.count trace "outputs" (List.length result.outputs);
      result)

(** Evaluate a standalone expression with optional variable bindings —
    convenience for tests and tools. *)
let eval_expr ?(vars = Smap.empty) ?(locals = []) (e : Ast.expr) : Value.t =
  let scope = make_scope ~vars ~locals () in
  eval scope e

(** Parse and evaluate an expression from text. *)
let eval_string ?(vars = Smap.empty) src : Value.t =
  eval_expr ~vars (Parser.parse_expr_string src)
