(** Source locations — re-exported from the base error library so the
    whole stack (including layers below the HCL frontend) shares one
    span type.  See {!Cloudless_error.Loc} for the definitions. *)

include Cloudless_error.Loc
