(** IPv4 address and CIDR-prefix arithmetic.

    Backs the [cidrsubnet]/[cidrhost]/[cidrnetmask] HCL functions and
    the address-space validation rules of §3.2. *)

type addr = int32
(** IPv4 address in host byte order. *)

type prefix = { network : addr; bits : int }
(** A CIDR prefix; [network] is masked to [bits]. *)

exception Invalid of string

(** Mask with the top [bits] bits set. *)
val mask : int -> int32

(** Parse dotted-quad notation; raises {!Invalid}. *)
val parse_addr : string -> addr

val addr_to_string : addr -> string

(** Parse ["10.0.0.0/16"] notation; raises {!Invalid}. *)
val parse_prefix : string -> prefix

val prefix_to_string : prefix -> string

val is_valid_prefix : string -> bool

(** Number of addresses in the prefix (capped at [max_int]). *)
val size : prefix -> int

(** Terraform's [cidrsubnet]: the [netnum]-th sub-prefix of length
    [bits + newbits]. *)
val subnet : prefix -> newbits:int -> netnum:int -> prefix

(** Terraform's [cidrhost]: the [n]-th address in the prefix. *)
val host : prefix -> int -> addr

val netmask : prefix -> addr

(** Do two prefixes share any address? *)
val overlaps : prefix -> prefix -> bool

(** Inclusive [(first, last)] address range covered by the prefix, as
    non-negative ints.  Prefixes overlap iff their ranges intersect. *)
val range : prefix -> int * int

(** Is [inner] entirely contained in [outer]? *)
val contains : outer:prefix -> inner:prefix -> bool
