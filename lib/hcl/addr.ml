(** Resource addresses — re-exported from the base error library so
    diagnostics can point at resources without depending on the HCL
    frontend.  See {!Cloudless_error.Addr} for the definitions. *)

include Cloudless_error.Addr
