(** IPv4 address and CIDR-prefix arithmetic.

    Backs the [cidrsubnet]/[cidrhost]/[cidrnetmask] HCL functions and
    the cloud-level "virtual networks must not overlap when peered"
    validation rule of §3.2. *)

type addr = int32
(** IPv4 address in host byte order. *)

type prefix = { network : addr; bits : int }
(** [bits] is the prefix length, 0..32. *)

exception Invalid of string

let invalid fmt = Fmt.kstr (fun s -> raise (Invalid s)) fmt

(* 0xFFFFFFFF << (32-bits), careful with the 32-shift UB. *)
let mask bits : int32 =
  if bits <= 0 then 0l
  else if bits >= 32 then 0xFFFFFFFFl
  else Int32.shift_left 0xFFFFFFFFl (32 - bits)

let parse_addr s : addr =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] ->
      let octet x =
        match int_of_string_opt x with
        | Some n when n >= 0 && n <= 255 -> n
        | _ -> invalid "invalid IPv4 octet %S in %S" x s
      in
      let a = octet a and b = octet b and c = octet c and d = octet d in
      Int32.logor
        (Int32.shift_left (Int32.of_int a) 24)
        (Int32.logor
           (Int32.shift_left (Int32.of_int b) 16)
           (Int32.logor (Int32.shift_left (Int32.of_int c) 8) (Int32.of_int d)))
  | _ -> invalid "invalid IPv4 address %S" s

let addr_to_string (a : addr) =
  let octet shift =
    Int32.to_int (Int32.logand (Int32.shift_right_logical a shift) 0xFFl)
  in
  Printf.sprintf "%d.%d.%d.%d" (octet 24) (octet 16) (octet 8) (octet 0)

let parse_prefix s : prefix =
  match String.index_opt s '/' with
  | None -> invalid "missing '/' in CIDR prefix %S" s
  | Some i ->
      let addr_part = String.sub s 0 i in
      let bits_part = String.sub s (i + 1) (String.length s - i - 1) in
      let bits =
        match int_of_string_opt bits_part with
        | Some n when n >= 0 && n <= 32 -> n
        | _ -> invalid "invalid prefix length %S" bits_part
      in
      let a = parse_addr addr_part in
      { network = Int32.logand a (mask bits); bits }

let prefix_to_string p =
  Printf.sprintf "%s/%d" (addr_to_string p.network) p.bits

let is_valid_prefix s =
  match parse_prefix s with _ -> true | exception Invalid _ -> false

(** Number of addresses in the prefix (2^(32-bits)), capped to max_int. *)
let size p =
  let host_bits = 32 - p.bits in
  if host_bits >= 31 then max_int else 1 lsl host_bits

(** [subnet p ~newbits ~netnum] is Terraform's [cidrsubnet]: carve the
    [netnum]-th sub-prefix of length [p.bits + newbits] out of [p]. *)
let subnet p ~newbits ~netnum =
  let bits = p.bits + newbits in
  if bits > 32 then invalid "cidrsubnet: prefix length %d exceeds 32" bits;
  if newbits < 0 then invalid "cidrsubnet: negative newbits";
  let max_netnum = if newbits >= 31 then max_int else (1 lsl newbits) - 1 in
  if netnum < 0 || netnum > max_netnum then
    invalid "cidrsubnet: netnum %d out of range for %d new bits" netnum newbits;
  let shifted = Int32.shift_left (Int32.of_int netnum) (32 - bits) in
  { network = Int32.logor p.network shifted; bits }

(** [host p n] is Terraform's [cidrhost]: the [n]-th address in [p]. *)
let host p n =
  let host_bits = 32 - p.bits in
  let max_host = if host_bits >= 31 then max_int else (1 lsl host_bits) - 1 in
  if n < 0 || n > max_host then
    invalid "cidrhost: host number %d out of range for /%d" n p.bits;
  Int32.logor p.network (Int32.of_int n)

let netmask p = mask p.bits

(** Do two prefixes share any address? *)
let overlaps a b =
  let bits = min a.bits b.bits in
  let m = mask bits in
  Int32.logand a.network m = Int32.logand b.network m

(** Inclusive [(first, last)] address range as non-negative ints; two
    prefixes overlap iff their ranges intersect, which lets rule checks
    sweep prefixes sorted by start address instead of testing pairs. *)
let range p =
  let first = Int32.to_int p.network land 0xFFFFFFFF in
  (first, first lor (0xFFFFFFFF lsr p.bits))

(** Is [inner] entirely contained in [outer]? *)
let contains ~outer ~inner =
  inner.bits >= outer.bits
  && Int32.logand inner.network (mask outer.bits) = outer.network
