(** The unified typed error channel.

    Everything below the engine boundary reports failure by raising
    {!Error} with a located {!Diagnostic.t}; the boundary (the
    {!Cloudless.Lifecycle} verbs and the CLI command handlers) catches
    it and returns [result].  This replaces the bare
    [failwith]/[invalid_arg] escapes the repo grew up with: every
    failure now carries a stage tag and, when the source is known, a
    span — the §3.2/§3.5 defect-reporting story (cf. Rahman et al.'s
    IaC gap study) applied to the engine itself.

    This library sits at the very bottom of the dependency stack so
    that the HCL frontend, the simulator and the planners can all raise
    through the same channel.  {!Loc} and {!Addr} live here for the
    same reason; [Cloudless_hcl.Loc]/[Cloudless_hcl.Addr] re-export
    them unchanged. *)

module Loc = Loc
module Addr = Addr
module Diagnostic = Diagnostic

exception Error of Diagnostic.t

let () =
  Printexc.register_printer (function
    | Error d -> Some ("cloudless error: " ^ Diagnostic.to_string d)
    | _ -> None)

let raise_diag d = raise (Error d)

(** [fail ~stage ~code msg] raises through the typed channel.  [span]
    and [addr] locate the failure when the caller knows the source. *)
let fail ?severity ~stage ~code ?span ?addr fmt =
  Fmt.kstr
    (fun msg -> raise_diag (Diagnostic.make ?severity ~stage ~code ?span ?addr msg))
    fmt

(** Convert the stdlib's untyped escapes into located diagnostics.
    Domain-specific exceptions (lexer/parser/eval/policy errors, cycle
    reports, ...) are converted where they are defined or at the engine
    boundary, which knows their payloads. *)
let of_exn = function
  | Error d -> Some d
  | Failure msg ->
      Some (Diagnostic.make ~stage:Diagnostic.Internal ~code:"failure" msg)
  | Invalid_argument msg ->
      Some
        (Diagnostic.make ~stage:Diagnostic.Internal ~code:"invalid-argument" msg)
  | Sys_error msg ->
      Some (Diagnostic.make ~stage:Diagnostic.Internal ~code:"sys-error" msg)
  | _ -> None

(** Run [f], converting typed-channel and stdlib escapes to [Error].
    Unknown exceptions propagate — the caller's boundary decides. *)
let protect f =
  match f () with
  | v -> Ok v
  | exception e -> ( match of_exn e with Some d -> Result.Error d | None -> raise e)
