(** Source locations for HCL programs.

    Every token, expression and block carries a {!span} so that later
    stages (validation diagnostics, the IaC debugger of §3.5) can point
    back at the exact line/column of the construct responsible for a
    cloud-level error. *)

type pos = {
  line : int;  (** 1-based line number *)
  col : int;  (** 1-based column number *)
  offset : int;  (** 0-based byte offset in the source *)
}

type span = { file : string; start_pos : pos; end_pos : pos }

let start_of_file = { line = 1; col = 1; offset = 0 }

let dummy_pos = { line = 0; col = 0; offset = 0 }
let dummy = { file = "<none>"; start_pos = dummy_pos; end_pos = dummy_pos }

let make ~file ~start_pos ~end_pos = { file; start_pos; end_pos }

(* The union of two spans: from the earlier start to the later end.  Used
   when an expression node is assembled from sub-expressions. *)
let merge a b =
  let start_pos =
    if a.start_pos.offset <= b.start_pos.offset then a.start_pos
    else b.start_pos
  in
  let end_pos =
    if a.end_pos.offset >= b.end_pos.offset then a.end_pos else b.end_pos
  in
  { file = a.file; start_pos; end_pos }

let is_dummy s = s.start_pos.line = 0

let pp ppf s =
  if is_dummy s then Fmt.string ppf "<unknown>"
  else if s.start_pos.line = s.end_pos.line then
    Fmt.pf ppf "%s:%d:%d-%d" s.file s.start_pos.line s.start_pos.col
      s.end_pos.col
  else
    Fmt.pf ppf "%s:%d:%d-%d:%d" s.file s.start_pos.line s.start_pos.col
      s.end_pos.line s.end_pos.col

let to_string s = Fmt.str "%a" pp s

let line s = s.start_pos.line
