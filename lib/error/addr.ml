(** Resource addresses.

    An address uniquely identifies one resource *instance* in a
    configuration, Terraform-style:
    [module.net.aws_subnet.private\[2\]], [data.aws_region.current],
    [aws_vpc.main\["east"\]]. *)

type mode = Managed | Data

type instance_key =
  | Knone  (** a singleton resource (no count/for_each) *)
  | Kint of int  (** produced by [count] *)
  | Kstr of string  (** produced by [for_each] *)

type t = {
  module_path : string list;  (** outermost module first *)
  mode : mode;
  rtype : string;
  rname : string;
  key : instance_key;
}

let make ?(module_path = []) ?(mode = Managed) ?(key = Knone) ~rtype ~rname () =
  { module_path; mode; rtype; rname; key }

let key_to_string = function
  | Knone -> ""
  | Kint i -> Printf.sprintf "[%d]" i
  | Kstr s -> Printf.sprintf "[%S]" s

let to_string a =
  let prefix =
    String.concat "" (List.map (fun m -> "module." ^ m ^ ".") a.module_path)
  in
  let mode = match a.mode with Managed -> "" | Data -> "data." in
  Printf.sprintf "%s%s%s.%s%s" prefix mode a.rtype a.rname
    (key_to_string a.key)

let pp ppf a = Fmt.string ppf (to_string a)

(* Hand-specialized structural compare, byte-for-byte the same order
   [Stdlib.compare] produces on this type (field by field; [Knone] <
   [Kint _] < [Kstr _] because constant constructors order before
   blocks and [Kint]'s tag precedes [Kstr]'s) — existing sorted
   structures are unaffected.  The generic compare walk dominated the
   1M-resource rank sort; the specialized one is mostly [String.compare]
   (memcmp). *)
let compare_key a b =
  match (a, b) with
  | Knone, Knone -> 0
  | Knone, _ -> -1
  | _, Knone -> 1
  | Kint i, Kint j -> Int.compare i j
  | Kint _, Kstr _ -> -1
  | Kstr _, Kint _ -> 1
  | Kstr s, Kstr t -> String.compare s t

let rec compare_path (p : string list) (q : string list) =
  match (p, q) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: p', y :: q' ->
      let c = String.compare x y in
      if c <> 0 then c else compare_path p' q'

let compare_mode a b =
  match (a, b) with
  | Managed, Managed | Data, Data -> 0
  | Managed, Data -> -1
  | Data, Managed -> 1

let compare a b =
  if a == b then 0
  else
    let c = compare_path a.module_path b.module_path in
    if c <> 0 then c
    else
      let c = compare_mode a.mode b.mode in
      if c <> 0 then c
      else
        let c = String.compare a.rtype b.rtype in
        if c <> 0 then c
        else
          let c = String.compare a.rname b.rname in
          if c <> 0 then c else compare_key a.key b.key

let equal a b = compare a b = 0

(** Same resource block, ignoring the instance key — e.g.
    [aws_subnet.s\[0\]] and [aws_subnet.s\[3\]] share a base. *)
let same_base a b =
  a.module_path = b.module_path && a.mode = b.mode && a.rtype = b.rtype
  && a.rname = b.rname

let base a = { a with key = Knone }

(** Order suitable for stable output: modules first, then data/managed,
    then type, name, key. *)
let display_compare a b =
  let c = compare_path a.module_path b.module_path in
  if c <> 0 then c
  else
    let c = compare_mode a.mode b.mode in
    if c <> 0 then c
    else
      let c = String.compare a.rtype b.rtype in
      if c <> 0 then c
      else
        let c = String.compare a.rname b.rname in
        if c <> 0 then c else compare_key a.key b.key

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

(** Parse the canonical rendering produced by {!to_string}.  Returns
    [None] on malformed input. *)
let of_string s =
  let rec split_modules acc rest =
    match String.index_opt rest '.' with
    | Some i when String.sub rest 0 i = "module" -> (
        let after = String.sub rest (i + 1) (String.length rest - i - 1) in
        match String.index_opt after '.' with
        | Some j ->
            let m = String.sub after 0 j in
            split_modules (m :: acc)
              (String.sub after (j + 1) (String.length after - j - 1))
        | None -> (List.rev acc, rest))
    | _ -> (List.rev acc, rest)
  in
  let module_path, rest = split_modules [] s in
  let mode, rest =
    if String.length rest > 5 && String.sub rest 0 5 = "data." then
      (Data, String.sub rest 5 (String.length rest - 5))
    else (Managed, rest)
  in
  let rest, key =
    match String.index_opt rest '[' with
    | None -> (rest, Knone)
    | Some i ->
        let inner = String.sub rest (i + 1) (String.length rest - i - 2) in
        let key =
          if String.length inner >= 2 && inner.[0] = '"' then
            Kstr (Scanf.sscanf inner "%S" (fun s -> s))
          else
            match int_of_string_opt inner with
            | Some n -> Kint n
            | None -> Kstr inner
        in
        (String.sub rest 0 i, key)
  in
  match String.index_opt rest '.' with
  | Some i ->
      let rtype = String.sub rest 0 i in
      let rname = String.sub rest (i + 1) (String.length rest - i - 1) in
      if rtype = "" || rname = "" then None
      else Some { module_path; mode; rtype; rname; key }
  | None -> None
