(** Located engine diagnostics.

    One diagnostic describes one finding anywhere in the lifecycle —
    a validation error, a blocked plan, a failed deployment, a corrupt
    state file — tagged with the stage that produced it and, when the
    source is known, the span responsible.  The typed error channel
    ({!Cloudless_error.Error}) carries exactly one of these. *)

type severity = Error | Warning | Info

type stage =
  | Syntax  (** lexing/parsing/structure *)
  | References  (** undeclared variables/resources/modules *)
  | Types  (** schema + semantic types *)
  | Cloud_rules  (** cross-resource cloud-level constraints *)
  | Mined  (** deviations from mined specifications *)
  | Plan_stage  (** diffing/ordering: blocked changes, dependency cycles *)
  | Deploy  (** execution against the cloud *)
  | State_io  (** state file parsing/persistence *)
  | Policy  (** obs/action policy evaluation *)
  | Internal  (** engine invariant violations (bugs, misuse) *)

let stage_to_string = function
  | Syntax -> "syntax"
  | References -> "references"
  | Types -> "types"
  | Cloud_rules -> "cloud-rules"
  | Mined -> "mined-specs"
  | Plan_stage -> "plan"
  | Deploy -> "deploy"
  | State_io -> "state"
  | Policy -> "policy"
  | Internal -> "internal"

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

type t = {
  severity : severity;
  stage : stage;
  code : string;  (** stable identifier, e.g. ["unknown-attribute"] *)
  message : string;
  span : Loc.span;
  addr : Addr.t option;  (** offending resource, when known *)
}

let make ?(severity = Error) ~stage ~code ?(span = Loc.dummy) ?addr message =
  { severity; stage; code; message; span; addr }

let is_error d = d.severity = Error

let pp ppf d =
  Fmt.pf ppf "%s[%s/%s] %a%s: %s"
    (severity_to_string d.severity)
    (stage_to_string d.stage) d.code Loc.pp d.span
    (match d.addr with
    | Some a -> Printf.sprintf " (%s)" (Addr.to_string a)
    | None -> "")
    d.message

let to_string d = Fmt.str "%a" pp d

let errors ds = List.filter is_error ds
let count_errors ds = List.length (errors ds)
