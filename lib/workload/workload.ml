(** Deterministic workload generators.

    Produce HCL source for the infrastructure shapes the paper's
    scenarios need: classic web tiers, microservice fleets, data
    pipelines, multi-region enterprises, and synthetic layered graphs
    for scheduler benchmarks.  All generation is a pure function of the
    parameters (no hidden randomness), so experiments are reproducible
    and the generated text also exercises the HCL front-end. *)

let buf_config f =
  let buf = Buffer.create 4096 in
  f buf;
  Buffer.contents buf

let add = Buffer.add_string

(* ------------------------------------------------------------------ *)
(* Web tier: vpc -> subnets -> sg -> instances (+ lb, + db)            *)
(* ------------------------------------------------------------------ *)

let web_tier ?(region = "us-east-1") ?(subnets = 2) ?(web_count = 4)
    ?(with_lb = true) ?(with_db = true) () =
  buf_config (fun b ->
      add b
        (Printf.sprintf
           {|resource "aws_vpc" "main" {
  cidr_block = "10.0.0.0/16"
  region     = "%s"
  name       = "web-vpc"
}

resource "aws_subnet" "app" {
  count      = %d
  vpc_id     = aws_vpc.main.id
  cidr_block = cidrsubnet(aws_vpc.main.cidr_block, 8, count.index)
  region     = "%s"
}

resource "aws_security_group" "web" {
  name   = "web-sg"
  vpc_id = aws_vpc.main.id
  region = "%s"
}

resource "aws_security_group_rule" "https" {
  security_group_id = aws_security_group.web.id
  type              = "ingress"
  from_port         = 443
  to_port           = 443
  protocol          = "tcp"
  cidr_blocks       = ["0.0.0.0/0"]
  region            = "%s"
}

resource "aws_instance" "web" {
  count                  = %d
  ami                    = "ami-0abcd1234"
  instance_type          = "t3.small"
  subnet_id              = aws_subnet.app[count.index %% %d].id
  vpc_security_group_ids = [aws_security_group.web.id]
  region                 = "%s"
}
|}
           region subnets region region region web_count subnets region);
      if with_lb then
        add b
          (Printf.sprintf
             {|
resource "aws_lb" "front" {
  name       = "web-lb"
  subnet_ids = aws_subnet.app[*].id
  region     = "%s"
}

resource "aws_lb_target_group" "tg" {
  name     = "web-tg"
  port     = 443
  protocol = "tcp"
  vpc_id   = aws_vpc.main.id
  region   = "%s"
}

resource "aws_lb_listener" "https" {
  load_balancer_id = aws_lb.front.id
  port             = 443
  protocol         = "tcp"
  target_group_id  = aws_lb_target_group.tg.id
  region           = "%s"
}
|}
             region region region);
      if with_db then
        add b
          (Printf.sprintf
             {|
resource "aws_db_subnet_group" "db" {
  name       = "web-db-subnets"
  subnet_ids = aws_subnet.app[*].id
  region     = "%s"
}

resource "aws_db_instance" "db" {
  identifier         = "web-db"
  engine             = "postgres"
  instance_class     = "db.m5.large"
  allocated_storage  = 100
  db_subnet_group_id = aws_db_subnet_group.db.id
  region             = "%s"
}
|}
             region region))

(* ------------------------------------------------------------------ *)
(* Microservices: shared network + per-service stamp                   *)
(* ------------------------------------------------------------------ *)

let microservices ?(region = "us-east-1") ?(services = 5)
    ?(instances_per_service = 3) () =
  buf_config (fun b ->
      add b
        (Printf.sprintf
           {|resource "aws_vpc" "mesh" {
  cidr_block = "10.8.0.0/16"
  region     = "%s"
}
|}
           region);
      for s = 0 to services - 1 do
        add b
          (Printf.sprintf
             {|
resource "aws_subnet" "svc%d" {
  vpc_id     = aws_vpc.mesh.id
  cidr_block = cidrsubnet(aws_vpc.mesh.cidr_block, 8, %d)
  region     = "%s"
}

resource "aws_security_group" "svc%d" {
  name   = "svc%d-sg"
  vpc_id = aws_vpc.mesh.id
  region = "%s"
}

resource "aws_instance" "svc%d" {
  count                  = %d
  ami                    = "ami-0svc%04d"
  instance_type          = "t3.small"
  subnet_id              = aws_subnet.svc%d.id
  vpc_security_group_ids = [aws_security_group.svc%d.id]
  region                 = "%s"
}

resource "aws_lb_target_group" "svc%d" {
  name     = "svc%d-tg"
  port     = %d
  protocol = "tcp"
  vpc_id   = aws_vpc.mesh.id
  region   = "%s"
}
|}
             s s region s s region s instances_per_service s s s region s s
             (8000 + s) region)
      done)

(* ------------------------------------------------------------------ *)
(* Data pipeline: buckets -> lambdas -> table, with IAM                *)
(* ------------------------------------------------------------------ *)

let data_pipeline ?(region = "us-east-1") ?(stages = 3) () =
  buf_config (fun b ->
      add b
        (Printf.sprintf
           {|resource "aws_iam_role" "pipeline" {
  name               = "pipeline-role"
  assume_role_policy = "{\"Service\": \"lambda\"}"
  region             = "%s"
}

resource "aws_iam_policy" "pipeline" {
  name   = "pipeline-policy"
  policy = "{\"Action\": \"s3:*\"}"
  region = "%s"
}

resource "aws_iam_role_policy_attachment" "pipeline" {
  role_id   = aws_iam_role.pipeline.id
  policy_id = aws_iam_policy.pipeline.id
  region    = "%s"
}

resource "aws_dynamodb_table" "results" {
  name     = "pipeline-results"
  hash_key = "run_id"
  region   = "%s"
}
|}
           region region region region);
      for s = 0 to stages - 1 do
        add b
          (Printf.sprintf
             {|
resource "aws_s3_bucket" "stage%d" {
  bucket = "pipeline-stage-%d"
  region = "%s"
}

resource "aws_lambda_function" "stage%d" {
  function_name = "transform-%d"
  runtime       = "ocaml5.1"
  handler       = "main.handle"
  role_id       = aws_iam_role.pipeline.id
  memory_mb     = 256
  region        = "%s"
}
|}
             s s region s s region)
      done)

(* ------------------------------------------------------------------ *)
(* Multi-region enterprise: identical stamp per region + peering       *)
(* ------------------------------------------------------------------ *)

let multi_region ?(regions = [ "us-east-1"; "us-west-2"; "eu-west-1" ])
    ?(vms_per_region = 2) () =
  buf_config (fun b ->
      List.iteri
        (fun i region ->
          add b
            (Printf.sprintf
               {|
resource "aws_vpc" "r%d" {
  cidr_block = "10.%d.0.0/16"
  region     = "%s"
}

resource "aws_subnet" "r%d" {
  vpc_id     = aws_vpc.r%d.id
  cidr_block = cidrsubnet(aws_vpc.r%d.cidr_block, 8, 0)
  region     = "%s"
}

resource "aws_instance" "r%d" {
  count         = %d
  ami           = "ami-0multi%02d"
  instance_type = "t3.small"
  subnet_id     = aws_subnet.r%d.id
  region        = "%s"
}

resource "aws_vpn_gateway" "r%d" {
  vpc_id        = aws_vpc.r%d.id
  region        = "%s"
  capacity_mbps = 1000
}
|}
               i i region i i i region i vms_per_region i i region i i region))
        regions;
      (* full-mesh peering between consecutive regions *)
      List.iteri
        (fun i _ ->
          if i > 0 then
            add b
              (Printf.sprintf
                 {|
resource "aws_vpc_peering_connection" "p%d" {
  vpc_id      = aws_vpc.r%d.id
  peer_vpc_id = aws_vpc.r%d.id
  region      = "%s"
}
|}
                 i (i - 1) i (List.nth regions (i - 1))))
        regions)

(* ------------------------------------------------------------------ *)
(* Synthetic layered graph for scheduler experiments (E1)              *)
(* ------------------------------------------------------------------ *)

(** [layered ~width ~depth] builds [depth] layers of [width] resources;
    each node depends on its predecessor in the same lane, and lane 0
    uses slow resource types so the graph has a pronounced critical
    path.  Lane k>0 nodes are fast. *)
let layered ?(region = "us-east-1") ~width ~depth () =
  let type_for lane layer =
    if lane = 0 then
      (* the slow lane: alternate genuinely slow types *)
      match layer mod 3 with
      | 0 -> ("aws_nat_gateway", "subnet_id")
      | 1 -> ("aws_instance", "subnet_id")
      | _ -> ("aws_lb", "subnet_ids")
    else
      match (lane + layer) mod 3 with
      | 0 -> ("aws_security_group", "vpc_id")
      | 1 -> ("aws_route_table", "vpc_id")
      | _ -> ("aws_eip", "vpc")
  in
  ignore type_for;
  buf_config (fun b ->
      add b
        (Printf.sprintf
           {|resource "aws_vpc" "root" {
  cidr_block = "10.0.0.0/16"
  region     = "%s"
}
|}
           region);
      for lane = 0 to width - 1 do
        for layer = 0 to depth - 1 do
          let rtype =
            if lane = 0 then
              match layer mod 2 with
              | 0 -> "aws_instance"
              | _ -> "aws_lb"
            else
              match (lane + layer) mod 3 with
              | 0 -> "aws_security_group"
              | 1 -> "aws_route_table"
              | _ -> "aws_subnet"
          in
          let name = Printf.sprintf "n_%d_%d" lane layer in
          let dep =
            if layer = 0 then "aws_vpc.root.id"
            else
              let prev_type =
                if lane = 0 then
                  match (layer - 1) mod 2 with
                  | 0 -> "aws_instance"
                  | _ -> "aws_lb"
                else
                  match (lane + layer - 1) mod 3 with
                  | 0 -> "aws_security_group"
                  | 1 -> "aws_route_table"
                  | _ -> "aws_subnet"
              in
              Printf.sprintf "%s.n_%d_%d.id" prev_type lane (layer - 1)
          in
          let extra_attrs =
            match rtype with
            | "aws_lb" ->
                Printf.sprintf "  name = \"lb-%d-%d\"\n" lane layer
            | "aws_instance" ->
                "  ami           = \"ami-0layer\"\n\
                \  instance_type = \"t3.small\"\n"
            | "aws_subnet" ->
                Printf.sprintf
                  "  vpc_id     = aws_vpc.root.id\n\
                  \  cidr_block = cidrsubnet(\"10.0.0.0/16\", 8, %d)\n"
                  (((lane * depth) + layer) mod 250)
            | "aws_security_group" | "aws_route_table" ->
                "  vpc_id = aws_vpc.root.id\n"
            | _ -> ""
          in
          add b
            (Printf.sprintf
               {|
resource "%s" "%s" {
%s  region     = "%s"
  depends_on = [%s]
}
|}
               rtype name extra_attrs region
               (String.concat "."
                  (match String.split_on_char '.' dep with
                  | [ t; n; _ ] -> [ t; n ]
                  | _ -> [ "aws_vpc"; "root" ])))
        done
      done)

(* ------------------------------------------------------------------ *)
(* Scale fleet: exact-n topologies for scheduler benchmarks (E11)      *)
(* ------------------------------------------------------------------ *)

(** [fleet ~resources] builds a service fleet whose expanded instance
    count is exactly [resources]: one VPC, then service groups of
    subnet + security group + target group + [instances_per_group]
    instances (all three plumbing resources hang off the VPC, the
    instances off their group's subnet and security group), padded with
    standalone EIPs to hit the exact count.  The frontier after the VPC
    is three nodes per group wide, so 1k/5k/10k fleets stress the
    executor's ready set, not just the simulated cloud.  Subnet CIDRs
    are computed here (disjoint /26 blocks inside a 10.0.0.0/8 VPC —
    2^18 of them, enough for multi-million-resource fleets) to stay
    valid at any realistic group count.  [instance_type] parameterizes the
    instance fleet so callers can generate update waves (same topology,
    different type) without editing the source text. *)
let fleet ?(region = "us-east-1") ?(instances_per_group = 6)
    ?(instance_type = "t3.small") ~resources () =
  if resources < 1 then
    Cloudless_error.fail ~stage:Cloudless_error.Diagnostic.Internal
      ~code:"invalid-argument" "Workload.fleet: resources < 1 (got %d)" resources;
  let group_size = 3 + instances_per_group in
  let groups = (resources - 1) / group_size in
  let pad = resources - 1 - (groups * group_size) in
  buf_config (fun b ->
      add b
        (Printf.sprintf
           {|resource "aws_vpc" "fleet" {
  cidr_block = "10.0.0.0/8"
  region     = "%s"
}
|}
           region);
      for g = 0 to groups - 1 do
        add b
          (Printf.sprintf
             {|
resource "aws_subnet" "g%d" {
  vpc_id     = aws_vpc.fleet.id
  cidr_block = "10.%d.%d.%d/26"
  region     = "%s"
}

resource "aws_security_group" "g%d" {
  name   = "g%d-sg"
  vpc_id = aws_vpc.fleet.id
  region = "%s"
}

resource "aws_lb_target_group" "g%d" {
  name     = "g%d-tg"
  port     = %d
  protocol = "tcp"
  vpc_id   = aws_vpc.fleet.id
  region   = "%s"
}

resource "aws_instance" "g%d" {
  count                  = %d
  ami                    = "ami-0fleet"
  instance_type          = "%s"
  subnet_id              = aws_subnet.g%d.id
  vpc_security_group_ids = [aws_security_group.g%d.id]
  region                 = "%s"
}
|}
             g (g / 1024) (g / 4 mod 256) (g mod 4 * 64) region g g region g g
             (8000 + (g mod 1000))
             region g instances_per_group instance_type g g region)
      done;
      if pad > 0 then
        add b
          (Printf.sprintf
             {|
resource "aws_eip" "pad" {
  count      = %d
  region     = "%s"
  depends_on = [aws_vpc.fleet]
}
|}
             pad region))

(** [chain ~resources] is the adversarial opposite of {!fleet}: one
    maximally deep dependency chain of EIPs, each [depends_on] its
    predecessor, so graph depth equals [resources].  Exercises the
    per-round cost of topological sorting and leveling where {!fleet}
    exercises width. *)
let chain ?(region = "us-east-1") ~resources () =
  if resources < 1 then
    Cloudless_error.fail ~stage:Cloudless_error.Diagnostic.Internal
      ~code:"invalid-argument" "Workload.chain: resources < 1 (got %d)" resources;
  buf_config (fun b ->
      add b
        (Printf.sprintf {|resource "aws_eip" "link0" {
  region = "%s"
}
|}
           region);
      for i = 1 to resources - 1 do
        add b
          (Printf.sprintf
             {|
resource "aws_eip" "link%d" {
  region     = "%s"
  depends_on = [aws_eip.link%d]
}
|}
             i region (i - 1))
      done)

(* ------------------------------------------------------------------ *)
(* Instance-level fast paths (E16)                                     *)
(* ------------------------------------------------------------------ *)

(* Million-resource benchmarks can't afford to lex/parse/eval megabytes
   of generated HCL just to obtain the expansion the text denotes, and
   the text generators above rebuild identical attribute maps once per
   resource.  These fast paths emit the evaluator's [Eval.instance]
   records directly — the same addresses, attributes (shared
   structurally across a group's count-expanded copies), reference
   provenance ([Vunknown "addr.attr"]) and dependency lists the parsed
   path yields, minus source spans.  [test_raw_speed] asserts the
   fleet/chain fast paths match the parsed+evaluated text
   field-for-field at small sizes. *)

module Eval = Cloudless_hcl.Eval
module Config = Cloudless_hcl.Config
module Addr = Cloudless_hcl.Addr
module Value = Cloudless_hcl.Value
module Smap = Value.Smap
module Loc = Cloudless_hcl.Loc

let mk_instance ~rtype ~rname ?(key = Addr.Knone) ~attrs ~ref_deps
    ~explicit_deps () : Eval.instance =
  {
    Eval.addr = Addr.make ~rtype ~rname ~key ();
    provider = "aws";
    attrs;
    explicit_deps;
    ref_deps;
    lifecycle = Config.default_lifecycle;
    ispan = Loc.dummy;
  }

(* [Vunknown "aws_vpc.fleet.id"]: how the evaluator records a reference
   to a not-yet-created resource's computed attribute *)
let unknown_attr rtype rname attr =
  Value.Vunknown (rtype ^ "." ^ rname ^ "." ^ attr)

(** {!fleet}, skipping the text round-trip: the same instances
    [expand (parse (fleet ~resources))] produces (modulo source
    spans).  [fleets] > 1 lays down that many disjoint copies (resource
    names prefixed [f<k>_], resources split evenly) — the
    weakly-connected-component shape the domain sharder wants. *)
let fleet_instances ?(region = "us-east-1") ?(instances_per_group = 6)
    ?(instance_type = "t3.small") ?(fleets = 1) ~resources () :
    Eval.instance list =
  if resources < 1 then
    Cloudless_error.fail ~stage:Cloudless_error.Diagnostic.Internal
      ~code:"invalid-argument"
      "Workload.fleet_instances: resources < 1 (got %d)" resources;
  if fleets < 1 || fleets > resources then
    Cloudless_error.fail ~stage:Cloudless_error.Diagnostic.Internal
      ~code:"invalid-argument"
      "Workload.fleet_instances: fleets out of range (got %d for %d \
       resources)"
      fleets resources;
  let vregion = Value.Vstring region in
  let acc = ref [] in
  let emit i = acc := i :: !acc in
  for k = 0 to fleets - 1 do
    let name s = if fleets = 1 then s else Printf.sprintf "f%d_%s" k s in
    (* split [resources] across fleets, remainder to the first *)
    let per = (resources / fleets) + (if k < resources mod fleets then 1 else 0) in
    let vpc_name = name "fleet" in
    let vpc_dep = Addr.make ~rtype:"aws_vpc" ~rname:vpc_name () in
    let vpc_id = unknown_attr "aws_vpc" vpc_name "id" in
    emit
      (mk_instance ~rtype:"aws_vpc" ~rname:vpc_name
         ~attrs:
           (Smap.add "cidr_block" (Value.Vstring "10.0.0.0/8")
              (Smap.singleton "region" vregion))
         ~ref_deps:[] ~explicit_deps:[] ());
    let group_size = 3 + instances_per_group in
    let groups = (per - 1) / group_size in
    let pad = per - 1 - (groups * group_size) in
    for g = 0 to groups - 1 do
      let gname = name (Printf.sprintf "g%d" g) in
      let subnet_dep = Addr.make ~rtype:"aws_subnet" ~rname:gname () in
      let sg_dep = Addr.make ~rtype:"aws_security_group" ~rname:gname () in
      emit
        (mk_instance ~rtype:"aws_subnet" ~rname:gname
           ~attrs:
             (Smap.add "vpc_id" vpc_id
                (Smap.add "cidr_block"
                   (Value.Vstring
                      (Printf.sprintf "10.%d.%d.%d/26" (g / 1024)
                         (g / 4 mod 256) (g mod 4 * 64)))
                   (Smap.singleton "region" vregion)))
           ~ref_deps:[ vpc_dep ] ~explicit_deps:[] ());
      emit
        (mk_instance ~rtype:"aws_security_group" ~rname:gname
           ~attrs:
             (Smap.add "name"
                (Value.Vstring (gname ^ "-sg"))
                (Smap.add "vpc_id" vpc_id (Smap.singleton "region" vregion)))
           ~ref_deps:[ vpc_dep ] ~explicit_deps:[] ());
      emit
        (mk_instance ~rtype:"aws_lb_target_group" ~rname:gname
           ~attrs:
             (Smap.add "name"
                (Value.Vstring (gname ^ "-tg"))
                (Smap.add "port"
                   (Value.Vint (8000 + (g mod 1000)))
                   (Smap.add "protocol" (Value.Vstring "tcp")
                      (Smap.add "vpc_id" vpc_id
                         (Smap.singleton "region" vregion)))))
           ~ref_deps:[ vpc_dep ] ~explicit_deps:[] ());
      (* the count-expanded copies share one attrs map and one deps
         list — the pre-sizing the satellite task asks for: no
         per-resource map rebuild *)
      let inst_attrs =
        Smap.add "ami" (Value.Vstring "ami-0fleet")
          (Smap.add "instance_type" (Value.Vstring instance_type)
             (Smap.add "subnet_id"
                (unknown_attr "aws_subnet" gname "id")
                (Smap.add "vpc_security_group_ids"
                   (Value.Vlist [ unknown_attr "aws_security_group" gname "id" ])
                   (Smap.singleton "region" vregion))))
      in
      let inst_refs = [ subnet_dep; sg_dep ] in
      for i = 0 to instances_per_group - 1 do
        emit
          (mk_instance ~rtype:"aws_instance" ~rname:gname ~key:(Addr.Kint i)
             ~attrs:inst_attrs ~ref_deps:inst_refs ~explicit_deps:[] ())
      done
    done;
    if pad > 0 then begin
      let pad_name = name "pad" in
      let pad_attrs = Smap.singleton "region" vregion in
      for i = 0 to pad - 1 do
        emit
          (mk_instance ~rtype:"aws_eip" ~rname:pad_name ~key:(Addr.Kint i)
             ~attrs:pad_attrs ~ref_deps:[ vpc_dep ] ~explicit_deps:[ vpc_dep ]
             ())
      done
    end
  done;
  List.rev !acc

(** {!chain}, skipping the text round-trip: one maximally deep
    [depends_on] chain of EIPs. *)
let chain_instances ?(region = "us-east-1") ~resources () :
    Eval.instance list =
  if resources < 1 then
    Cloudless_error.fail ~stage:Cloudless_error.Diagnostic.Internal
      ~code:"invalid-argument"
      "Workload.chain_instances: resources < 1 (got %d)" resources;
  let attrs = Smap.singleton "region" (Value.Vstring region) in
  let acc = ref [] in
  for i = resources - 1 downto 0 do
    let deps =
      if i = 0 then []
      else
        [ Addr.make ~rtype:"aws_eip" ~rname:(Printf.sprintf "link%d" (i - 1)) () ]
    in
    acc :=
      mk_instance ~rtype:"aws_eip"
        ~rname:(Printf.sprintf "link%d" i)
        ~attrs ~ref_deps:deps ~explicit_deps:deps ()
      :: !acc
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* Misconfiguration injection (E6)                                     *)
(* ------------------------------------------------------------------ *)

type misconfig =
  | M_region_mismatch  (** VM and NIC in different regions *)
  | M_bad_cidr  (** syntactically invalid CIDR literal *)
  | M_unknown_region  (** region that doesn't exist *)
  | M_wrong_type_ref  (** reference to the wrong resource type *)
  | M_missing_required  (** required attribute omitted *)
  | M_port_inversion  (** from_port > to_port *)
  | M_password_no_flag  (** admin_password without disable_password *)
  | M_overlapping_peering  (** peered networks with overlapping space *)
  | M_undeclared_ref  (** reference to a resource that doesn't exist *)
  | M_subnet_outside_vpc  (** subnet prefix outside parent network *)

let all_misconfigs =
  [
    M_region_mismatch;
    M_bad_cidr;
    M_unknown_region;
    M_wrong_type_ref;
    M_missing_required;
    M_port_inversion;
    M_password_no_flag;
    M_overlapping_peering;
    M_undeclared_ref;
    M_subnet_outside_vpc;
  ]

let misconfig_name = function
  | M_region_mismatch -> "region-mismatch"
  | M_bad_cidr -> "bad-cidr"
  | M_unknown_region -> "unknown-region"
  | M_wrong_type_ref -> "wrong-type-ref"
  | M_missing_required -> "missing-required"
  | M_port_inversion -> "port-inversion"
  | M_password_no_flag -> "password-no-flag"
  | M_overlapping_peering -> "overlapping-peering"
  | M_undeclared_ref -> "undeclared-ref"
  | M_subnet_outside_vpc -> "subnet-outside-vpc"

(** A small, correct base program each misconfiguration is injected
    into.  Returns (source, injected misconfig kind). *)
let misconfigured ?(region = "us-east-1") (m : misconfig) : string =
  let base nic_region vm_extra subnet_cidr sg_rule peering password =
    Printf.sprintf
      {|resource "aws_vpc" "a" {
  cidr_block = "10.0.0.0/16"
  region     = "%s"
}
resource "aws_vpc" "b" {
  cidr_block = "%s"
  region     = "%s"
}
resource "aws_subnet" "s" {
  vpc_id     = aws_vpc.a.id
  cidr_block = "%s"
  region     = "%s"
}
resource "aws_network_interface" "nic" {
  name      = "nic-1"
  subnet_id = aws_subnet.s.id
  region    = "%s"
}
resource "aws_virtual_machine" "vm" {
  name    = "vm-1"
  nic_ids = [%s]
  region  = "%s"
%s}
%s%s%s|}
      region
      (if peering then "10.0.128.0/17" else "10.1.0.0/16")
      region subnet_cidr region nic_region
      (match m with
      | M_wrong_type_ref -> "aws_subnet.s.id"
      | M_undeclared_ref -> "aws_network_interface.ghost.id"
      | _ -> "aws_network_interface.nic.id")
      region vm_extra sg_rule
      (if peering then
         {|resource "aws_vpc_peering_connection" "p" {
  vpc_id      = aws_vpc.a.id
  peer_vpc_id = aws_vpc.b.id
  region      = "us-east-1"
}
|}
       else "")
      password
  in
  match m with
  | M_region_mismatch ->
      base "us-west-2" "" "10.0.1.0/24" "" false ""
  | M_bad_cidr -> base region "" "10.0.1.0/33" "" false ""
  | M_unknown_region ->
      base region "" "10.0.1.0/24"
        {|resource "aws_eip" "ip" {
  region = "mars-central-1"
}
|}
        false ""
  | M_wrong_type_ref -> base region "" "10.0.1.0/24" "" false ""
  | M_missing_required ->
      (* security group rule without protocol/ports *)
      base region "" "10.0.1.0/24"
        {|resource "aws_security_group_rule" "r" {
  security_group_id = aws_vpc.a.id
  type              = "ingress"
}
|}
        false ""
  | M_port_inversion ->
      base region "" "10.0.1.0/24"
        {|resource "aws_security_group" "sg" {
  name   = "sg"
  vpc_id = aws_vpc.a.id
  region = "us-east-1"
}
resource "aws_security_group_rule" "r" {
  security_group_id = aws_security_group.sg.id
  type              = "ingress"
  from_port         = 8080
  to_port           = 80
  protocol          = "tcp"
  region            = "us-east-1"
}
|}
        false ""
  | M_password_no_flag ->
      base region "" "10.0.1.0/24"
        {|resource "azurerm_linux_virtual_machine" "azvm" {
  name           = "azvm"
  location       = "eastus"
  size           = "Standard_B2s"
  nic_ids        = []
  admin_password = "hunter2"
}
|}
        false ""
  | M_overlapping_peering -> base region "" "10.0.1.0/24" "" true ""
  | M_undeclared_ref -> base region "" "10.0.1.0/24" "" false ""
  | M_subnet_outside_vpc -> base region "" "192.168.1.0/24" "" false ""

(** The full E6 corpus: one program per misconfiguration class plus a
    correct control program. *)
let misconfig_corpus ?(region = "us-east-1") () :
    (string * string * bool) list =
  ("control", web_tier ~region (), false)
  :: List.map
       (fun m -> (misconfig_name m, misconfigured ~region m, true))
       all_misconfigs

(* ------------------------------------------------------------------ *)
(* Multi-cloud: one workload spanning all three provider flavours      *)
(* ------------------------------------------------------------------ *)

(** The §2.1 selling point of IaC frameworks — "all of which work
    across cloud providers" — in one program: compute on AWS, a VM on
    Azure, storage and DNS on GCP. *)
let multi_cloud () =
  {|resource "aws_vpc" "main" {
  cidr_block = "10.0.0.0/16"
  region     = "us-east-1"
}

resource "aws_subnet" "app" {
  vpc_id     = aws_vpc.main.id
  cidr_block = cidrsubnet(aws_vpc.main.cidr_block, 8, 0)
  region     = "us-east-1"
}

resource "aws_instance" "app" {
  count         = 2
  ami           = "ami-multicloud"
  instance_type = "t3.small"
  subnet_id     = aws_subnet.app.id
  region        = "us-east-1"
}

resource "azurerm_resource_group" "dr" {
  name     = "dr-group"
  location = "westeurope"
}

resource "azurerm_virtual_network" "dr" {
  name              = "dr-net"
  location          = "westeurope"
  resource_group_id = azurerm_resource_group.dr.id
  address_space     = ["10.64.0.0/16"]
}

resource "azurerm_network_interface" "dr" {
  name     = "dr-nic"
  location = "westeurope"
}

resource "azurerm_linux_virtual_machine" "dr" {
  name     = "dr-standby"
  location = "westeurope"
  size     = "Standard_B2s"
  nic_ids  = [azurerm_network_interface.dr.id]
}

resource "google_storage_bucket" "artifacts" {
  name     = "multicloud-artifacts"
  location = "us-central1"
}

resource "google_dns_managed_zone" "zone" {
  name     = "app-zone"
  dns_name = "app.example."
  region   = "us-central1"
}
|}
