(** Drift detection (§3.5).

    "Resource drift" = cloud changes made outside the IaC framework.
    Two detectors:

    - {!Scanner}: the driftctl-style baseline — periodically list/read
      every deployment resource through the management API and compare
      with state.  Thorough but expensive: O(state size) API reads per
      scan, which collides with API rate limits and quotas.
    - {!Log_tailer}: the cloudless-native approach — tail the cloud
      activity log and flag writes not attributable to an IaC engine.
      Cost is O(new log entries); detection latency is one polling
      period. *)

module Addr = Cloudless_hcl.Addr
module Value = Cloudless_hcl.Value
module Smap = Value.Smap
module State = Cloudless_state.State
module Cloud = Cloudless_sim.Cloud
module Activity_log = Cloudless_sim.Activity_log

type kind =
  | Attr_drift of { attr : string; expected : Value.t; actual : Value.t }
  | Deleted_oob  (** resource gone from the cloud but present in state *)
  | Unmanaged of { cloud_id : string; rtype : string }
      (** resource in the cloud but not tracked in state *)

type event = {
  addr : Addr.t option;  (** None for unmanaged resources *)
  cloud_id : string;
  kind : kind;
  detected_at : float;
  occurred_at : float option;  (** known for log-based detection *)
}

val kind_to_string : kind -> string
val pp_event : Format.formatter -> event -> unit

(** Is this activity-log entry a write not attributable to an IaC
    engine — i.e. a candidate drift signal? *)
val oob_write : Activity_log.entry -> bool

(** Classify one out-of-band activity-log entry against [state]:
    [Some event] when it constitutes drift for this deployment (a
    tracked resource deleted or actually diverged, or an unmanaged
    create), [None] when it is benign.  Shared by the poll-based
    {!Log_tailer} and the push-based subscription consumers — both
    detectors must flag exactly the same entries. *)
val event_of_entry :
  Cloud.t -> state:State.t -> Activity_log.entry -> event option

module Scanner : sig
  type scan_result = {
    events : event list;
    api_reads : int;  (** management API calls consumed *)
    duration : float;
    throttled : int;  (** reads that had to be retried due to 429 *)
  }

  (** One full scan: read every tracked resource, list every known
      type for unmanaged resources.  Drives the simulator to idle. *)
  val scan :
    Cloud.t -> state:State.t -> ?detect_unmanaged:bool -> unit -> scan_result
end

module Log_tailer : sig
  (** Concrete on purpose: crash-resume reconstructs tailers and
      re-seats [cursor] directly at the journal's recovery point. *)
  type t = {
    mutable cursor : int;  (** next log sequence number to consume *)
    mutable events_flagged : int;
  }

  val create : unit -> t

  (** Consume new activity-log entries and flag non-IaC writes that
      touch tracked resources (or create unmanaged ones).  Costs zero
      per-resource management reads — but each poll is one
      LookupEvents-style call against the log service, a cost the
      event-driven subscription engine (E15) does not pay. *)
  val poll : t -> Cloud.t -> state:State.t -> event list
end

type reconciliation =
  | Accept_into_state  (** regenerate state/IaC to match the cloud *)
  | Revert_in_cloud  (** push the recorded value back *)
  | Notify of string  (** surface to a human *)

(** Default reconciliation policy from the paper: regenerate for benign
    attribute drift, notify for deletions and unmanaged resources. *)
val default_policy : event -> reconciliation

(** Apply a reconciliation decision, returning the updated state. *)
val reconcile :
  Cloud.t -> state:State.t -> event -> reconciliation -> State.t
