(** Drift detection (§3.5).

    "Resource drift" = cloud changes made outside the IaC framework.
    Two detectors:

    - {!Scanner}: the driftctl-style baseline — periodically list/read
      every deployment resource through the management API and compare
      with state.  Thorough but expensive: O(state size) API reads per
      scan, which collides with API rate limits and quotas.
    - {!Log_tailer}: the cloudless-native approach — tail the cloud
      activity log and flag writes not attributable to an IaC engine.
      Cost is O(new log entries); detection latency is one polling
      period. *)

module Addr = Cloudless_hcl.Addr
module Value = Cloudless_hcl.Value
module Smap = Value.Smap
module Sset = Set.Make (String)
module State = Cloudless_state.State
module Cloud = Cloudless_sim.Cloud
module Activity_log = Cloudless_sim.Activity_log

type kind =
  | Attr_drift of { attr : string; expected : Value.t; actual : Value.t }
  | Deleted_oob  (** resource gone from the cloud but present in state *)
  | Unmanaged of { cloud_id : string; rtype : string }
      (** resource in the cloud but not tracked in state *)

type event = {
  addr : Addr.t option;  (** None for unmanaged resources *)
  cloud_id : string;
  kind : kind;
  detected_at : float;
  occurred_at : float option;  (** known for log-based detection *)
}

let kind_to_string = function
  | Attr_drift { attr; expected; actual } ->
      Printf.sprintf "attribute %s drifted: %s -> %s" attr
        (Value.show expected) (Value.show actual)
  | Deleted_oob -> "deleted outside IaC"
  | Unmanaged { cloud_id; rtype } ->
      Printf.sprintf "unmanaged %s resource %s" rtype cloud_id

let pp_event ppf e =
  Fmt.pf ppf "[%.1f] %s %s"
    e.detected_at
    (match e.addr with Some a -> Addr.to_string a | None -> "(unmanaged)")
    (kind_to_string e.kind)

(* Attributes expected to differ between state and cloud reads. *)
let comparable attrs = Smap.filter (fun k _ -> k <> "arn") attrs

(* ------------------------------------------------------------------ *)
(* Scan-based detection (the expensive baseline)                       *)
(* ------------------------------------------------------------------ *)

module Scanner = struct
  type scan_result = {
    events : event list;
    api_reads : int;  (** management API calls consumed *)
    duration : float;
    throttled : int;  (** reads that had to be retried due to 429 *)
  }

  (** One full scan: read every tracked resource, list every known
      type for unmanaged resources. *)
  let scan (cloud : Cloud.t) ~(state : State.t) ?(detect_unmanaged = false) ()
      : scan_result =
    let actor = Activity_log.Iac_engine "drift-scanner" in
    let started = Cloud.now cloud in
    let reads = ref 0 in
    let throttled = ref 0 in
    let events = ref [] in
    let emit e = events := e :: !events in
    (* read each tracked resource, retrying on throttle *)
    let rec read_resource (r : State.resource_state) =
      incr reads;
      Cloud.submit cloud ~actor
        (Cloud.Read { cloud_id = r.State.cloud_id })
        (fun result ->
          match result with
          | Ok actual ->
              Smap.iter
                (fun attr expected ->
                  match Smap.find_opt attr actual with
                  | Some actual_v when not (Value.equal expected actual_v) ->
                      emit
                        {
                          addr = Some r.State.addr;
                          cloud_id = r.State.cloud_id;
                          kind = Attr_drift { attr; expected; actual = actual_v };
                          detected_at = Cloud.now cloud;
                          occurred_at = None;
                        }
                  | _ -> ())
                (comparable r.State.attrs)
          | Error (Cloud.Not_found _) ->
              emit
                {
                  addr = Some r.State.addr;
                  cloud_id = r.State.cloud_id;
                  kind = Deleted_oob;
                  detected_at = Cloud.now cloud;
                  occurred_at = None;
                }
          | Error (Cloud.Throttled after) ->
              incr throttled;
              Cloud.schedule cloud ~delay:(after +. 0.1) (fun () ->
                  read_resource r)
          | Error _ -> ())
    in
    List.iter read_resource (State.resources state);
    (* optionally list types to find unmanaged resources *)
    if detect_unmanaged then begin
      (* built once: each listed resource checks membership in O(log n)
         instead of scanning every known id *)
      let known_ids =
        Sset.of_list
          (List.map
             (fun (r : State.resource_state) -> r.State.cloud_id)
             (State.resources state))
      in
      let types =
        List.sort_uniq String.compare
          (List.map (fun (r : State.resource_state) -> r.State.rtype)
             (State.resources state))
      in
      List.iter
        (fun rtype ->
          incr reads;
          let rec list_type () =
            Cloud.submit cloud ~actor
              (Cloud.List_type { rtype; region = None })
              (fun result ->
                match result with
                | Ok listing ->
                    Smap.iter
                      (fun cloud_id _ ->
                        if not (Sset.mem cloud_id known_ids) then
                          emit
                            {
                              addr = None;
                              cloud_id;
                              kind = Unmanaged { cloud_id; rtype };
                              detected_at = Cloud.now cloud;
                              occurred_at = None;
                            })
                      listing
                | Error (Cloud.Throttled after) ->
                    incr throttled;
                    Cloud.schedule cloud ~delay:(after +. 0.1) list_type
                | Error _ -> ())
          in
          list_type ())
        types
    end;
    Cloud.run_until_idle cloud;
    {
      events = List.rev !events;
      api_reads = !reads;
      duration = Cloud.now cloud -. started;
      throttled = !throttled;
    }
end

(* ------------------------------------------------------------------ *)
(* Log-based detection (cloudless-native)                              *)
(* ------------------------------------------------------------------ *)

(** Is this activity-log entry a write not attributable to an IaC
    engine — i.e. a candidate drift signal? *)
let oob_write (e : Activity_log.entry) =
  let is_write =
    match e.Activity_log.op with
    | Activity_log.Log_create | Activity_log.Log_update
    | Activity_log.Log_delete ->
        true
    | Activity_log.Log_read | Activity_log.Log_failure _ -> false
  in
  let is_iac =
    match e.Activity_log.actor with
    | Activity_log.Iac_engine _ -> true
    | Activity_log.Oob_script _ | Activity_log.Cloud_internal -> false
  in
  is_write && not is_iac

(** Classify one out-of-band activity-log entry against [state]:
    [Some event] when it constitutes drift for this deployment (a
    tracked resource deleted or actually diverged, or an unmanaged
    create), [None] when it is benign.  Shared by the poll-based
    {!Log_tailer} and the push-based subscription consumers — both
    detectors must flag exactly the same entries. *)
let event_of_entry (cloud : Cloud.t) ~(state : State.t)
    (e : Activity_log.entry) : event option =
  let tracked = State.find_by_cloud_id state e.Activity_log.cloud_id in
  match (e.Activity_log.op, tracked) with
  | Activity_log.Log_delete, Some r ->
      Some
        {
          addr = Some r.State.addr;
          cloud_id = e.Activity_log.cloud_id;
          kind = Deleted_oob;
          detected_at = Cloud.now cloud;
          occurred_at = Some e.Activity_log.time;
        }
  | Activity_log.Log_update, Some r -> (
      (* the log tells us *that* it changed; fetch the detail lazily
         only for flagged resources *)
      match Cloud.lookup cloud e.Activity_log.cloud_id with
      | Some live ->
          let diff =
            Smap.fold
              (fun attr expected acc ->
                match Smap.find_opt attr live.Cloud.attrs with
                | Some actual when not (Value.equal expected actual) ->
                    (attr, expected, actual) :: acc
                | _ -> acc)
              (comparable r.State.attrs) []
          in
          (match diff with
          | (attr, expected, actual) :: _ ->
              Some
                {
                  addr = Some r.State.addr;
                  cloud_id = e.Activity_log.cloud_id;
                  kind = Attr_drift { attr; expected; actual };
                  detected_at = Cloud.now cloud;
                  occurred_at = Some e.Activity_log.time;
                }
          | [] -> None)
      | None -> None)
  | Activity_log.Log_create, None ->
      Some
        {
          addr = None;
          cloud_id = e.Activity_log.cloud_id;
          kind =
            Unmanaged
              {
                cloud_id = e.Activity_log.cloud_id;
                rtype = e.Activity_log.rtype;
              };
          detected_at = Cloud.now cloud;
          occurred_at = Some e.Activity_log.time;
        }
  | _ -> None

module Log_tailer = struct
  type t = {
    mutable cursor : int;  (** next log sequence number to consume *)
    mutable events_flagged : int;
  }

  let create () = { cursor = 0; events_flagged = 0 }

  (** Consume new activity-log entries and flag non-IaC writes that
      touch tracked resources (or create unmanaged ones).  Costs zero
      per-resource management reads — but each poll is one
      LookupEvents-style call against the log service, a cost the
      event-driven subscription engine (E15) does not pay. *)
  let poll t (cloud : Cloud.t) ~(state : State.t) : event list =
    let log = Cloud.log cloud in
    let entries = Activity_log.since log t.cursor in
    t.cursor <- Activity_log.length log;
    List.filter_map
      (fun (e : Activity_log.entry) ->
        if not (oob_write e) then None
        else begin
          t.events_flagged <- t.events_flagged + 1;
          event_of_entry cloud ~state e
        end)
      entries
end

(* ------------------------------------------------------------------ *)
(* Reconciliation                                                      *)
(* ------------------------------------------------------------------ *)

type reconciliation =
  | Accept_into_state  (** regenerate state/IaC to match the cloud *)
  | Revert_in_cloud  (** push the recorded value back *)
  | Notify of string  (** surface to a human *)

(** Default reconciliation policy from the paper: regenerate for benign
    attribute drift, notify for deletions and unmanaged resources. *)
let default_policy (e : event) : reconciliation =
  match e.kind with
  | Attr_drift _ -> Accept_into_state
  | Deleted_oob -> Notify "tracked resource deleted outside IaC"
  | Unmanaged _ -> Notify "unmanaged resource detected"

(** Apply a reconciliation decision, returning the updated state. *)
let reconcile (cloud : Cloud.t) ~(state : State.t) (e : event)
    (decision : reconciliation) : State.t =
  match (decision, e.addr) with
  | Accept_into_state, Some addr -> (
      match Cloud.lookup cloud e.cloud_id with
      | Some live -> State.update_attrs state addr live.Cloud.attrs
      | None -> state)
  | Revert_in_cloud, Some addr -> (
      match State.find_opt state addr with
      | Some r -> (
          match
            Cloud.run_sync cloud
              ~actor:(Activity_log.Iac_engine "drift-reconciler")
              (Cloud.Update { cloud_id = e.cloud_id; attrs = comparable r.State.attrs })
          with
          | Ok _ | Error _ -> state)
      | None -> state)
  | _, _ -> state
