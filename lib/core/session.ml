(** The state-file-backed run-context behind the CLI verbs.

    A [Session] turns a state file on disk into a live simulated cloud
    plus tracked state, parses .tf sources (file or directory), and
    runs the plan/apply/destroy paths against them.  All failure modes
    report through the typed channel ({!Cloudless_error.Error}) or the
    legacy frontend exceptions — callers wrap themselves in
    {!Boundary.protect} to get located diagnostics. *)

module Hcl = Cloudless_hcl
module State = Cloudless_state.State
module Journal = Cloudless_state.Journal
module Plan = Cloudless_plan.Plan
module Executor = Cloudless_deploy.Executor
module Cloud = Cloudless_sim.Cloud
module Diagnostic = Cloudless_error.Diagnostic
module Trace = Cloudless_obs.Trace

let load_state path =
  if Sys.file_exists path then State.of_string ~file:path (Io_util.read_file path)
  else State.empty

let save_state path state = Io_util.write_file path (State.to_string state)

(* The write-ahead journal lives next to the state file.  A normal
   apply removes it after the final state write, so its presence on
   disk is itself the crash signal `apply --resume` keys off. *)
let journal_path state_path = state_path ^ ".journal"

let load_journal state_path =
  let path = journal_path state_path in
  if Sys.file_exists path then Journal.load path else []

let clear_journal state_path =
  let path = journal_path state_path in
  if Sys.file_exists path then Sys.remove path

(* The simulated cloud backing `apply` is reconstructed from the state
   file on every run: each tracked resource is materialized with its
   recorded cloud id's attributes, so plans and refreshes behave
   consistently across invocations. *)
let cloud_from_state ?(trace = Trace.null)
    ?(config = Cloudless_schema.Cloud_rules.config_with_checks ()) state ~seed =
  let cloud = Cloud.create ~config ~seed () in
  Cloud.set_trace cloud trace;
  (* phase 1: recreate every resource, collecting old-id -> new-id *)
  let id_map = Hashtbl.create 16 in
  let created =
    List.map
      (fun (r : State.resource_state) ->
        let cloud_id =
          Cloud.create_oob cloud ~script:"state-restore" ~rtype:r.State.rtype
            ~region:r.State.region ~attrs:r.State.attrs
        in
        Hashtbl.replace id_map r.State.cloud_id cloud_id;
        (r, cloud_id))
      (State.resources state)
  in
  (* phase 2: cross-resource references in attributes point at the old
     ids; remap them so the restored cloud is internally consistent *)
  let rec remap (v : Hcl.Value.t) : Hcl.Value.t =
    match v with
    | Hcl.Value.Vstring s -> (
        match Hashtbl.find_opt id_map s with
        | Some fresh -> Hcl.Value.Vstring fresh
        | None -> v)
    | Hcl.Value.Vlist vs -> Hcl.Value.Vlist (List.map remap vs)
    | Hcl.Value.Vmap m -> Hcl.Value.Vmap (Hcl.Value.Smap.map remap m)
    | v -> v
  in
  let remapped =
    List.fold_left
      (fun acc ((r : State.resource_state), cloud_id) ->
        let attrs = Hcl.Value.Smap.map remap r.State.attrs in
        Cloud.restore_attrs cloud ~cloud_id ~attrs;
        let attrs =
          match Cloud.lookup cloud cloud_id with
          | Some live -> live.Cloud.attrs
          | None -> attrs
        in
        State.add acc { r with State.cloud_id; attrs })
      State.empty created
  in
  (cloud, remapped)

let data_resolver ~rtype ~name:_ ~args:_ =
  match rtype with
  | "aws_region" ->
      Some (Hcl.Value.Smap.singleton "name" (Hcl.Value.Vstring "us-east-1"))
  | _ -> None

let env_for state =
  {
    Hcl.Eval.default_env with
    Hcl.Eval.data_resolver;
    state_lookup = (fun addr -> State.lookup state addr);
  }

(* A FILE argument may be a single .tf file or a directory, in which
   case every *.tf file in it is parsed and merged (Terraform's
   directory-as-module model).  Lex/parse/structure failures propagate
   as the frontend exceptions the boundary locates. *)
let parse_config path =
  let parse_one file = Hcl.Config.parse ~file (Io_util.read_file file) in
  if Sys.is_directory path then begin
    let files =
      Sys.readdir path |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".tf")
      |> List.sort String.compare
      |> List.map (Filename.concat path)
    in
    if files = [] then
      Cloudless_error.fail ~stage:Diagnostic.Syntax ~code:"no-config-files"
        "%s: no .tf files found" path;
    Hcl.Config.merge (List.map parse_one files)
  end
  else parse_one path

let expand ?(trace = Trace.null) state cfg =
  (Hcl.Eval.expand ~env:(env_for state) ~trace cfg).Hcl.Eval.instances

let plan_against ?(trace = Trace.null) ~state file =
  let cfg = parse_config file in
  let instances = expand ~trace state cfg in
  Plan.make ~trace ~state instances
