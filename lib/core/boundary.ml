(** The engine boundary: exceptions in, [result]s out.

    Every layer below this one reports failure either through the
    typed channel ({!Cloudless_error.Error}) or through one of a small
    set of domain exceptions that predate it (lexer/parser/eval
    errors, cycle reports, blocked plans, policy errors).  [protect]
    is the single place all of them become located {!Diagnostic.t}
    values — the lifecycle verbs and the CLI handlers wrap their
    bodies in it, so no raw exception escapes to a consumer. *)

module Hcl = Cloudless_hcl
module Addr = Hcl.Addr
module Diagnostic = Cloudless_validate.Diagnostic
module Validate = Cloudless_validate.Validate
module Plan = Cloudless_plan.Plan
module Dag = Cloudless_graph.Dag
module Policy = Cloudless_policy.Policy

(** Convert any known engine exception to a located diagnostic.
    Returns [None] for exceptions the engine does not own (those
    should propagate: they are bugs worth a backtrace). *)
let diagnostic_of_exn : exn -> Diagnostic.t option = function
  | Cloudless_error.Error d -> Some d
  | Dag.Cycle addrs ->
      let names = List.map Addr.to_string addrs in
      Some
        (Diagnostic.make ~stage:Diagnostic.Plan_stage ~code:"dependency-cycle"
           ?addr:(match addrs with a :: _ -> Some a | [] -> None)
           (Printf.sprintf "dependency cycle between: %s"
              (String.concat ", " names)))
  | Plan.Prevented (addr, reason) ->
      Some
        (Diagnostic.make ~stage:Diagnostic.Plan_stage ~code:"plan-blocked" ~addr
           reason)
  | Policy.Policy_error (msg, span) ->
      Some (Diagnostic.make ~stage:Diagnostic.Policy ~code:"policy-error" ~span msg)
  | e -> (
      match Validate.diagnostic_of_frontend_exn e with
      | Some d -> Some d
      | None -> (
          match Cloudless_error.of_exn e with Some d -> Some d | None -> None))

(** Run [f]; any known engine exception becomes [Error diagnostic]. *)
let protect (f : unit -> 'a) : ('a, Diagnostic.t) result =
  match f () with
  | v -> Ok v
  | exception e -> (
      match diagnostic_of_exn e with Some d -> Error d | None -> raise e)
