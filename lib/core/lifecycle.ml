(** The cloudless lifecycle facade — Figure 1(b) as an API.

    One value of type {!t} owns a simulated cloud, the deployment
    state, the version history and (optionally) a policy controller,
    and exposes the lifecycle verbs the paper's stack diagram names:

    {v
    develop -> validate -> plan -> apply
         update (incremental)    rollback
         observe (drift)         police (obs/action policies)
    v}

    Examples and benchmarks compose these; nothing here is
    experiment-specific. *)

module Hcl = Cloudless_hcl
module Value = Hcl.Value
module Addr = Hcl.Addr
module Smap = Value.Smap
module Cloud = Cloudless_sim.Cloud
module Sim_failure = Cloudless_sim.Failure
module State = Cloudless_state.State
module Journal = Cloudless_state.Journal
module Version_store = Cloudless_state.Version_store
module Validate = Cloudless_validate.Validate
module Diagnostic = Cloudless_validate.Diagnostic
module Plan = Cloudless_plan.Plan
module Executor = Cloudless_deploy.Executor
module Recovery = Cloudless_deploy.Recovery
module Rollback = Cloudless_rollback.Rollback
module Drift = Cloudless_drift.Drift
module Debugger = Cloudless_debug.Debugger
module Policy = Cloudless_policy.Policy
module Controller = Cloudless_policy.Controller
module Dag = Cloudless_graph.Dag
module Trace = Cloudless_obs.Trace

type t = {
  cloud : Cloud.t;
  trace : Trace.t;
  engine : Executor.config;
  default_region : string;
  versions : Version_store.t;
  drift_tailer : Drift.Log_tailer.t;
  controller : Controller.t option;
  vars : Value.t Smap.t;
  mutable state : State.t;
  mutable config : Hcl.Config.t option;
  mutable config_src : string;
  mutable module_lib : (string * Hcl.Config.t) list;
  mutable last_graph : Hcl.Eval.instance Dag.t option;
  mutable journal : Journal.t option;
      (** write-ahead journal shared by apply and resume *)
  mutable crash : Sim_failure.crash_policy;  (** injected process death *)
}

(** The unified error type every lifecycle verb returns.  Each case
    renders to located diagnostics via {!error_diagnostics}; no verb
    lets a raw exception escape (see {!Boundary}). *)
type error =
  | Invalid_config of Diagnostic.t list
  | Policy_denied of string
  | Deploy_failed of Executor.report
  | Crashed of int
      (** injected engine death ({!Sim_failure.Engine_crashed}): the
          payload is the number of cloud writes initiated before the
          process died; the journal survives — call {!resume} *)
  | No_config
  | Fault of Diagnostic.t
      (** anything the engine boundary caught: blocked plans,
          dependency cycles, corrupt state, policy evaluation errors,
          internal invariant violations *)

(** Every error as located diagnostics — the one rendering path the
    CLI and the examples share. *)
let error_diagnostics = function
  | Invalid_config ds -> ds
  | Policy_denied msg ->
      [ Diagnostic.make ~stage:Diagnostic.Policy ~code:"policy-denied" msg ]
  | Deploy_failed r ->
      List.map
        (fun (f : Executor.failure) ->
          Diagnostic.make ~stage:Diagnostic.Deploy ~code:"deploy-failed"
            ~addr:f.Executor.faddr f.Executor.reason)
        r.Executor.failed
  | Crashed n ->
      [
        Diagnostic.make ~stage:Diagnostic.Deploy ~code:"engine-crashed"
          (Printf.sprintf
             "engine process died after %d cloud operation(s); the journal \
              is intact — resume to recover"
             n);
      ]
  | No_config ->
      [
        Diagnostic.make ~stage:Diagnostic.Internal ~code:"no-config"
          "no configuration loaded (call develop first)";
      ]
  | Fault d -> [ d ]

let error_to_string e =
  match e with
  | Invalid_config _ ->
      Printf.sprintf "validation failed:\n%s"
        (String.concat "\n" (List.map Diagnostic.to_string (error_diagnostics e)))
  | Deploy_failed _ ->
      Printf.sprintf "deployment failed: %s"
        (String.concat "; " (List.map Diagnostic.to_string (error_diagnostics e)))
  | Crashed n ->
      Printf.sprintf "engine crashed after %d cloud operation(s)" n
  | Policy_denied msg -> "policy denied the plan: " ^ msg
  | No_config -> "no configuration loaded (call develop first)"
  | Fault d -> Diagnostic.to_string d

let create ?(seed = 42) ?(engine = Executor.cloudless_config)
    ?(default_region = "us-east-1") ?(vars = Smap.empty) ?policies
    ?(cloud_config = Cloudless_schema.Cloud_rules.config_with_checks ())
    ?(trace = Trace.null) () =
  let cloud = Cloud.create ~config:cloud_config ~seed () in
  (* API-call/throttle counters land on whatever lifecycle span is
     active when the simulator processes a submission *)
  Cloud.set_trace cloud trace;
  {
    cloud;
    trace;
    engine;
    default_region;
    versions = Version_store.create ();
    drift_tailer = Drift.Log_tailer.create ();
    controller =
      Option.map (fun src -> Controller.of_source ~file:"<policies>" src) policies;
    vars;
    state = State.empty;
    config = None;
    config_src = "";
    module_lib = [];
    last_graph = None;
    journal = None;
    crash = Sim_failure.No_crash;
  }

let cloud t = t.cloud
let trace t = t.trace
let state t = t.state
let versions t = t.versions
let config_source t = t.config_src
let journal t = t.journal

(** Turn on write-ahead journaling for subsequent applies.  With
    [path] every entry is flushed to disk as it is written; without,
    the journal is in-memory (crash-injection experiments).  [mode]
    (default {!Journal.Wal}) selects per-intent flushing or group
    commit — see {!Journal.mode} for the crash-window contract. *)
let enable_journal ?path ?mode t =
  t.journal <- Some (Journal.create ?path ?mode ())

(** Inject engine process death into the next apply (see
    {!Sim_failure.crash_policy}). *)
let set_crash t policy = t.crash <- policy

(* ------------------------------------------------------------------ *)
(* Evaluation environment wiring                                       *)
(* ------------------------------------------------------------------ *)

let data_resolver t ~rtype ~name ~args =
  match (rtype, name) with
  | "aws_region", _ | "azurerm_location", _ ->
      Some (Smap.singleton "name" (Value.Vstring t.default_region))
  | "aws_ami", _ ->
      let flavor =
        match Smap.find_opt "name_filter" args with
        | Some v -> Value.to_string v
        | None -> "linux"
      in
      Some
        (Smap.of_seq
           (List.to_seq
              [
                ("id", Value.Vstring (Printf.sprintf "ami-%s-latest" flavor));
                ("name", Value.Vstring flavor);
              ]))
  | "aws_availability_zones", _ ->
      Some
        (Smap.singleton "names"
           (Value.Vlist
              [
                Value.Vstring (t.default_region ^ "a");
                Value.Vstring (t.default_region ^ "b");
                Value.Vstring (t.default_region ^ "c");
              ]))
  | _ -> None

let env t : Hcl.Eval.env =
  {
    Hcl.Eval.var_values = t.vars;
    data_resolver = data_resolver t;
    state_lookup = (fun addr -> State.lookup t.state addr);
    module_registry =
      (fun source -> List.assoc_opt source t.module_lib);
  }

(** Register module sources (used by imports/refactors/nested module
    examples). *)
let register_modules t lib = t.module_lib <- lib @ t.module_lib

(* ------------------------------------------------------------------ *)
(* The engine boundary                                                 *)
(* ------------------------------------------------------------------ *)

(* Each verb runs inside a traced span with its body protected: any
   known engine exception becomes a [Fault] carrying the diagnostic.
   [f] itself returns the verb's (value, error) result. *)
let guarded t name (f : unit -> ('a, error) result) : ('a, error) result =
  Trace.with_span t.trace name @@ fun () ->
  match Boundary.protect f with Ok r -> r | Error d -> Error (Fault d)

(* ------------------------------------------------------------------ *)
(* Develop & validate                                                  *)
(* ------------------------------------------------------------------ *)

(** Load (or replace) the configuration source, running the full §3.2
    validation pipeline.  On success the configuration becomes current. *)
let develop t src : (Validate.report, error) result =
  guarded t "develop" @@ fun () ->
  let report =
    Validate.validate_source ~trace:t.trace ~env:(env t) ~vars:t.vars
      ~file:"main.tf" src
  in
  if Validate.ok report then begin
    t.config <- Some (Hcl.Config.parse ~file:"main.tf" src);
    t.config_src <- src;
    Ok report
  end
  else Error (Invalid_config (Diagnostic.errors report.Validate.diagnostics))

(** Validate without loading. *)
let validate t src : Validate.report =
  Validate.validate_source ~trace:t.trace ~env:(env t) ~vars:t.vars
    ~file:"main.tf" src

(* ------------------------------------------------------------------ *)
(* Plan & apply                                                        *)
(* ------------------------------------------------------------------ *)

let expand t : (Hcl.Eval.expansion_result, error) result =
  match t.config with
  | None -> Error No_config
  | Some cfg -> (
      match Hcl.Eval.expand ~env:(env t) ~vars:t.vars ~trace:t.trace cfg with
      | result -> Ok result
      | exception Hcl.Eval.Eval_error (msg, span) ->
          Error
            (Invalid_config
               [
                 Diagnostic.make ~stage:Diagnostic.References ~code:"eval-error"
                   ~span msg;
               ]))

let plan t : (Plan.t * Hcl.Eval.expansion_result, error) result =
  match expand t with
  | Error e -> Error e
  | Ok expansion -> (
      match
        Plan.make ~default_region:t.default_region ~trace:t.trace ~state:t.state
          expansion.Hcl.Eval.instances
      with
      | p -> Ok (p, expansion)
      | exception (Plan.Prevented _ as e) ->
          Error (Fault (Option.get (Boundary.diagnostic_of_exn e))))

(* Policy admission on a plan (On_plan phase). *)
let admit t plan_ : (unit, error) result =
  match t.controller with
  | None -> Ok ()
  | Some c -> (
      let obs = Controller.standard_obs ~state:t.state ~plan:plan_ () in
      let result = Controller.tick c ~phase:Policy.On_plan ~obs () in
      match result.Controller.denied with
      | Some msg -> Error (Policy_denied msg)
      | None -> Ok ())

(** Plan + admit + deploy + checkpoint.  [edited] scopes the refresh
    for incremental updates (§3.3); by default the engine's own refresh
    mode applies. *)
let apply ?edited ?description t : (Executor.report, error) result =
  guarded t "apply" @@ fun () ->
  match plan t with
  | Error e -> Error e
  | Ok (p, expansion) -> (
      match admit t p with
      | Error e -> Error e
      | Ok () ->
          let graph = Dag.of_instances expansion.Hcl.Eval.instances in
          t.last_graph <- Some graph;
          let engine =
            match edited with
            | None -> t.engine
            | Some addrs ->
                let scope = Plan.impact_scope ~graph ~edited:addrs in
                { t.engine with Executor.refresh = Executor.Refresh_scoped scope }
          in
          match
            Executor.apply t.cloud ~config:engine ~state:t.state ~plan:p
              ~trace:t.trace ?journal:t.journal ~crash:t.crash ()
          with
          | exception Sim_failure.Engine_crashed n ->
              (* process death: in-memory results are gone (t.state is
                 untouched); the journal and the cloud survive *)
              Error (Crashed n)
          | report ->
              t.state <- report.Executor.state;
              (* recompute outputs now that attributes are known *)
              (match expand t with
              | Ok e2 -> t.state <- State.set_outputs t.state e2.Hcl.Eval.outputs
              | Error _ -> ());
              if Executor.succeeded report then begin
                ignore
                  (Version_store.checkpoint t.versions ~time:(Cloud.now t.cloud)
                     ~description:
                       (Option.value ~default:"apply" description)
                     ~config_src:t.config_src ~state:t.state);
                Ok report
              end
              else Error (Deploy_failed report))

(** Develop + apply in one step. *)
let deploy t src : (Executor.report, error) result =
  match develop t src with
  | Error e -> Error e
  | Ok _ -> apply ~description:"initial deploy" t

(** Recover from a crashed apply and converge (the Lifecycle face of
    [apply --resume]).  The journal is replayed over the current
    state, unresolved intents are reconciled against the cloud's
    activity log (adopt / refresh / confirm-delete, see
    {!Recovery.resume_state}), and the configuration is re-applied so
    the interrupted remainder runs.  The same journal keeps appending,
    so a resume can itself crash and be resumed.  Returns the final
    report plus the recovery accounting. *)
let resume t : (Executor.report * Recovery.resume_report, error) result =
  guarded t "resume" @@ fun () ->
  let entries =
    match t.journal with Some j -> Journal.entries j | None -> []
  in
  (* the restarted process does not inherit the injected death *)
  t.crash <- Sim_failure.No_crash;
  let recovered, rr =
    Recovery.resume_state t.cloud ~engine:t.engine.Executor.name ~state:t.state
      ~entries
  in
  t.state <- recovered;
  Trace.count t.trace "resume_adopted" (List.length rr.Recovery.adopted);
  Trace.count t.trace "resume_replanned" (List.length rr.Recovery.replanned);
  match apply ~description:"resume" t with
  | Ok report -> Ok (report, rr)
  | Error e -> Error e

(* ------------------------------------------------------------------ *)
(* Update (incremental)                                                *)
(* ------------------------------------------------------------------ *)

(* Which resource blocks changed textually between two configs? *)
let edited_addrs (old_cfg : Hcl.Config.t) (new_cfg : Hcl.Config.t) : Addr.t list
    =
  let render (r : Hcl.Config.resource) =
    Hcl.Printer.block_to_string
      {
        Hcl.Ast.btype = "resource";
        labels = [ r.Hcl.Config.rtype; r.Hcl.Config.rname ];
        bbody = r.Hcl.Config.rbody;
        bspan = Hcl.Loc.dummy;
      }
    ^ (match r.Hcl.Config.rcount with
      | Some e -> Hcl.Printer.expr_to_string e
      | None -> "")
    ^
    match r.Hcl.Config.rfor_each with
    | Some e -> Hcl.Printer.expr_to_string e
    | None -> ""
  in
  let old_map =
    List.map (fun r -> ((r.Hcl.Config.rtype, r.Hcl.Config.rname), render r))
      old_cfg.Hcl.Config.resources
  in
  let new_map =
    List.map (fun r -> ((r.Hcl.Config.rtype, r.Hcl.Config.rname), render r))
      new_cfg.Hcl.Config.resources
  in
  let changed =
    List.filter_map
      (fun (key, text) ->
        match List.assoc_opt key old_map with
        | Some old_text when old_text = text -> None
        | _ -> Some key)
      new_map
  in
  let removed =
    List.filter_map
      (fun (key, _) ->
        if List.mem_assoc key new_map then None else Some key)
      old_map
  in
  List.map
    (fun (rtype, rname) -> Addr.make ~rtype ~rname ())
    (changed @ removed)

(** Incremental update: detect the edited resources, validate, and
    apply with the refresh scoped to the impact subgraph (§3.3's
    "accelerating deployment updates"). *)
let update t src : (Executor.report, error) result =
  let old_cfg = t.config in
  match develop t src with
  | Error e -> Error e
  | Ok _ ->
      let edited =
        match (old_cfg, t.config) with
        | Some oldc, Some newc -> edited_addrs oldc newc
        | _ -> []
      in
      apply ~edited ~description:"incremental update" t

(** Destroy everything. *)
let destroy t : (Executor.report, error) result =
  guarded t "destroy" @@ fun () ->
  let p =
    Plan.make ~default_region:t.default_region ~trace:t.trace ~state:t.state []
  in
  let report =
    Executor.apply t.cloud ~config:t.engine ~state:t.state ~plan:p
      ~trace:t.trace ()
  in
  t.state <- report.Executor.state;
  if Executor.succeeded report then begin
    ignore
      (Version_store.checkpoint t.versions ~time:(Cloud.now t.cloud)
         ~description:"destroy" ~config_src:"" ~state:t.state);
    Ok report
  end
  else Error (Deploy_failed report)

(* ------------------------------------------------------------------ *)
(* Rollback                                                            *)
(* ------------------------------------------------------------------ *)

let live_attrs t addr =
  match State.find_opt t.state addr with
  | Some r ->
      Option.map
        (fun (res : Cloud.resource) -> res.Cloud.attrs)
        (Cloud.lookup t.cloud r.State.cloud_id)
  | None -> None

(** Roll back to a recorded version using the reversibility-aware
    planner (§3.4). *)
let rollback_to ?(strategy = Rollback.Reversibility_aware) t ~version_id :
    (Executor.report, error) result =
  guarded t "rollback" @@ fun () ->
  match Version_store.find t.versions version_id with
  | None ->
      Error
        (Fault
           (Diagnostic.make ~stage:Diagnostic.State_io ~code:"unknown-version"
              (Printf.sprintf "unknown version %d" version_id)))
  | Some v ->
      let rb =
        Rollback.plan_rollback ~strategy ~target:v.Version_store.state
          ~current:t.state
          ~live:(fun addr -> live_attrs t addr)
          ()
      in
      let report =
        Executor.apply t.cloud ~config:t.engine ~state:t.state
          ~plan:rb.Rollback.plan ~trace:t.trace ()
      in
      t.state <- report.Executor.state;
      t.config_src <- v.Version_store.config_src;
      (t.config <-
         (if v.Version_store.config_src = "" then None
          else Some (Hcl.Config.parse ~file:"main.tf" v.Version_store.config_src)));
      ignore
        (Version_store.checkpoint t.versions ~time:(Cloud.now t.cloud)
           ~description:(Printf.sprintf "rollback to v%d" version_id)
           ~config_src:t.config_src ~state:t.state);
      if Executor.succeeded report then Ok report else Error (Deploy_failed report)

(* ------------------------------------------------------------------ *)
(* Observe: drift                                                      *)
(* ------------------------------------------------------------------ *)

(** Poll the activity log for drift (cheap, log-based, §3.5). *)
let check_drift t : Drift.event list =
  Trace.with_span t.trace "observe" @@ fun () ->
  let events = Drift.Log_tailer.poll t.drift_tailer t.cloud ~state:t.state in
  Trace.count t.trace "drift_events" (List.length events);
  events

(** Reconcile drift events with the default policy. *)
let reconcile_drift t (events : Drift.event list) : unit =
  List.iter
    (fun e ->
      t.state <- Drift.reconcile t.cloud ~state:t.state e (Drift.default_policy e))
    events

(* ------------------------------------------------------------------ *)
(* Diagnose                                                            *)
(* ------------------------------------------------------------------ *)

(** Translate a deployment failure into an IaC-level diagnosis
    (§3.5). *)
let diagnose t (failure : Executor.failure) : Debugger.diagnosis option =
  match (t.config, expand t) with
  | Some cfg, Ok expansion ->
      Some
        (Debugger.diagnose ~cfg ~instances:expansion.Hcl.Eval.instances
           ~addr:failure.Executor.faddr ~error:failure.Executor.reason)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Police: telemetry-driven policies                                   *)
(* ------------------------------------------------------------------ *)

type police_result = {
  decisions : Policy.decision list;
  reapplied : Executor.report option;
}

(** Run telemetry-phase policies with scenario metrics in [extra]; if a
    policy's action rewrote the configuration, redeploy it. *)
let police t ~(extra : (string * Value.t) list) :
    (police_result, error) result =
  guarded t "police" @@ fun () ->
  match (t.controller, t.config) with
  | None, _ -> Ok { decisions = []; reapplied = None }
  | Some _, None -> Error No_config
  | Some c, Some cfg -> (
      let obs = Controller.standard_obs ~state:t.state ~extra () in
      match
        Controller.tick c ~phase:Policy.On_telemetry ~obs ~config:cfg ()
      with
      | result -> (
          match result.Controller.new_config with
          | None ->
              Ok { decisions = result.Controller.decisions; reapplied = None }
          | Some cfg' -> (
              t.config <- Some cfg';
              t.config_src <- Hcl.Config.to_string cfg';
              match apply ~description:"policy action" t with
              | Ok report ->
                  Ok
                    {
                      decisions = result.Controller.decisions;
                      reapplied = Some report;
                    }
              | Error e -> Error e)))

(** Observe + police in one step: poll the activity log for drift, run
    drift-phase policies over the findings (with [drift_events] /
    [drift_deletions] observations), reconcile what the default policy
    accepts, and return the events plus any policy decisions.  This is
    the §3.5→§3.6 coupling the paper sketches: "a policy that governs
    failure handling could take resource drifts as observations". *)
let observe_and_police t : Drift.event list * Policy.decision list =
  let events = check_drift t in
  let decisions =
    match t.controller with
    | None -> []
    | Some c ->
        let deletions =
          List.length
            (List.filter
               (fun (e : Drift.event) -> e.Drift.kind = Drift.Deleted_oob)
               events)
        in
        let obs =
          Controller.standard_obs ~state:t.state
            ~extra:
              [
                ("drift_events", Value.Vint (List.length events));
                ("drift_deletions", Value.Vint deletions);
              ]
            ()
        in
        (Controller.tick c ~phase:Policy.On_drift ~obs ()).Controller.decisions
  in
  reconcile_drift t events;
  (events, decisions)
