(** Small file IO helpers shared by the CLI handlers and tests.

    These were private to [bin/cloudless_cli.ml]; they live here so
    in-process callers (tests, examples) use the same read/write paths
    the shipped binary does. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Atomic by construction: the contents land in [path ^ ".tmp"] first
   and are renamed over the target only once fully written, so a crash
   mid-write can truncate the temporary at worst — never the state
   file or journal the rename targets (POSIX rename is atomic on a
   single filesystem). *)
let write_file path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents);
  Sys.rename tmp path
