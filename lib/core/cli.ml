(** Command handlers behind the [cloudless] binary.

    Each handler is a plain function returning a process exit code, so
    tests drive the exact code paths the binary ships: [bin/cloudless_cli.ml]
    is only cmdliner wiring around these.

    Exit-code convention:
    - [0] success (for [plan]: an empty diff)
    - [1] user/config error — bad HCL, failed validation, policy denial,
      corrupt state, unknown flags
    - [2] deploy failure — the plan executed but resources failed
      (for [plan]: a non-empty diff, mirroring `terraform plan -detailed-exitcode`)

    Every error renders through {!Diagnostic.to_string}: handlers wrap
    their bodies in {!Boundary.protect}, so no raw exception escapes. *)

module Hcl = Cloudless_hcl
module Validate = Cloudless_validate.Validate
module Diagnostic = Cloudless_validate.Diagnostic
module State = Cloudless_state.State
module Journal = Cloudless_state.Journal
module Plan = Cloudless_plan.Plan
module Executor = Cloudless_deploy.Executor
module Shard = Cloudless_deploy.Shard
module Dag = Cloudless_graph.Dag
module Trace = Cloudless_obs.Trace

(** Where handler output goes; tests substitute buffers. *)
type io = { out : string -> unit; err : string -> unit }

let default_io = { out = print_string; err = prerr_string }
let outf io fmt = Printf.ksprintf io.out fmt
let errf io fmt = Printf.ksprintf io.err fmt

(* A deploy-stage diagnostic means the engine ran and resources
   failed; everything else is the user's configuration or input. *)
let exit_code_of_diag (d : Diagnostic.t) =
  match d.Diagnostic.stage with Diagnostic.Deploy -> 2 | _ -> 1

let protected io (f : unit -> int) : int =
  match Boundary.protect f with
  | Ok code -> code
  | Error d ->
      errf io "%s\n" (Diagnostic.to_string d);
      exit_code_of_diag d

(* `--trace out.jsonl`: run [f] with a tracer whose spans stream to
   [path]; the sink is closed (and the file flushed) even on error. *)
let with_trace trace_path (f : Trace.t -> 'a) : 'a =
  match trace_path with
  | None -> f Trace.null
  | Some path ->
      let sink, close = Trace.jsonl_file_sink path in
      Fun.protect ~finally:close (fun () -> f (Trace.create sink))

type engine = Baseline | Cloudless

let engine_config = function
  | Baseline -> Executor.baseline_config
  | Cloudless ->
      { Executor.cloudless_config with Executor.refresh = Executor.Refresh_full }

(* ------------------------------------------------------------------ *)
(* Handlers                                                            *)
(* ------------------------------------------------------------------ *)

let fmt ?(io = default_io) ~file ~in_place () =
  protected io @@ fun () ->
  let cfg = Session.parse_config file in
  let formatted = Hcl.Config.to_string cfg in
  if in_place then Io_util.write_file file formatted else io.out formatted;
  0

let validate ?(io = default_io) ?(level = Validate.L_cloud) ~file ~state_path ()
    =
  protected io @@ fun () ->
  let state = Session.load_state state_path in
  let report =
    if Sys.is_directory file then
      Validate.validate_config ~level ~env:(Session.env_for state)
        (Session.parse_config file)
    else
      Validate.validate_source ~level ~env:(Session.env_for state) ~file
        (Io_util.read_file file)
  in
  List.iter
    (fun d -> outf io "%s\n" (Diagnostic.to_string d))
    report.Validate.diagnostics;
  let errors = Diagnostic.count_errors report.Validate.diagnostics in
  outf io "%d error(s), %d warning(s)\n" errors
    (List.length report.Validate.diagnostics - errors);
  if errors > 0 then 1 else 0

let graph ?(io = default_io) ~file () =
  protected io @@ fun () ->
  let cfg = Session.parse_config file in
  let instances = Session.expand State.empty cfg in
  io.out (Dag.to_dot (Dag.of_instances instances));
  0

let plan ?(io = default_io) ?trace_path ~file ~state_path () =
  protected io @@ fun () ->
  with_trace trace_path @@ fun trace ->
  Trace.with_span trace "plan-cmd" @@ fun () ->
  let state = Session.load_state state_path in
  let plan = Session.plan_against ~trace ~state file in
  io.out (Plan.to_string plan);
  if Plan.is_empty plan then 0 else 2

(* `apply --resume`: the journal left behind by a crashed apply is
   merged into the recorded state before planning — every operation
   whose outcome was journaled is trusted (no duplicate create), and
   intents with no recorded outcome are simply left to the fresh plan.
   The merged state is persisted immediately, so a crash during
   recovery re-runs the same (idempotent) replay. *)
let apply ?(io = default_io) ?trace_path ?(seed = 42) ?(engine = Cloudless)
    ?cloud_config ?(resume = false) ?(domains = 1)
    ?(journal_mode = Journal.Wal) ~file ~state_path () =
  protected io @@ fun () ->
  with_trace trace_path @@ fun trace ->
  Trace.with_span trace "apply-cmd" @@ fun () ->
  (* --domains 0: size the domain pool to the machine ([Shard.apply]
     further caps it at the component count).  Auto mode always takes
     the sharded path, even when the pool resolves to one domain —
     shard output is independent of the domain count, so the state
     file stays machine-independent. *)
  let auto_domains = domains = 0 in
  let domains =
    if auto_domains then Domain.recommended_domain_count () else domains
  in
  let recorded = Session.load_state state_path in
  let recorded =
    if not resume then recorded
    else
      match Session.load_journal state_path with
      | [] ->
          io.out "No deployment journal found; nothing to resume.\n";
          recorded
      | entries ->
          let merged = Journal.replay recorded entries in
          Session.save_state state_path merged;
          let completed =
            List.length
              (List.filter
                 (fun (s : Journal.op_status) ->
                   match s.Journal.resolution with
                   | Some o -> o.Journal.ok
                   | None -> false)
                 (Journal.analyze entries))
          in
          outf io
            "Resumed from journal: %d completed operation(s) recovered, %d \
             interrupted (re-planned).\n"
            completed
            (List.length (Journal.unresolved entries));
          merged
  in
  let cloud, state =
    Session.cloud_from_state ~trace ?config:cloud_config recorded ~seed
  in
  let plan = Session.plan_against ~trace ~state file in
  if Plan.is_empty plan then begin
    Session.clear_journal state_path;
    io.out "No changes. Infrastructure up to date.\n";
    0
  end
  else if auto_domains || domains > 1 then begin
    (* `--domains N`: shard the plan by weakly-connected component and
       run disjoint shards on OCaml domains.  The sharded path is
       journal-free (see {!Shard}) — crash resume is a single-domain
       feature — so no journal file is created or cleared here. *)
    io.out (Plan.to_string plan);
    let make_cloud _c =
      (* each shard gets its own hermetic cloud restored from the same
         recorded state; the restore order is deterministic, so cloud
         ids match [state] in every shard *)
      fst (Session.cloud_from_state ?config:cloud_config recorded ~seed)
    in
    let report =
      Shard.apply ~make_cloud ~domains ~config:(engine_config engine) ~state
        ~plan ()
    in
    outf io
      "\n\
       Applied %d change(s) in %.0f simulated seconds (%d API calls, %d \
       retries; %d shard(s) on %d domain(s)).\n"
      (List.length report.Shard.applied)
      report.Shard.makespan report.Shard.api_calls report.Shard.retries
      (List.length report.Shard.shards)
      report.Shard.domains;
    List.iter
      (fun (f : Executor.failure) ->
        outf io "FAILED %s: %s\n"
          (Hcl.Addr.to_string f.Executor.faddr)
          f.Executor.reason)
      report.Shard.failed;
    List.iter
      (fun d -> errf io "%s\n" (Cloudless_error.Diagnostic.to_string d))
      (List.concat_map
         (fun (s : Shard.shard) -> s.Shard.report.Executor.diagnostics)
         report.Shard.shards);
    Session.save_state state_path report.Shard.state;
    outf io "State written to %s (%d resources).\n" state_path
      (State.size report.Shard.state);
    if report.Shard.failed <> [] then 2 else 0
  end
  else begin
    io.out (Plan.to_string plan);
    let journal =
      Journal.create ~path:(Session.journal_path state_path) ~mode:journal_mode
        ()
    in
    let report =
      Executor.apply cloud ~config:(engine_config engine) ~state ~plan ~trace
        ~journal ()
    in
    outf io
      "\nApplied %d change(s) in %.0f simulated seconds (%d API calls, %d retries).\n"
      (List.length report.Executor.applied)
      report.Executor.makespan report.Executor.api_calls report.Executor.retries;
    List.iter
      (fun (f : Executor.failure) ->
        outf io "FAILED %s: %s\n"
          (Hcl.Addr.to_string f.Executor.faddr)
          f.Executor.reason)
      report.Executor.failed;
    List.iter
      (fun d -> errf io "%s\n" (Cloudless_error.Diagnostic.to_string d))
      report.Executor.diagnostics;
    Session.save_state state_path report.Executor.state;
    (* the run completed and its effects are in the state file: the
       journal has served its purpose *)
    Journal.close journal;
    Session.clear_journal state_path;
    outf io "State written to %s (%d resources).\n" state_path
      (State.size report.Executor.state);
    if report.Executor.failed <> [] then 2 else 0
  end

let destroy ?(io = default_io) ?trace_path ?(seed = 42) ~state_path () =
  protected io @@ fun () ->
  with_trace trace_path @@ fun trace ->
  Trace.with_span trace "destroy-cmd" @@ fun () ->
  let recorded = Session.load_state state_path in
  if State.size recorded = 0 then begin
    io.out "Nothing to destroy.\n";
    0
  end
  else begin
    let cloud, state = Session.cloud_from_state ~trace recorded ~seed in
    let plan = Plan.make ~trace ~state [] in
    let report =
      Executor.apply cloud ~config:Executor.cloudless_config ~state ~plan ~trace
        ()
    in
    outf io "Destroyed %d resource(s) in %.0f simulated seconds.\n"
      (List.length report.Executor.applied)
      report.Executor.makespan;
    Session.save_state state_path report.Executor.state;
    0
  end

let policy_check ?(io = default_io) ~file ~policies_path ~state_path () =
  protected io @@ fun () ->
  let state = Session.load_state state_path in
  let controller =
    Cloudless_policy.Controller.of_source ~file:policies_path
      (Io_util.read_file policies_path)
  in
  let plan = Session.plan_against ~state file in
  let obs = Cloudless_policy.Controller.standard_obs ~state ~plan () in
  let result =
    Cloudless_policy.Controller.tick controller
      ~phase:Cloudless_policy.Policy.On_plan ~obs ()
  in
  List.iter
    (fun d -> outf io "%s\n" (Cloudless_policy.Policy.decision_to_string d))
    result.Cloudless_policy.Controller.decisions;
  match result.Cloudless_policy.Controller.denied with
  | Some msg ->
      outf io "DENIED: %s\n" msg;
      1
  | None ->
      io.out "plan admitted by all policies\n";
      0

let import ?(io = default_io) ?(no_optimize = false) ~state_path () =
  protected io @@ fun () ->
  let recorded = Session.load_state state_path in
  if State.size recorded = 0 then
    Cloudless_error.fail ~stage:Cloudless_error.Diagnostic.State_io
      ~code:"empty-state" "state %s is empty; apply something first" state_path;
  let cloud, _ = Session.cloud_from_state recorded ~seed:42 in
  let naive = Cloudless_synth.Importer.import cloud () in
  let cfg =
    if no_optimize then naive
    else
      (Cloudless_synth.Refactor.optimize ~modules:false naive)
        .Cloudless_synth.Refactor.optimized
  in
  let metrics = Cloudless_synth.Quality.measure cfg in
  io.out (Hcl.Config.to_string cfg);
  errf io "-- %s\n" (Fmt.str "%a" Cloudless_synth.Quality.pp metrics);
  0

(* `cloudless serve`: run the multi-tenant control plane against a
   scenario file for a bounded stretch of simulated time, then print
   the service summary and (optionally) the metrics snapshot.

   With [--shards N] the scenario runs on the E15 multi-shard fleet
   instead of the single loop: consistent-hash tenant placement,
   push-based drift via one activity-log subscription per shard, and
   admission backpressure ([--queue-bound]/[--admission] override the
   scenario's knobs). *)
let serve ?(io = default_io) ?trace_path ?(seed = 42) ?(engine = Cloudless)
    ?ticks ?metrics_path ?shards ?queue_bound ?admission ?episodes ?breaker
    ?waves ~scenario_path () =
  protected io @@ fun () ->
  with_trace trace_path @@ fun trace ->
  let module Cloud = Cloudless_sim.Cloud in
  let module Control_plane = Cloudless_controlplane.Control_plane in
  let module Shard = Cloudless_controlplane.Shard in
  let module Fleet = Cloudless_controlplane.Fleet in
  let module Scenario = Cloudless_controlplane.Scenario in
  let module Rollout = Cloudless_controlplane.Rollout in
  let module Metrics = Cloudless_obs.Metrics in
  let scn = Scenario.load scenario_path in
  (* --ticks rewrites the horizon before installation so the whole
     scenario (request waves, drift injections) compresses into it *)
  let scn =
    match ticks with
    | Some n ->
        {
          scn with
          Scenario.duration = float_of_int n *. scn.Scenario.drift_period;
        }
    | None -> scn
  in
  let scn =
    match queue_bound with
    | Some k -> { scn with Scenario.max_queue_depth = k }
    | None -> scn
  in
  let scn =
    match admission with
    | Some `Defer -> { scn with Scenario.admission = Shard.Defer }
    | Some `Reject -> { scn with Scenario.admission = Shard.Reject }
    | None -> scn
  in
  (* --episodes false strips the scenario's chaos windows; --breaker
     overrides the scenario's breaker switch *)
  let scn =
    match episodes with
    | Some false -> { scn with Scenario.episodes = [] }
    | Some true | None -> scn
  in
  let scn =
    match breaker with
    | Some b -> { scn with Scenario.breaker = b }
    | None -> scn
  in
  (* --waves false strips the scenario's bulk-change rollouts (E18) *)
  let scn =
    match waves with
    | Some false -> { scn with Scenario.waves = [] }
    | Some true | None -> scn
  in
  let duration = scn.Scenario.duration in
  let cloud =
    Cloud.create
      ~config:(Cloudless_schema.Cloud_rules.config_with_checks ())
      ~seed ()
  in
  Trace.set_sim_clock trace (fun () -> Cloud.now cloud);
  let finish ~config ~m ~injections ~tenants ~ndeps ~managed ~grants ~waits
      ~orphans ~extra =
    outf io
      "Service %s: %d tenant(s), %d deployment(s), %d resource(s) under \
       management after %.0f simulated seconds.\n"
      config.Control_plane.sname tenants ndeps managed (Cloud.now cloud);
    let pct name p =
      match Metrics.percentile m name p with Some v -> v | None -> 0.
    in
    outf io
      "Requests: %d done (p50 %.1fs, p99 %.1fs); reconciles: %d; drift \
       events: %d (%d injected); policy ticks: %d.\n"
      (Metrics.counter m "requests_done")
      (pct "request_latency" 50.) (pct "request_latency" 99.)
      (Metrics.counter m "reconciles")
      (Metrics.counter m "drift_events")
      injections
      (Metrics.counter m "policy_ticks");
    outf io
      "API calls: %d (%d reads, %d writes); locks: %d grant(s), %d wait(s).\n"
      (Metrics.counter m "api_calls")
      (Metrics.counter m "api_reads")
      (Metrics.counter m "api_writes")
      grants waits;
    if scn.Scenario.episodes <> [] || scn.Scenario.breaker then begin
      let g name =
        match Metrics.gauge m name with Some v -> int_of_float v | None -> 0
      in
      outf io
        "Chaos: %d episode(s), %d episode fault(s); breaker: %d opened, %d \
         fast-fail(s), %d violation(s); parked: %d request(s), %d \
         reconcile(s); scans shed: %d.\n"
        (List.length scn.Scenario.episodes)
        (Cloud.episode_fault_count cloud)
        (Metrics.counter m "breaker_opened")
        (g "breaker_fast_fails") (g "breaker_violations")
        (Metrics.counter m "requests_parked")
        (Metrics.counter m "reconciles_parked")
        (Metrics.counter m "scans_shed")
    end;
    extra ();
    (match orphans with
    | [] -> ()
    | os ->
        outf io "WARNING: %d orphaned resource(s): %s\n" (List.length os)
          (String.concat ", " os));
    (match metrics_path with
    | Some path ->
        Metrics.write_json m ~path;
        outf io "Metrics snapshot written to %s.\n" path
    | None -> io.out (Metrics.to_json m));
    0
  in
  match shards with
  | None ->
      let preset =
        match engine with
        | Cloudless -> Control_plane.cloudless_service
        | Baseline -> Control_plane.baseline_service
      in
      let config = Scenario.service_config scn preset in
      let cp = ref (Control_plane.create ~cloud ~trace config) in
      if scn.Scenario.waves <> [] then
        outf io
          "NOTE: %d wave rollout(s) in the scenario ignored — bulk-change \
           waves need the multi-shard fleet (--shards N).\n"
          (List.length scn.Scenario.waves);
      let injections = Scenario.install scn cp in
      Control_plane.run !cp ~until:duration;
      let cp = !cp in
      let m = Control_plane.metrics cp in
      let grants, waits =
        Cloudless_lock.Lock_manager.stats (Control_plane.lock cp)
      in
      finish ~config ~m ~injections:(List.length !injections)
        ~tenants:scn.Scenario.tenants
        ~ndeps:(List.length (Control_plane.deployments cp))
        ~managed:(Control_plane.managed_resource_count cp)
        ~grants ~waits ~orphans:(Control_plane.orphans cp)
        ~extra:(fun () -> ())
  | Some n ->
      let preset =
        match engine with
        | Cloudless -> Shard.fleet_service
        | Baseline -> Shard.baseline_service
      in
      let config = Scenario.service_config scn preset in
      let fleet = ref (Fleet.create ~cloud ~trace ~shards:n config) in
      let injections = Scenario.install_fleet scn fleet in
      let rollouts = Rollout.install scn fleet in
      Fleet.run !fleet ~until:duration;
      let fleet = !fleet in
      let m = Fleet.metrics fleet in
      let grants, waits =
        List.fold_left
          (fun (g, w) s ->
            let g', w' =
              Cloudless_lock.Lock_manager.stats (Shard.lock s)
            in
            (g + g', w + w'))
          (0, 0) (Fleet.shards fleet)
      in
      finish ~config ~m ~injections:(List.length !injections)
        ~tenants:scn.Scenario.tenants
        ~ndeps:(List.length (Fleet.deployments fleet))
        ~managed:(Fleet.managed_resource_count fleet)
        ~grants ~waits ~orphans:(Fleet.orphans fleet)
        ~extra:(fun () ->
          outf io
            "Fleet: %d shard(s); cross-shard drift routed: %d; rebalance \
             moves: %d; deferred: %d; rejected: %d; log polls: %d; state \
             digest %s.\n"
            (Fleet.shard_count fleet)
            (Metrics.counter m "cross_shard_routed")
            (Metrics.counter m "rebalance_moves")
            (Metrics.counter m "requests_deferred")
            (Metrics.counter m "requests_rejected")
            (Metrics.counter m "log_polls")
            (Fleet.state_digest fleet);
          List.iter
            (fun r ->
              outf io
                "Rollout %s: %s; touched %d/%d tenant(s), committed %d; %d \
                 request(s), %d rollback(s), %d gate check(s), %d mgmt \
                 call(s).\n"
                (Rollout.change r).Cloudless_wave.Change.cname
                (match Rollout.outcome r with
                | Some o -> Rollout.outcome_to_string o
                | None -> "still running")
                (List.length (Rollout.touched_tenants r))
                scn.Scenario.tenants
                (List.length (Rollout.committed_tenants r))
                (Rollout.submitted r) (Rollout.rollbacks r)
                (Rollout.gate_checks r) (Rollout.mgmt_calls r))
            rollouts)

(* `cloudless rollout`: carry a bulk change (E18) across a scenario's
   tenant fleet in canary -> growing waves with a policy/health gate at
   every wave boundary.  The scenario provides the fleet shape (tenants,
   fleet size, shard count); its request/drift schedule is not
   installed — the run is: initial applies, then each change block of
   [file] launched in sequence.  Exit 0 when every rollout converged
   fleet-wide; exit 2 when a gate stopped one (the wave rolled back,
   later waves halted). *)
let rollout ?(io = default_io) ?trace_path ?(seed = 42) ?shards ?check_period
    ~file ~scenario_path () =
  protected io @@ fun () ->
  with_trace trace_path @@ fun trace ->
  let module Cloud = Cloudless_sim.Cloud in
  let module CShard = Cloudless_controlplane.Shard in
  let module Fleet = Cloudless_controlplane.Fleet in
  let module Scenario = Cloudless_controlplane.Scenario in
  let module Rollout = Cloudless_controlplane.Rollout in
  let module Change = Cloudless_wave.Change in
  let scn = Scenario.load scenario_path in
  let changes = Change.parse ~file (Io_util.read_file file) in
  if changes = [] then
    Cloudless_error.fail ~stage:Cloudless_error.Diagnostic.Syntax
      ~code:"empty-change" "%s contains no change blocks" file;
  let cloud =
    Cloud.create
      ~config:(Cloudless_schema.Cloud_rules.config_with_checks ())
      ~seed ()
  in
  Trace.set_sim_clock trace (fun () -> Cloud.now cloud);
  let config = Scenario.service_config scn CShard.fleet_service in
  let nshards = Option.value shards ~default:scn.Scenario.shards in
  let fleet = ref (Fleet.create ~cloud ~trace ~shards:nshards config) in
  for ti = 0 to scn.Scenario.tenants - 1 do
    let tenant = Printf.sprintf "tenant%d" ti in
    for di = 0 to scn.Scenario.deployments_per_tenant - 1 do
      let dname = Printf.sprintf "d%d" di in
      let dep =
        Fleet.add_deployment !fleet ~tenant ~dname
          ~src:(Scenario.fleet_src scn ~wave:0)
      in
      ignore
        (Fleet.submit_request !fleet dep ~src:(Scenario.fleet_src scn ~wave:0)
          : [ `Accepted of int | `Deferred of int | `Rejected ])
    done
  done;
  (* Launch the changes spread over the horizon, after the initial
     applies settle. *)
  let duration = scn.Scenario.duration in
  let settle = Float.min 600. (duration /. 4.) in
  let stagger =
    (duration -. settle) /. float_of_int (List.length changes)
  in
  let drivers =
    List.mapi
      (fun i change ->
        let t = Rollout.create ?check_period ~change fleet () in
        Rollout.launch t ~at:(settle +. (float_of_int i *. stagger));
        t)
      changes
  in
  Fleet.run !fleet ~until:duration;
  let code = ref 0 in
  List.iter
    (fun r ->
      let c = Rollout.change r in
      outf io "change %S: canary %d, growth %d, %d gate(s)\n"
        c.Cloudless_wave.Change.cname c.Cloudless_wave.Change.canary
        c.Cloudless_wave.Change.growth
        (List.length c.Cloudless_wave.Change.gates);
      List.iter
        (fun (at, msg) -> outf io "  [%8.1fs] %s\n" at msg)
        (Rollout.events r);
      (match Rollout.rollback_latency r with
      | Some l -> outf io "  rollback latency: %.1fs\n" l
      | None -> ());
      outf io
        "  %s: touched %d/%d tenant(s), committed %d; %d request(s), %d \
         rollback(s), %d gate check(s), %d mgmt call(s)\n"
        (match Rollout.outcome r with
        | Some o -> Rollout.outcome_to_string o
        | None -> "still running at horizon")
        (List.length (Rollout.touched_tenants r))
        scn.Scenario.tenants
        (List.length (Rollout.committed_tenants r))
        (Rollout.submitted r) (Rollout.rollbacks r) (Rollout.gate_checks r)
        (Rollout.mgmt_calls r);
      if not (Rollout.converged r) then code := 2)
    drivers;
  !code

let examples =
  [
    ("web-tier", fun () -> Cloudless_workload.Workload.web_tier ());
    ("microservices", fun () -> Cloudless_workload.Workload.microservices ());
    ("data-pipeline", fun () -> Cloudless_workload.Workload.data_pipeline ());
    ("multi-region", fun () -> Cloudless_workload.Workload.multi_region ());
    ("multi-cloud", fun () -> Cloudless_workload.Workload.multi_cloud ());
    ( "figure2",
      fun () ->
        "data \"aws_region\" \"current\" {}\n\n\
         variable \"vmName\" {\n\
        \  type    = string\n\
        \  default = \"cloudless\"\n\
         }\n\n\
         resource \"aws_network_interface\" \"n1\" {\n\
        \  name     = \"example-nic\"\n\
        \  location = data.aws_region.current.name\n\
         }\n\n\
         resource \"aws_virtual_machine\" \"vm1\" {\n\
        \  name    = var.vmName\n\
        \  nic_ids = [aws_network_interface.n1.id]\n\
         }\n" );
  ]

let example ?(io = default_io) ~name () =
  protected io @@ fun () ->
  match List.assoc_opt name examples with
  | Some gen ->
      io.out (gen ());
      0
  | None ->
      Cloudless_error.fail ~stage:Cloudless_error.Diagnostic.Internal
        ~code:"unknown-example" "unknown example %s (try: %s)" name
        (String.concat ", " (List.map fst examples))
