(* E17 (soak): chaos episodes + the resilient control plane.

   A 2-hour simulated soak: 64 tenants on a 4-shard fleet, a revision
   wave every 15 minutes, and a schedule of time-windowed fault
   episodes aimed at the waves — a global provider outage, an error
   storm and a throttle storm on aws_instance, two spot-termination
   waves, and a region quota cut that lands exactly while the spot
   replacements are being re-created.  Circuit breakers are on: writes
   that keep failing trip their (API kind, rtype) cell, the affected
   work parks until the next half-open probe, and unaffected tenants
   keep being served.  The bench asserts the E17 claims on its own
   output:

   - convergence after every episode: at each episode's deadline
     (window end + 600 s) the fleet manages exactly tenants*resources
     rows and nothing is still parked;
   - zero calls through an open breaker: every shard's violation
     tripwire reads 0, while rejections (fast-fails) are non-zero —
     the breaker actually carried load;
   - degraded mode is partial, not total: every calm tenant untouched
     by spot kills keeps its request p99 within 2x of the same
     scenario run without episodes (floored at 1 s);
   - a crash mid-outage resumes with zero orphans, zero duplicate
     creates, full management count, and a state digest byte-identical
     to an uncrashed run of the same scenario;
   - determinism: two identical chaos runs (same seed) export
     byte-identical metrics snapshots, PRNG-consuming error storms and
     all.

   Results land in BENCH_soak.json (BENCH_soak_quick.json with
   --quick, which shrinks the tenant count and shard fan-out but keeps
   the full 2-hour horizon and episode schedule). *)

open Bench_util
module Activity_log = Cloudless_sim.Activity_log
module Rate_limiter = Cloudless_sim.Rate_limiter
module Failure = Cloudless_sim.Failure
module Cloud_rules = Cloudless_schema.Cloud_rules
module Shard = Cloudless_controlplane.Shard
module Fleet = Cloudless_controlplane.Fleet
module Scenario = Cloudless_controlplane.Scenario
module Breaker = Cloudless_deploy.Breaker
module Metrics = Cloudless_obs.Metrics

let resources = 8
let duration = 7200.
let wave_interval = 900.
let converge_grace = 600.

let ep = Failure.episode

(* Each window straddles a request wave (waves fire at 0, 900, 1800,
   ...) so in-flight writes actually feel the fault; the quota cut
   overlaps the second spot wave so the replacement creates run into
   Quota_exceeded and must ride the breaker until the window lifts. *)
let episode_specs =
  [
    ep ~magnitude:1.0 ~start_:880. ~finish:1100. Failure.Outage;
    ep ~rtype:"aws_instance" ~magnitude:0.85 ~start_:1780. ~finish:2050.
      Failure.Error_storm;
    ep ~rtype:"aws_instance" ~magnitude:15. ~start_:2680. ~finish:2950.
      Failure.Throttle_storm;
    ep ~magnitude:6. ~start_:3700. ~finish:3701. Failure.Spot_termination;
    ep ~magnitude:4. ~start_:4490. ~finish:4491. Failure.Spot_termination;
    ep ~rtype:"aws_instance" ~magnitude:4. ~start_:4480. ~finish:4800.
      Failure.Quota_cut;
  ]

let episode_kinds =
  List.length
    (List.sort_uniq compare
       (List.map (fun (e : Failure.episode) -> e.Failure.ekind) episode_specs))

let service_cloud ~seed =
  Cloud.create
    ~config:(Cloud_rules.config_with_checks ())
    ~write_limiter:(Rate_limiter.create ~capacity:1e7 ~refill_rate:1e6)
    ~read_limiter:(Rate_limiter.create ~capacity:1e7 ~refill_rate:1e6)
    ~seed ()

let soak_scenario ?(episodes = episode_specs) ~tenants ~shards () =
  {
    Scenario.default with
    Scenario.tenants;
    shards;
    deployments_per_tenant = 1;
    resources;
    requests_per_tenant = 8;
    request_interval = wave_interval;
    drift_events = 0;
    drift_period = 60.;
    policy_period = 0.;
    duration;
    episodes;
    breaker = true;
    calm_tenants = max 2 (tenants / 8);
  }

let sum_shards f fleet =
  List.fold_left (fun acc s -> acc + f s) 0 (Fleet.shards fleet)

let breaker_sum f fleet =
  sum_shards
    (fun s -> match Shard.breaker s with Some b -> f b | None -> 0)
    fleet

type checkpoint = {
  ckind : string;
  at : float;
  managed : int;
  cexpected : int;
  parked : int;
  copen_cells : int;
}

(* Run a scenario on the fleet, capturing a convergence checkpoint at
   every episode's deadline (window end + grace). *)
let run_soak ?crash ~scn ~seed () =
  let cloud = service_cloud ~seed in
  let config = Scenario.service_config scn Shard.fleet_service in
  let fleet = ref (Fleet.create ~cloud ~shards:scn.Scenario.shards config) in
  let injections = Scenario.install_fleet scn fleet in
  let checkpoints = ref [] in
  let expected = scn.Scenario.tenants * scn.Scenario.resources in
  List.iter
    (fun (e : Failure.episode) ->
      let deadline = e.Failure.efinish +. converge_grace in
      Cloud.schedule cloud ~delay:deadline (fun () ->
          let f = !fleet in
          checkpoints :=
            {
              ckind = Failure.episode_kind_to_string e.Failure.ekind;
              at = deadline;
              managed = Fleet.managed_resource_count f;
              cexpected = expected;
              parked = sum_shards Shard.parked_work f;
              copen_cells =
                breaker_sum (fun b -> Breaker.open_cells b) f;
            }
            :: !checkpoints))
    scn.Scenario.episodes;
  (match crash with
  | Some k -> Fleet.set_crash !fleet (Failure.Crash_after k)
  | None -> ());
  let crashed =
    match Fleet.run !fleet ~until:scn.Scenario.duration with
    | () -> false
    | exception Failure.Engine_crashed _ -> true
  in
  (fleet, !injections, List.rev !checkpoints, crashed)

(* --- main soak leg -------------------------------------------------- *)

type soak_result = {
  tenants : int;
  shards : int;
  requests_done : int;
  requests_expected : int;
  requests_parked : int;
  reconciles_parked : int;
  episode_faults : int;
  breaker_opened : int;
  fast_fails : int;
  violations : int;
  degraded_entries : int;
  spot_injected : int;
  spot_detected : int;
  checkpoints : checkpoint list;
  calm_p99 : float;
  unaffected : (string * float) list;  (** (tenant, p99) per unaffected *)
}

let run_soak_leg ~tenants ~shards ~seed =
  let scn = soak_scenario ~tenants ~shards () in
  let fleet, injections, checkpoints, crashed = run_soak ~scn ~seed () in
  if crashed then failwith "e17: unexpected crash in soak leg";
  let fleet = !fleet in
  let m = Fleet.metrics fleet in
  let detections = Fleet.drift_detections fleet in
  let spot_detected =
    List.length
      (List.filter
         (fun (inj : Scenario.injection) ->
           List.exists
             (fun (cid, at) ->
               cid = inj.Scenario.icloud_id
               && at >= inj.Scenario.injected_at -. 1e-9)
             detections)
         injections)
  in
  (* Calm baseline: the same fleet and load with the episode schedule
     stripped (breakers still armed, so the config is identical). *)
  let calm_scn = soak_scenario ~episodes:[] ~tenants ~shards () in
  let calm_fleet, _, _, _ = run_soak ~scn:calm_scn ~seed () in
  let calm_p99 =
    match Metrics.percentile (Fleet.metrics !calm_fleet) "request_latency" 99. with
    | Some v -> v
    | None -> failwith "e17: calm leg recorded no request latency"
  in
  (* Unaffected = calm-revision tenants whose instances no spot wave
     touched and whose requests never parked. *)
  let spot_tenants =
    List.sort_uniq String.compare
      (List.map (fun (i : Scenario.injection) -> i.Scenario.itenant) injections)
  in
  let unaffected =
    List.filter_map
      (fun ti ->
        let tenant = Printf.sprintf "tenant%d" ti in
        if
          List.mem tenant spot_tenants
          || Metrics.counter m ("requests_parked." ^ tenant) > 0
        then None
        else
          match Metrics.percentile m ("request_latency." ^ tenant) 99. with
          | Some p -> Some (tenant, p)
          | None -> None)
      (List.init scn.Scenario.calm_tenants (fun i -> tenants - 1 - i))
  in
  {
    tenants;
    shards;
    requests_done = Metrics.counter m "requests_done";
    requests_expected = tenants * scn.Scenario.requests_per_tenant;
    requests_parked = Metrics.counter m "requests_parked";
    reconciles_parked = Metrics.counter m "reconciles_parked";
    episode_faults = Cloud.episode_fault_count (Fleet.cloud fleet);
    breaker_opened = Metrics.counter m "breaker_opened";
    fast_fails = breaker_sum (fun b -> Breaker.rejections b) fleet;
    violations = breaker_sum (fun b -> Breaker.violations b) fleet;
    degraded_entries = Metrics.counter m "degraded_entries";
    spot_injected = List.length injections;
    spot_detected;
    checkpoints;
    calm_p99;
    unaffected;
  }

(* --- crash leg: die mid-outage, resume, converge ------------------- *)

type crash_result = {
  crash_after : int;
  orphans : int;
  dup_creates : int;
  managed : int;
  expected_managed : int;
  digest_matches_uncrashed : bool;
}

let engine_creates cloud =
  List.length
    (List.filter
       (fun (e : Activity_log.entry) ->
         match (e.Activity_log.op, e.Activity_log.actor) with
         | Activity_log.Log_create, Activity_log.Iac_engine _ -> true
         | _ -> false)
       (Activity_log.all (Cloud.log cloud)))

(* The initial create wave starts at t=0 and the outage opens at t=2,
   so the crash (after write 48) lands inside the window, with the
   breaker already carrying the storm.  No spot waves here, so
   engine creates minus managed rows = duplicated creates. *)
let crash_scenario =
  {
    (soak_scenario
       ~episodes:[ ep ~magnitude:1.0 ~start_:2. ~finish:300. Failure.Outage ]
       ~tenants:16 ~shards:2 ())
    with
    Scenario.requests_per_tenant = 1;
    duration = 900.;
    calm_tenants = 0;
  }

let run_crash_leg ~seed =
  let scn = crash_scenario in
  let ref_fleet, _, _, _ = run_soak ~scn ~seed () in
  let ref_digest = Fleet.state_digest !ref_fleet in
  let crash_after = 48 in
  let fleet_ref, _, _, crashed = run_soak ~crash:crash_after ~scn ~seed () in
  if not crashed then failwith "e17: crash leg did not crash";
  let fresh, _reports = Fleet.resume !fleet_ref in
  fleet_ref := fresh;
  Fleet.run fresh ~until:scn.Scenario.duration;
  let expected_managed = scn.Scenario.tenants * resources in
  let managed = Fleet.managed_resource_count fresh in
  {
    crash_after;
    orphans = List.length (Fleet.orphans fresh);
    dup_creates = engine_creates (Fleet.cloud fresh) - managed;
    managed;
    expected_managed;
    digest_matches_uncrashed =
      String.equal (Fleet.state_digest fresh) ref_digest;
  }

(* --- determinism leg ----------------------------------------------- *)

let determinism_scenario =
  {
    (soak_scenario
       ~episodes:
         [
           ep ~magnitude:1.0 ~start_:50. ~finish:150. Failure.Outage;
           ep ~rtype:"aws_instance" ~magnitude:0.7 ~start_:280. ~finish:400.
             Failure.Error_storm;
           ep ~magnitude:2. ~start_:600. ~finish:601. Failure.Spot_termination;
         ]
       ~tenants:8 ~shards:2 ())
    with
    Scenario.requests_per_tenant = 2;
    request_interval = 300.;
    duration = 1200.;
  }

let chaos_snapshot ~seed =
  let fleet_ref, _, _, _ = run_soak ~scn:determinism_scenario ~seed () in
  Metrics.to_json (Fleet.metrics !fleet_ref)

(* --- JSON ----------------------------------------------------------- *)

let json_file ~quick =
  if quick then "BENCH_soak_quick.json" else "BENCH_soak.json"

let json_of_checkpoint c =
  Printf.sprintf
    "    {\"episode\": \"%s\", \"at\": %.0f, \"managed\": %d, \
     \"expected\": %d, \"parked\": %d, \"open_cells\": %d}"
    c.ckind c.at c.managed c.cexpected c.parked c.copen_cells

let write_json ~quick ~(soak : soak_result) ~(crash : crash_result)
    ~determinism_ok =
  let worst_unaffected =
    List.fold_left (fun acc (_, p) -> Float.max acc p) 0. soak.unaffected
  in
  let oc = open_out (json_file ~quick) in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"e17_soak\",\n\
    \  \"quick\": %b,\n\
    \  \"tenants\": %d,\n\
    \  \"shards\": %d,\n\
    \  \"resources_per_tenant\": %d,\n\
    \  \"duration\": %.0f,\n\
    \  \"episodes\": %d,\n\
    \  \"episode_kinds\": %d,\n\
    \  \"episode_faults\": %d,\n\
    \  \"requests_done\": %d,\n\
    \  \"requests_expected\": %d,\n\
    \  \"requests_parked\": %d,\n\
    \  \"reconciles_parked\": %d,\n\
    \  \"degraded_entries\": %d,\n\
    \  \"breaker\": {\"opened\": %d, \"fast_fails\": %d, \"violations\": %d},\n\
    \  \"spot\": {\"injected\": %d, \"detected\": %d},\n\
    \  \"checkpoints\": [\n%s\n  ],\n\
    \  \"unaffected\": {\"calm_p99\": %.2f, \"tenants\": %d, \
     \"worst_p99\": %.2f},\n\
    \  \"crash\": {\"tenants\": %d, \"shards\": 2, \"crash_after\": %d, \
     \"orphans\": %d, \"dup_creates\": %d, \"managed\": %d, \
     \"expected_managed\": %d, \"digest_matches_uncrashed\": %b},\n\
    \  \"summary\": {\"converged_after_every_episode\": true, \
     \"zero_open_breaker_calls\": %b, \"unaffected_p99_ok\": true, \
     \"determinism_ok\": %b}\n\
     }\n"
    quick soak.tenants soak.shards resources duration
    (List.length episode_specs) episode_kinds soak.episode_faults
    soak.requests_done soak.requests_expected soak.requests_parked
    soak.reconciles_parked soak.degraded_entries soak.breaker_opened
    soak.fast_fails soak.violations soak.spot_injected soak.spot_detected
    (String.concat ",\n" (List.map json_of_checkpoint soak.checkpoints))
    soak.calm_p99
    (List.length soak.unaffected)
    worst_unaffected crash_scenario.Scenario.tenants crash.crash_after
    crash.orphans crash.dup_creates crash.managed crash.expected_managed
    crash.digest_matches_uncrashed (soak.violations = 0) determinism_ok;
  close_out oc

(* --- assertions ----------------------------------------------------- *)

let assert_claims (soak : soak_result) (crash : crash_result) determinism_ok =
  if soak.requests_done <> soak.requests_expected then
    failwith
      (Printf.sprintf "e17: %d/%d requests completed" soak.requests_done
         soak.requests_expected);
  if soak.episode_faults = 0 then
    failwith "e17: episodes injected no faults";
  if soak.breaker_opened = 0 then failwith "e17: no breaker ever opened";
  if soak.fast_fails = 0 then failwith "e17: breaker never fast-failed a call";
  if soak.violations <> 0 then
    failwith
      (Printf.sprintf "e17: %d call(s) issued through an open breaker"
         soak.violations);
  if soak.requests_parked = 0 && soak.reconciles_parked = 0 then
    failwith "e17: degraded mode never parked any work";
  if soak.degraded_entries = 0 then
    failwith "e17: fleet never entered degraded mode";
  if soak.spot_detected <> soak.spot_injected then
    failwith
      (Printf.sprintf "e17: %d/%d spot kills detected" soak.spot_detected
         soak.spot_injected);
  List.iter
    (fun (c : checkpoint) ->
      if c.managed <> c.cexpected then
        failwith
          (Printf.sprintf
             "e17: not converged %.0fs after %s episode: %d/%d managed" c.at
             c.ckind c.managed c.cexpected);
      if c.parked <> 0 then
        failwith
          (Printf.sprintf "e17: %d unit(s) still parked %.0fs after %s episode"
             c.parked c.at c.ckind))
    soak.checkpoints;
  if soak.unaffected = [] then
    failwith "e17: no unaffected tenant survived the episode schedule";
  let bound = 2. *. Float.max 1. soak.calm_p99 in
  List.iter
    (fun (tenant, p99) ->
      if p99 > bound then
        failwith
          (Printf.sprintf
             "e17: unaffected %s p99 %.1fs exceeds 2x calm baseline %.1fs"
             tenant p99 soak.calm_p99))
    soak.unaffected;
  if crash.orphans <> 0 then failwith "e17: crash leg left orphans";
  if crash.dup_creates <> 0 then failwith "e17: crash leg duplicated creates";
  if crash.managed <> crash.expected_managed then
    failwith "e17: crash leg lost resources";
  if not crash.digest_matches_uncrashed then
    failwith "e17: post-resume digest differs from uncrashed run";
  if not determinism_ok then
    failwith "e17: chaos metrics snapshots not byte-identical"

(* --- driver --------------------------------------------------------- *)

let run () =
  let quick = !Bench_util.quick in
  section
    (Printf.sprintf "E17: chaos soak%s" (if quick then " (quick)" else ""));
  let seed = 42 in
  let tenants = if quick then 16 else 64 in
  let shards = if quick then 2 else 4 in
  let soak = run_soak_leg ~tenants ~shards ~seed in
  let widths = [ 16; 7; 9; 9; 7; 7 ] in
  row widths [ "episode"; "t"; "managed"; "expected"; "parked"; "open" ];
  hline widths;
  List.iter
    (fun c ->
      row widths
        [
          c.ckind;
          Printf.sprintf "%.0f" c.at;
          string_of_int c.managed;
          string_of_int c.cexpected;
          string_of_int c.parked;
          string_of_int c.copen_cells;
        ])
    soak.checkpoints;
  Printf.printf
    "requests %d/%d done; parked %d request(s) + %d reconcile(s); episode \
     faults %d; breaker opened %d, fast-fails %d, violations %d\n"
    soak.requests_done soak.requests_expected soak.requests_parked
    soak.reconciles_parked soak.episode_faults soak.breaker_opened
    soak.fast_fails soak.violations;
  Printf.printf
    "unaffected tenants: %d (calm p99 %.1fs, worst unaffected p99 %.1fs)\n"
    (List.length soak.unaffected)
    soak.calm_p99
    (List.fold_left (fun a (_, p) -> Float.max a p) 0. soak.unaffected);
  let crash = run_crash_leg ~seed in
  Printf.printf
    "crash leg (16 tenants, 2 shards, crash after write %d, mid-outage): \
     orphans=%d dup_creates=%d managed=%d/%d digest_match=%b\n"
    crash.crash_after crash.orphans crash.dup_creates crash.managed
    crash.expected_managed crash.digest_matches_uncrashed;
  let determinism_ok =
    String.equal (chaos_snapshot ~seed) (chaos_snapshot ~seed)
  in
  Printf.printf "chaos determinism: %s\n"
    (if determinism_ok then "ok" else "FAILED");
  assert_claims soak crash determinism_ok;
  write_json ~quick ~soak ~crash ~determinism_ok;
  Printf.printf "wrote %s\n" (json_file ~quick)
