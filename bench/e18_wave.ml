(* E18: fleet-wide bulk-change waves with policy gates and auto-rollback.

   A bulk change ("set instance_type everywhere") expressed once in the
   policy DSL's action vocabulary rolls across a 64-tenant fleet in
   canary -> geometrically growing waves, with a policy/health gate at
   every wave boundary and wave-scoped auto-rollback when the gate
   trips.  Three legs, asserted on the bench's own output:

   - blast radius: a policy-violating change (t2.nano, forbidden by a
     compliance gate) is stopped at the canary wave — at most wave-1
     tenants ever receive it, all of them are rolled back to the
     pre-wave revision (zero residual violations), later waves never
     submit.  The naive apply-everywhere baseline pushes the same bad
     change to all 64 tenants.  The price of gating is management-plane
     calls (quiescence polls, gate evaluations), which the bench
     reports;
   - clean rollout: a compliant change converges fleet-wide, wave sizes
     following the canary*growth^k schedule, zero rollbacks;
   - crash-resume: the fleet dies mid-rollout (between wave commits);
     the successor restores the committed-wave boundary from the wave
     journal's Wave_mark records, re-submits from the first uncommitted
     wave, and converges with 0 orphans, 0 duplicate creates and a
     state digest byte-identical to an uncrashed run.

   Results land in BENCH_wave.json (BENCH_wave_quick.json with --quick,
   which shrinks the fleet to 16 tenants / 2 shards). *)

open Bench_util
module Activity_log = Cloudless_sim.Activity_log
module Failure = Cloudless_sim.Failure
module Cloud_rules = Cloudless_schema.Cloud_rules
module Journal = Cloudless_state.Journal
module Shard = Cloudless_controlplane.Shard
module Fleet = Cloudless_controlplane.Fleet
module Scenario = Cloudless_controlplane.Scenario
module Rollout = Cloudless_controlplane.Rollout
module Change = Cloudless_wave.Change
module Planner = Cloudless_wave.Planner
module Wave = Cloudless_wave.Wave
module Rego_like = Cloudless_policy.Rego_like
module Metrics = Cloudless_obs.Metrics

let resources = 6
let duration = 7200.
let launch_at = 600.
let check_period = 30.

(* Both changes parse from source — the same path `cloudless rollout`
   takes.  The gate forbids t2.nano: the bad change violates it on the
   canary tenant's own instances, the clean one never does. *)
let change_src value =
  Printf.sprintf
    {|
change "set_itype" {
  canary = 1
  growth = 2

  action "bump" {
    kind   = "set_attr"
    target = "aws_instance.*"
    attr   = "instance_type"
    value  = %S
  }

  gate "no_nano" {
    kind    = "attr_equals"
    rtype   = "aws_instance"
    attr    = "instance_type"
    value   = "t2.nano"
    message = "t2.nano is forbidden by compliance"
  }
}
|}
    value

let parse_change value =
  match Change.parse ~file:"<e18>" (change_src value) with
  | [ c ] -> c
  | _ -> failwith "e18: expected exactly one change block"

let bad_change () = parse_change "t2.nano"
let clean_change () = parse_change "t3.large"

let scenario ~tenants ~shards =
  {
    Scenario.default with
    Scenario.tenants;
    shards;
    deployments_per_tenant = 1;
    resources;
    requests_per_tenant = 1;
    drift_events = 0;
    policy_period = 0.;
    duration;
  }

(* Fleet with every tenant registered and its initial apply submitted —
   the request/drift schedule of the scenario is not installed, so the
   only traffic after settling is the rollout's own. *)
let build_fleet ~scn ~seed =
  let cloud =
    Cloud.create ~config:(Cloud_rules.config_with_checks ()) ~seed ()
  in
  let config = Scenario.service_config scn Shard.fleet_service in
  let fleet = ref (Fleet.create ~cloud ~shards:scn.Scenario.shards config) in
  for ti = 0 to scn.Scenario.tenants - 1 do
    let tenant = Printf.sprintf "tenant%d" ti in
    let dep =
      Fleet.add_deployment !fleet ~tenant ~dname:"d0"
        ~src:(Scenario.fleet_src scn ~wave:0)
    in
    ignore
      (Fleet.submit_request !fleet dep ~src:(Scenario.fleet_src scn ~wave:0)
        : [ `Accepted of int | `Deferred of int | `Rejected ])
  done;
  fleet

let run_gated ?crash ~scn ~change ~seed () =
  let fleet = build_fleet ~scn ~seed in
  let journal = Journal.create () in
  let driver = Rollout.create ~journal ~check_period ~change fleet () in
  Rollout.launch driver ~at:launch_at;
  (match crash with
  | Some k -> Fleet.set_crash !fleet (Failure.Crash_after k)
  | None -> ());
  let crashed =
    match Fleet.run !fleet ~until:duration with
    | () -> false
    | exception Failure.Engine_crashed _ -> true
  in
  (fleet, driver, journal, crashed)

(* The baseline: no waves, no gate — rewrite every tenant's config and
   submit all of it at the same instant. *)
let run_naive ~scn ~change ~seed =
  let fleet = build_fleet ~scn ~seed in
  let cloud = Fleet.cloud !fleet in
  let reached = ref 0 in
  Cloud.schedule cloud ~delay:launch_at (fun () ->
      let f = !fleet in
      List.iter
        (fun (dep : Shard.deployment) ->
          match
            Planner.rewrite_src change ~file:"<naive>" dep.Shard.config_src
          with
          | Some src ->
              incr reached;
              ignore
                (Fleet.submit_request f dep ~src
                  : [ `Accepted of int | `Deferred of int | `Rejected ])
          | None -> ())
        (Fleet.deployments f));
  Fleet.run !fleet ~until:duration;
  (fleet, !reached)

(* Gate-predicate violations over the whole fleet's recorded states. *)
let fleet_violations fleet (change : Change.t) =
  List.concat_map
    (fun (dep : Shard.deployment) ->
      Rego_like.evaluate change.Change.gates
        (Shard.expand ~state:dep.Shard.state dep.Shard.config_src))
    (Fleet.deployments fleet)

let violating_tenants fleet (change : Change.t) =
  List.filter
    (fun (dep : Shard.deployment) ->
      Rego_like.evaluate change.Change.gates
        (Shard.expand ~state:dep.Shard.state dep.Shard.config_src)
      <> [])
    (Fleet.deployments fleet)
  |> List.map (fun (d : Shard.deployment) -> d.Shard.tenant)
  |> List.sort_uniq String.compare

let engine_creates cloud =
  List.length
    (List.filter
       (fun (e : Activity_log.entry) ->
         match (e.Activity_log.op, e.Activity_log.actor) with
         | Activity_log.Log_create, Activity_log.Iac_engine _ -> true
         | _ -> false)
       (Activity_log.all (Cloud.log cloud)))

(* --- leg 1: blast radius --------------------------------------------- *)

type blast_result = {
  tenants : int;
  shards : int;
  wave1_size : int;
  reached_gated : int;  (** tenants the bad change was ever submitted to *)
  reached_naive : int;
  residual_gated : int;  (** violating tenants after gated run + rollback *)
  residual_naive : int;
  rolled_back : bool;
  rollback_latency : float;
  gated_mgmt_calls : int;
  gate_checks : int;
  gated_api_calls : int;
  naive_api_calls : int;
}

let run_blast_leg ~tenants ~shards ~seed =
  let scn = scenario ~tenants ~shards in
  let change = bad_change () in
  let fleet, driver, _journal, crashed = run_gated ~scn ~change ~seed () in
  if crashed then failwith "e18: unexpected crash in blast leg";
  let rolled_back =
    match Rollout.outcome driver with
    | Some (Rollout.Rolled_back _) -> true
    | _ -> false
  in
  let naive_fleet, reached_naive = run_naive ~scn ~change ~seed in
  {
    tenants;
    shards;
    wave1_size =
      (match Planner.wave_sizes ~canary:change.Change.canary
               ~growth:change.Change.growth tenants with
      | w :: _ -> w
      | [] -> 0);
    reached_gated = List.length (Rollout.touched_tenants driver);
    reached_naive;
    residual_gated = List.length (violating_tenants !fleet change);
    residual_naive = List.length (violating_tenants !naive_fleet change);
    rolled_back;
    rollback_latency = Option.value ~default:(-1.) (Rollout.rollback_latency driver);
    gated_mgmt_calls = Rollout.mgmt_calls driver;
    gate_checks = Rollout.gate_checks driver;
    gated_api_calls = Metrics.counter (Fleet.metrics !fleet) "api_calls";
    naive_api_calls = Metrics.counter (Fleet.metrics !naive_fleet) "api_calls";
  }

(* --- leg 2: clean rollout -------------------------------------------- *)

type clean_result = {
  converged : bool;
  committed : int;
  waves : int;
  expected_waves : int;
  rollbacks : int;
  clean_violations : int;
  retyped : bool;  (** every instance actually carries the new type *)
}

let run_clean_leg ~tenants ~shards ~seed =
  let scn = scenario ~tenants ~shards in
  let change = clean_change () in
  let fleet, driver, _journal, crashed = run_gated ~scn ~change ~seed () in
  if crashed then failwith "e18: unexpected crash in clean leg";
  let fleet = !fleet in
  let retyped =
    List.for_all
      (fun (dep : Shard.deployment) ->
        List.for_all
          (fun (r : Cloudless_state.State.resource_state) ->
            r.Cloudless_state.State.rtype <> "aws_instance"
            || Cloudless_hcl.Value.Smap.find_opt "instance_type"
                 r.Cloudless_state.State.attrs
               = Some (Cloudless_hcl.Value.Vstring "t3.large"))
          (Cloudless_state.State.resources dep.Shard.state))
      (Fleet.deployments fleet)
  in
  {
    converged = Rollout.converged driver;
    committed = List.length (Rollout.committed_tenants driver);
    waves = List.length (Wave.waves (Rollout.wave_machine driver));
    expected_waves =
      List.length
        (Planner.wave_sizes ~canary:(clean_change ()).Change.canary
           ~growth:(clean_change ()).Change.growth tenants);
    rollbacks = Rollout.rollbacks driver;
    clean_violations = List.length (fleet_violations fleet (clean_change ()));
    retyped;
  }

(* --- leg 3: crash mid-rollout, resume from the wave journal ---------- *)

type crash_result = {
  crash_after : int;
  crashed_mid_rollout : bool;
  resumed_from_wave : int;
  orphans : int;
  dup_creates : int;
  resumed_converged : bool;
  digest_matches_uncrashed : bool;
}

(* 16 tenants / 2 shards and a journaled-write budget that lands the
   crash between wave commits.  The budget is derived from the
   reference run rather than hardcoded: retries inflate the initial
   applies by a seed-dependent amount, but the reference run is the
   same seed and schedule, so its fleet-wide [api_writes] counter is
   exactly the crash run's would-be total.  The rollout itself is the
   last 32 writes (waves of 1/2/4/8/1 tenants x 2 instance updates,
   i.e. cumulative offsets -32/-30/-26/-18/-2 from the total), so
   [total - 10] dies inside the fourth wave with three waves already
   committed.  The bench asserts the landing spot (crashed, rollout
   unfinished, at least the canary committed) so a drift in write
   volume fails loudly instead of silently testing nothing. *)
let crash_margin = 10

let run_crash_leg ~seed =
  let scn = scenario ~tenants:16 ~shards:2 in
  let change = clean_change () in
  let ref_fleet, ref_driver, _, _ = run_gated ~scn ~change ~seed () in
  if not (Rollout.converged ref_driver) then
    failwith "e18: reference run did not converge";
  let ref_digest = Fleet.state_digest !ref_fleet in
  let crash_after =
    Metrics.counter (Fleet.metrics !ref_fleet) "api_writes" - crash_margin
  in
  let fleet, driver, journal, crashed =
    run_gated ~crash:crash_after ~scn ~change ~seed ()
  in
  if not crashed then failwith "e18: crash leg did not crash";
  let crashed_mid_rollout =
    Rollout.outcome driver = None
    && Rollout.touched_tenants driver <> []
  in
  let resumed_from_wave =
    match Wave.cursor (Journal.entries journal) with
    | Wave.Resume_at k -> k
    | Wave.Finished _ -> -1
  in
  Rollout.abandon driver;
  let fresh, _reports = Fleet.resume !fleet in
  fleet := fresh;
  let driver' = Rollout.resume ~journal ~check_period ~change fleet () in
  Rollout.start driver';
  Fleet.run fresh ~until:duration;
  let managed = Fleet.managed_resource_count fresh in
  {
    crash_after;
    crashed_mid_rollout;
    resumed_from_wave;
    orphans = List.length (Fleet.orphans fresh);
    dup_creates = engine_creates (Fleet.cloud fresh) - managed;
    resumed_converged = Rollout.converged driver';
    digest_matches_uncrashed =
      String.equal (Fleet.state_digest fresh) ref_digest;
  }

(* --- JSON ------------------------------------------------------------ *)

let json_file ~quick =
  if quick then "BENCH_wave_quick.json" else "BENCH_wave.json"

let write_json ~quick ~(blast : blast_result) ~(clean : clean_result)
    ~(crash : crash_result) =
  let oc = open_out (json_file ~quick) in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"e18_wave\",\n\
    \  \"quick\": %b,\n\
    \  \"tenants\": %d,\n\
    \  \"shards\": %d,\n\
    \  \"resources_per_tenant\": %d,\n\
    \  \"bad_change\": {\"wave1_size\": %d, \"tenants_reached_gated\": %d, \
     \"tenants_reached_naive\": %d, \"residual_violating_gated\": %d, \
     \"residual_violating_naive\": %d, \"rolled_back\": %b, \
     \"rollback_latency_s\": %.1f, \"gated_mgmt_calls\": %d, \
     \"gate_checks\": %d, \"gated_api_calls\": %d, \"naive_api_calls\": %d},\n\
    \  \"clean_change\": {\"converged\": %b, \"committed_tenants\": %d, \
     \"waves\": %d, \"expected_waves\": %d, \"rollbacks\": %d, \
     \"violations\": %d, \"retyped\": %b},\n\
    \  \"crash\": {\"tenants\": 16, \"shards\": 2, \"crash_after\": %d, \
     \"crashed_mid_rollout\": %b, \"resumed_from_wave\": %d, \"orphans\": %d, \
     \"dup_creates\": %d, \"resumed_converged\": %b, \
     \"digest_matches_uncrashed\": %b},\n\
    \  \"summary\": {\"blast_radius_contained\": %b, \"clean_converged\": %b, \
     \"crash_resume_exact\": %b}\n\
     }\n"
    quick blast.tenants blast.shards resources blast.wave1_size
    blast.reached_gated blast.reached_naive blast.residual_gated
    blast.residual_naive blast.rolled_back blast.rollback_latency
    blast.gated_mgmt_calls blast.gate_checks blast.gated_api_calls
    blast.naive_api_calls clean.converged clean.committed clean.waves
    clean.expected_waves clean.rollbacks clean.clean_violations clean.retyped
    crash.crash_after crash.crashed_mid_rollout crash.resumed_from_wave
    crash.orphans crash.dup_creates crash.resumed_converged
    crash.digest_matches_uncrashed
    (blast.reached_gated <= blast.wave1_size
    && blast.residual_gated = 0
    && blast.reached_naive = blast.tenants)
    (clean.converged && clean.committed = blast.tenants)
    (crash.orphans = 0 && crash.dup_creates = 0
   && crash.digest_matches_uncrashed);
  close_out oc

(* --- assertions ------------------------------------------------------ *)

let assert_claims (blast : blast_result) (clean : clean_result)
    (crash : crash_result) =
  if not blast.rolled_back then
    failwith "e18: gate did not roll the bad change back";
  if blast.reached_gated > blast.wave1_size then
    failwith
      (Printf.sprintf "e18: bad change reached %d tenant(s), wave 1 is %d"
         blast.reached_gated blast.wave1_size);
  if blast.residual_gated <> 0 then
    failwith
      (Printf.sprintf
         "e18: %d tenant(s) still violating after gated rollback"
         blast.residual_gated);
  if blast.reached_naive <> blast.tenants then
    failwith
      (Printf.sprintf "e18: naive baseline reached %d/%d tenant(s)"
         blast.reached_naive blast.tenants);
  if blast.residual_naive <> blast.tenants then
    failwith
      (Printf.sprintf "e18: naive baseline left %d/%d tenant(s) violating"
         blast.residual_naive blast.tenants);
  if blast.rollback_latency < 0. then
    failwith "e18: no rollback latency recorded";
  if blast.gated_mgmt_calls = 0 then
    failwith "e18: gating recorded no management calls";
  if not clean.converged then failwith "e18: clean change did not converge";
  if clean.committed <> blast.tenants then
    failwith
      (Printf.sprintf "e18: clean change committed %d/%d tenant(s)"
         clean.committed blast.tenants);
  if clean.waves <> clean.expected_waves then
    failwith
      (Printf.sprintf "e18: %d wave(s), schedule says %d" clean.waves
         clean.expected_waves);
  if clean.rollbacks <> 0 then
    failwith "e18: clean change triggered rollbacks";
  if clean.clean_violations <> 0 then
    failwith "e18: clean change left gate violations";
  if not clean.retyped then
    failwith "e18: clean change did not reach every instance";
  if not crash.crashed_mid_rollout then
    failwith
      "e18: crash landed outside the rollout window — retune crash_after";
  if crash.resumed_from_wave < 1 then
    failwith "e18: crash landed before the canary committed — retune";
  if crash.orphans <> 0 then failwith "e18: crash leg left orphans";
  if crash.dup_creates <> 0 then failwith "e18: crash leg duplicated creates";
  if not crash.resumed_converged then
    failwith "e18: resumed rollout did not converge";
  if not crash.digest_matches_uncrashed then
    failwith "e18: post-resume digest differs from uncrashed run"

(* --- driver ---------------------------------------------------------- *)

let run () =
  let quick = !Bench_util.quick in
  section
    (Printf.sprintf "E18: bulk-change waves%s"
       (if quick then " (quick)" else ""));
  let seed = 42 in
  let tenants = if quick then 16 else 64 in
  let shards = if quick then 2 else 4 in
  let blast = run_blast_leg ~tenants ~shards ~seed in
  Printf.printf
    "bad change: gated reached %d/%d tenant(s) (wave 1 = %d), naive reached \
     %d; residual violations gated=%d naive=%d; rollback latency %.1fs; \
     gating cost %d mgmt call(s) over %d gate check(s)\n"
    blast.reached_gated blast.tenants blast.wave1_size blast.reached_naive
    blast.residual_gated blast.residual_naive blast.rollback_latency
    blast.gated_mgmt_calls blast.gate_checks;
  let clean = run_clean_leg ~tenants ~shards ~seed in
  Printf.printf
    "clean change: converged=%b committed=%d/%d waves=%d (schedule %d) \
     rollbacks=%d violations=%d\n"
    clean.converged clean.committed tenants clean.waves clean.expected_waves
    clean.rollbacks clean.clean_violations;
  let crash = run_crash_leg ~seed in
  Printf.printf
    "crash leg (16 tenants, 2 shards, crash after write %d): mid_rollout=%b \
     resumed_from_wave=%d orphans=%d dup_creates=%d converged=%b \
     digest_match=%b\n"
    crash.crash_after crash.crashed_mid_rollout crash.resumed_from_wave
    crash.orphans crash.dup_creates crash.resumed_converged
    crash.digest_matches_uncrashed;
  assert_claims blast clean crash;
  write_json ~quick ~blast ~clean ~crash;
  Printf.printf "wrote %s\n" (json_file ~quick)
