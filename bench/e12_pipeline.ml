(* E12 (front-half scalability): per-stage config→plan cost at 10k.

   E11 proved the *deploy* hot path scales; this experiment does the
   same for everything that runs before it.  For `Workload.fleet`
   configs of 100 → 10k resources it times each pipeline stage
   separately — parse, eval/expand, validate (references + types +
   cloud rules), graph build + topo + levels, plan diff + execution
   graph, and apply under the heap scheduler — and checks two things:

   - correctness: topo orders, levels, execution-graph edges and plan
     action lists are byte-identical to the seed's list-scan reference
     implementations kept in-tree (`Dag.Reference`, `Plan.Reference`),
     on sizes where the O(n^2) references are still affordable;
   - complexity: at the full sweep's top size every front-half stage
     must stay within 15x its n=1k time — a reintroduced quadratic
     scan shows up as ~100x and fails the run.

   A deep `Workload.chain` graph is checked too, so the per-round
   traversal costs are exercised by depth as well as width.  Results
   land in BENCH_pipeline.json (the second perf-trajectory artifact);
   `--quick` runs a small sweep and writes BENCH_pipeline_quick.json
   so smoke runs never clobber the trajectory. *)

open Bench_util
module Hcl = Cloudless_hcl
module Addr = Hcl.Addr
module Validate = Cloudless_validate.Validate
module Diagnostic = Cloudless_validate.Diagnostic
module Dag = Cloudless_graph.Dag
module Plan = Cloudless_plan.Plan
module Executor = Cloudless_deploy.Executor

type sample = {
  n : int;
  parse_s : float;
  eval_s : float;
  validate_s : float;
  graph_s : float;
  plan_s : float;
  apply_s : float;
  refs_checked : bool;
}

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* A state that mirrors [instances] exactly, as if a previous apply
   recorded them; planning against it exercises the lookup/diff/orphan
   paths instead of the all-creates fast path. *)
let populated_state instances =
  List.fold_left
    (fun st (i : Hcl.Eval.instance) ->
      State.add st
        {
          State.addr = i.Hcl.Eval.addr;
          cloud_id = "cid-" ^ Addr.to_string i.Hcl.Eval.addr;
          rtype = i.Hcl.Eval.addr.Addr.rtype;
          region = "us-east-1";
          attrs = i.Hcl.Eval.attrs;
          deps = [];
        })
    State.empty instances

let actions_of (p : Plan.t) =
  List.map
    (fun (c : Plan.change) -> (c.Plan.addr, Plan.action_symbol c.Plan.action))
    p.Plan.changes

let run_one ~n ~check_refs =
  let src = Workload.fleet ~resources:n () in
  let env = env_for State.empty in
  let cfg, parse_s = time (fun () -> Hcl.Config.parse ~file:"e12.tf" src) in
  let expansion, eval_s = time (fun () -> Hcl.Eval.expand ~env cfg) in
  let instances = expansion.Hcl.Eval.instances in
  assert (List.length instances = n);
  let diags, validate_s =
    time (fun () ->
        Validate.check_references cfg
        @ Validate.check_types instances
        @ Validate.check_cloud_rules instances)
  in
  assert (not (List.exists Diagnostic.is_error diags));
  let (graph, topo, lvls), graph_s =
    time (fun () ->
        let g = Dag.of_instances instances in
        (g, Dag.topo_sort g, Dag.levels g))
  in
  let populated = populated_state instances in
  let (plan, noop_plan, eg), plan_s =
    time (fun () ->
        let plan = Plan.make ~state:State.empty instances in
        let eg = Plan.execution_graph plan in
        let noop_plan = Plan.make ~state:populated instances in
        (plan, noop_plan, eg))
  in
  let report, apply_s =
    time (fun () ->
        let cloud = fresh_cloud ~seed:42 () in
        Executor.apply cloud ~config:Executor.cloudless_config
          ~state:State.empty ~plan ~sched:Executor.Sched_heap ())
  in
  assert (Executor.succeeded report);
  if check_refs then begin
    (* byte-identical to the seed's list-scan algorithms *)
    assert (topo = Dag.Reference.topo_sort graph);
    assert (lvls = Dag.Reference.levels graph);
    let eg_ref = Plan.Reference.execution_graph plan in
    assert (Dag.nodes eg = Dag.nodes eg_ref);
    assert (Dag.edge_count eg = Dag.edge_count eg_ref);
    List.iter
      (fun a ->
        assert (Addr.Set.equal (Dag.deps_of eg a) (Dag.deps_of eg_ref a)))
      (Dag.nodes eg);
    assert (Dag.topo_sort eg = Dag.Reference.topo_sort eg_ref);
    assert (actions_of plan = Plan.Reference.action_symbols ~state:State.empty instances);
    assert (
      actions_of noop_plan
      = Plan.Reference.action_symbols ~state:populated instances);
    (* impact scoping via a base-granularity edit *)
    match Dag.nodes graph with
    | [] -> ()
    | first :: _ ->
        let edited = [ Addr.base first ] in
        assert (
          Addr.Set.equal
            (Plan.impact_scope ~graph ~edited)
            (Plan.Reference.impact_scope ~graph ~edited))
  end;
  {
    n;
    parse_s;
    eval_s;
    validate_s;
    graph_s;
    plan_s;
    apply_s;
    refs_checked = check_refs;
  }

(* Depth-heavy counterpart: a single n-deep chain, where the per-round
   costs of topo/levels dominate instead of the per-level width. *)
let chain_check ~n =
  let src = Workload.chain ~resources:n () in
  let instances = expand_src src in
  let g = Dag.of_instances instances in
  let (topo, lvls), t = time (fun () -> (Dag.topo_sort g, Dag.levels g)) in
  assert (List.length lvls = n);
  assert (topo = Dag.Reference.topo_sort g);
  assert (lvls = Dag.Reference.levels g);
  t

let json_file ~quick =
  if quick then "BENCH_pipeline_quick.json" else "BENCH_pipeline.json"

let json_of_sample s =
  Printf.sprintf
    "    {\"n\": %d, \"parse_s\": %.6f, \"eval_s\": %.6f, \"validate_s\": \
     %.6f, \"graph_s\": %.6f, \"plan_s\": %.6f, \"apply_s\": %.6f, \
     \"refs_checked\": %b}"
    s.n s.parse_s s.eval_s s.validate_s s.graph_s s.plan_s s.apply_s
    s.refs_checked

let write_json ~quick ~samples ~ratios ~budget ~ok =
  let oc = open_out (json_file ~quick) in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"e12_pipeline\",\n\
    \  \"engine\": \"cloudless\",\n\
    \  \"quick\": %b,\n\
    \  \"samples\": [\n\
     %s\n\
    \  ],\n\
    \  \"summary\": {%s, \"budget_x\": %.1f, \"within_budget\": %b}\n\
     }\n"
    quick
    (String.concat ",\n" (List.map json_of_sample samples))
    (String.concat ", "
       (List.map
          (fun (stage, r) -> Printf.sprintf "\"%s_ratio\": %.2f" stage r)
          ratios))
    budget ok;
  close_out oc

let run () =
  let quick = !Bench_util.quick in
  section
    (Printf.sprintf "E12: config→plan pipeline cost per stage%s"
       (if quick then " (quick)" else ""));
  let sizes = if quick then [ 100; 250 ] else [ 100; 500; 1000; 5000; 10000 ] in
  (* the list-scan references are O(n^2); cap where they stay cheap *)
  let ref_cap = if quick then 250 else 2000 in
  let widths = [ 7; 8; 8; 9; 8; 8; 8; 5 ] in
  row widths
    [ "n"; "parse"; "eval"; "validate"; "graph"; "plan"; "apply"; "refs" ];
  hline widths;
  let samples =
    List.map
      (fun n ->
        let s = run_one ~n ~check_refs:(n <= ref_cap) in
        row widths
          [
            string_of_int s.n;
            Printf.sprintf "%.3fs" s.parse_s;
            Printf.sprintf "%.3fs" s.eval_s;
            Printf.sprintf "%.3fs" s.validate_s;
            Printf.sprintf "%.3fs" s.graph_s;
            Printf.sprintf "%.3fs" s.plan_s;
            Printf.sprintf "%.3fs" s.apply_s;
            (if s.refs_checked then "yes" else "-");
          ];
        s)
      sizes
  in
  let chain_n = if quick then 300 else 2000 in
  let chain_t = chain_check ~n:chain_n in
  Printf.printf
    "\n\
    \  chain(%d): topo+levels of an n-deep graph in %.3fs, byte-identical\n\
    \  to the reference traversals.\n"
    chain_n chain_t;
  (* complexity gate: top size vs n=1k (n=100 in quick mode).  Tiny
     denominators are clamped so timer jitter on sub-ms stages cannot
     fake a blowup — a real quadratic is ~100x, far above any clamp. *)
  let base_n = if quick then 100 else 1000 in
  let top_n = List.fold_left max 0 sizes in
  let base = List.find (fun s -> s.n = base_n) samples in
  let top = List.find (fun s -> s.n = top_n) samples in
  let dmin = 0.0005 in
  let ratios =
    [
      ("eval", top.eval_s /. Float.max base.eval_s dmin);
      ("validate", top.validate_s /. Float.max base.validate_s dmin);
      ("graph", top.graph_s /. Float.max base.graph_s dmin);
      ("plan", top.plan_s /. Float.max base.plan_s dmin);
    ]
  in
  let budget = 15.0 in
  let ok = quick || List.for_all (fun (_, r) -> r <= budget) ratios in
  Printf.printf
    "  stage cost ratios n=%d vs n=%d (budget %.0fx): %s -> %s\n\
    \  wrote %s\n"
    top_n base_n budget
    (String.concat ", "
       (List.map (fun (st, r) -> Printf.sprintf "%s %.1fx" st r) ratios))
    (if ok then "within budget" else "BUDGET EXCEEDED")
    (json_file ~quick);
  write_json ~quick ~samples ~ratios ~budget ~ok;
  if not ok then failwith "E12: front-half stage exceeded its scaling budget"
