(* E14 (service load): the multi-tenant control plane vs a
   Terraform-style baseline operationated as a service.

   N tenants each own an 8-resource fleet.  All tenants submit their
   apply request at t=0, out-of-band drift is injected while the
   service runs, and a policy controller ticks throughout.  The same
   scenario drives two service configurations:

   - cloudless: per-deployment lock admission (disjoint tenants run
     concurrently), log-tailer drift detection (zero management reads),
     reconciles scoped to the impact subgraph;
   - baseline: one global lock (all work serializes in FIFO order),
     a full state refresh before every apply, and periodic scan sweeps
     that Read every tracked resource.

   Both clouds get effectively unlimited API token budgets so the
   numbers isolate admission/scheduling from provider throttling
   (E1/E10 own the rate-limit interplay).

   Measured per tenant count (4 -> 64): tenant-request p50/p99 latency
   and makespan, drift-detection latency (injection joined with the
   service's detection log), and management-plane reads.  The bench
   asserts the paper's claims on its own output:

   - per-deployment admission beats the global lock on p99 with the
     gap growing roughly k-fold in the tenant count (per E3);
   - log-tailer drift latency stays flat (~one poll period) while the
     baseline's sweep-based detection degrades with fleet size as
     sweeps queue behind the global lock, and its read bill grows
     without bound (per E5);
   - a crash mid-service resumes to exactly the expected fleets with
     zero orphans and zero duplicate creates (per E13);
   - two identical runs export byte-identical metrics snapshots.

   Results land in BENCH_service.json (BENCH_service_quick.json with
   --quick, which also shrinks the tenant sweep). *)

open Bench_util
module Activity_log = Cloudless_sim.Activity_log
module Rate_limiter = Cloudless_sim.Rate_limiter
module Failure = Cloudless_sim.Failure
module Cloud_rules = Cloudless_schema.Cloud_rules
module Control_plane = Cloudless_controlplane.Control_plane
module Scenario = Cloudless_controlplane.Scenario
module Metrics = Cloudless_obs.Metrics

let resources = 8
let drift_period = 60.

let service_cloud ~seed =
  Cloud.create
    ~config:(Cloud_rules.config_with_checks ())
    ~write_limiter:(Rate_limiter.create ~capacity:1e6 ~refill_rate:1e5)
    ~read_limiter:(Rate_limiter.create ~capacity:1e6 ~refill_rate:1e5)
    ~seed ()

let scenario tenants =
  {
    Scenario.default with
    Scenario.tenants;
    deployments_per_tenant = 1;
    resources;
    requests_per_tenant = 1;
    request_interval = 600.;
    drift_events = 8;
    drift_period;
    policy_period = 300.;
    duration = 1800.;
  }

let run_service ?crash ~preset ~scn ~seed () =
  let cloud = service_cloud ~seed in
  let config = Scenario.service_config scn preset in
  let cp = ref (Control_plane.create ~cloud config) in
  let injections = Scenario.install scn cp in
  (match crash with
  | Some k -> Control_plane.set_crash !cp (Failure.Crash_after k)
  | None -> ());
  let crashed =
    match Control_plane.run !cp ~until:scn.Scenario.duration with
    | () -> false
    | exception Failure.Engine_crashed _ -> true
  in
  (cp, !injections, crashed)

(* Join the scenario's injection log with the service's detection log:
   latency of the first detection at or after each injection. *)
let drift_latencies cp injections =
  let detections = Control_plane.drift_detections cp in
  List.map
    (fun (inj : Scenario.injection) ->
      match
        List.find_opt
          (fun (cid, at) ->
            cid = inj.Scenario.icloud_id
            && at >= inj.Scenario.injected_at -. 1e-9)
          detections
      with
      | Some (_, at) -> at -. inj.Scenario.injected_at
      | None ->
          failwith
            (Printf.sprintf "e14: injection at t=%.0f never detected"
               inj.Scenario.injected_at))
    injections

let nearest_rank p xs =
  match List.sort compare xs with
  | [] -> 0.
  | sorted ->
      let n = List.length sorted in
      let i =
        min (n - 1)
          (max 0 (int_of_float (ceil (p /. 100. *. float_of_int n)) - 1))
      in
      List.nth sorted i

type leg = {
  p50 : float;
  p99 : float;
  makespan : float;
  drift_p50 : float;
  drift_max : float;
  mgmt_reads : int;
  api_calls : int;
  lock_waits : int;
}

let measure_leg ~preset ~scn ~seed =
  let cp, injections, crashed = run_service ~preset ~scn ~seed () in
  if crashed then failwith "e14: unexpected crash in measurement leg";
  let cp = !cp in
  let m = Control_plane.metrics cp in
  let expected = scn.Scenario.tenants * scn.Scenario.requests_per_tenant in
  if Metrics.counter m "requests_done" <> expected then
    failwith
      (Printf.sprintf "e14: %d/%d requests completed"
         (Metrics.counter m "requests_done")
         expected);
  if Control_plane.orphans cp <> [] then failwith "e14: orphaned resources";
  if List.length injections <> scn.Scenario.drift_events then
    failwith "e14: not all drift injections fired";
  if Metrics.counter m "policy_ticks" = 0 then failwith "e14: policy never ticked";
  let lat = drift_latencies cp injections in
  let pctl name p =
    match Metrics.percentile m name p with
    | Some v -> v
    | None -> failwith ("e14: no samples for " ^ name)
  in
  let makespan =
    List.fold_left
      (fun acc (_, at) -> Float.max acc at)
      0.
      (Control_plane.completed_requests cp)
  in
  let _, lock_waits =
    Cloudless_lock.Lock_manager.stats (Control_plane.lock cp)
  in
  {
    p50 = pctl "request_latency" 50.;
    p99 = pctl "request_latency" 99.;
    makespan;
    drift_p50 = nearest_rank 50. lat;
    drift_max = List.fold_left Float.max 0. lat;
    mgmt_reads = Metrics.counter m "api_reads";
    api_calls = Metrics.counter m "api_calls";
    lock_waits;
  }

type sample = { tenants : int; cp : leg; base : leg }

(* --- crash leg: kill the service mid-wave, resume, audit ----------- *)

type crash_result = {
  crash_after : int;
  orphans : int;
  dup_creates : int;
  managed : int;
  expected_managed : int;
  replans_empty : bool;
}

let engine_creates cloud =
  List.length
    (List.filter
       (fun (e : Activity_log.entry) ->
         match (e.Activity_log.op, e.Activity_log.actor) with
         | Activity_log.Log_create, Activity_log.Iac_engine _ -> true
         | _ -> false)
       (Activity_log.all (Cloud.log cloud)))

let run_crash_leg ~seed =
  let tenants = 8 in
  let scn =
    {
      (scenario tenants) with
      Scenario.requests_per_tenant = 2;
      request_interval = 400.;
      drift_events = 0;
      policy_period = 0.;
      duration = 1200.;
    }
  in
  let crash_after = 30 in
  let cp_ref, _, crashed =
    run_service ~crash:crash_after ~preset:Control_plane.cloudless_service
      ~scn ~seed ()
  in
  if not crashed then failwith "e14: crash leg did not crash";
  let fresh, _reports = Control_plane.resume !cp_ref in
  cp_ref := fresh;
  Control_plane.run fresh ~until:scn.Scenario.duration;
  let expected_managed = tenants * resources in
  let managed = Control_plane.managed_resource_count fresh in
  let dup_creates = engine_creates (Control_plane.cloud fresh) - managed in
  let replans_empty =
    List.for_all
      (fun (d : Control_plane.deployment) ->
        let instances =
          Control_plane.expand ~state:d.Control_plane.state
            d.Control_plane.config_src
        in
        Plan.is_empty
          (Plan.make ~state:d.Control_plane.state instances))
      (Control_plane.deployments fresh)
  in
  {
    crash_after;
    orphans = List.length (Control_plane.orphans fresh);
    dup_creates;
    managed;
    expected_managed;
    replans_empty;
  }

(* --- determinism leg ----------------------------------------------- *)

let snapshot_of_run ~seed =
  let cp_ref, _, _ =
    run_service ~preset:Control_plane.cloudless_service ~scn:(scenario 4)
      ~seed ()
  in
  Metrics.to_json (Control_plane.metrics !cp_ref)

(* --- JSON ---------------------------------------------------------- *)

let json_file ~quick =
  if quick then "BENCH_service_quick.json" else "BENCH_service.json"

let json_of_leg l =
  Printf.sprintf
    "{\"p50\": %.2f, \"p99\": %.2f, \"makespan\": %.2f, \"drift_p50\": %.2f, \
     \"drift_max\": %.2f, \"mgmt_reads\": %d, \"api_calls\": %d, \
     \"lock_waits\": %d}"
    l.p50 l.p99 l.makespan l.drift_p50 l.drift_max l.mgmt_reads l.api_calls
    l.lock_waits

let json_of_sample s =
  Printf.sprintf
    "    {\"tenants\": %d,\n     \"cloudless\": %s,\n     \"baseline\": %s,\n\
    \     \"p99_ratio\": %.2f, \"reads_ratio\": %.1f}"
    s.tenants (json_of_leg s.cp) (json_of_leg s.base) (s.base.p99 /. s.cp.p99)
    (float_of_int s.base.mgmt_reads /. float_of_int (max 1 s.cp.mgmt_reads))

let write_json ~quick ~samples ~(crash : crash_result) ~determinism_ok =
  let oc = open_out (json_file ~quick) in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"e14_service\",\n\
    \  \"quick\": %b,\n\
    \  \"resources_per_tenant\": %d,\n\
    \  \"drift_period\": %.0f,\n\
    \  \"samples\": [\n\
     %s\n\
    \  ],\n\
    \  \"crash\": {\"tenants\": 8, \"crash_after\": %d, \"orphans\": %d, \
     \"dup_creates\": %d, \"managed\": %d, \"expected_managed\": %d, \
     \"replans_empty\": %b},\n\
    \  \"summary\": {\"cp_wins_p99_everywhere\": true, \
     \"p99_gap_grows\": true, \"tailer_latency_flat\": true, \
     \"determinism_ok\": %b}\n\
     }\n"
    quick resources drift_period
    (String.concat ",\n" (List.map json_of_sample samples))
    crash.crash_after crash.orphans crash.dup_creates crash.managed
    crash.expected_managed crash.replans_empty determinism_ok;
  close_out oc

(* --- assertions ---------------------------------------------------- *)

let assert_claims samples crash determinism_ok =
  List.iter
    (fun s ->
      if s.cp.p99 >= s.base.p99 then
        failwith
          (Printf.sprintf "e14: control plane lost on p99 at %d tenants"
             s.tenants);
      (* lock admission: disjoint tenants never wait under per-resource
         granularity, always wait under the global lock *)
      if s.cp.lock_waits <> 0 then
        failwith "e14: per-resource admission produced lock waits";
      if s.base.lock_waits < s.tenants - 1 then
        failwith "e14: global lock produced no serialization";
      (* tailer detection within ~one poll period; scan-based detection
         pays at least as much *)
      if s.cp.drift_max > 1.5 *. drift_period then
        failwith "e14: tailer drift latency exceeded 1.5 poll periods";
      if s.base.drift_p50 < s.cp.drift_p50 then
        failwith "e14: scan-based detection beat the log tailer";
      (* management reads: the tailer reads nothing to detect; scoped
         reconciles read a few rows; sweeps read the world *)
      if s.base.mgmt_reads < 10 * max 1 s.cp.mgmt_reads then
        failwith "e14: baseline read amplification below 10x")
    samples;
  (match (samples, List.rev samples) with
  | first :: _, last :: _ when first.tenants < last.tenants ->
      if
        last.base.p99 /. last.cp.p99 <= first.base.p99 /. first.cp.p99
      then failwith "e14: p99 gap did not grow with tenant count";
      (* k-fold: the serialized backlog scales with the tenant count *)
      if last.base.p99 /. last.cp.p99 < float_of_int last.tenants /. 3. then
        failwith "e14: p99 gap not in the k-fold regime";
      if last.cp.drift_p50 > 2. *. Float.max 1. first.cp.drift_p50 then
        failwith "e14: tailer latency not flat across tenant counts";
      if last.base.drift_max <= first.base.drift_max then
        failwith "e14: scan detection latency did not degrade with scale"
  | _ -> ());
  if crash.orphans <> 0 then failwith "e14: crash leg left orphans";
  if crash.dup_creates <> 0 then failwith "e14: crash leg duplicated creates";
  if crash.managed <> crash.expected_managed then
    failwith "e14: crash leg lost resources";
  if not crash.replans_empty then
    failwith "e14: post-resume plans not empty";
  if not determinism_ok then
    failwith "e14: metrics snapshots not byte-identical"

(* --- driver -------------------------------------------------------- *)

let run () =
  let quick = !Bench_util.quick in
  section
    (Printf.sprintf "E14: multi-tenant service load%s"
       (if quick then " (quick)" else ""));
  let seed = 42 in
  let tenant_counts = if quick then [ 4; 8 ] else [ 4; 8; 16; 32; 64 ] in
  let widths = [ 8; 9; 9; 10; 10; 11; 11; 9; 9 ] in
  row widths
    [
      "tenants"; "cp_p99"; "base_p99"; "p99_ratio"; "cp_drift"; "base_drift";
      "cp_reads"; "base_rd"; "waits";
    ];
  hline widths;
  let samples =
    List.map
      (fun tenants ->
        let scn = scenario tenants in
        let cp =
          measure_leg ~preset:Control_plane.cloudless_service ~scn ~seed
        in
        let base =
          measure_leg ~preset:Control_plane.baseline_service ~scn ~seed
        in
        row widths
          [
            string_of_int tenants;
            fmt_s cp.p99;
            fmt_s base.p99;
            fmt_x (base.p99 /. cp.p99);
            fmt_s cp.drift_p50;
            fmt_s base.drift_p50;
            string_of_int cp.mgmt_reads;
            string_of_int base.mgmt_reads;
            string_of_int base.lock_waits;
          ];
        { tenants; cp; base })
      tenant_counts
  in
  let crash = run_crash_leg ~seed in
  Printf.printf
    "crash leg (8 tenants, crash after write %d): orphans=%d dup_creates=%d \
     managed=%d/%d replans_empty=%b\n"
    crash.crash_after crash.orphans crash.dup_creates crash.managed
    crash.expected_managed crash.replans_empty;
  let determinism_ok = String.equal (snapshot_of_run ~seed) (snapshot_of_run ~seed) in
  Printf.printf "metrics determinism: %s\n" (if determinism_ok then "ok" else "FAILED");
  assert_claims samples crash determinism_ok;
  write_json ~quick ~samples ~crash ~determinism_ok;
  Printf.printf "wrote %s\n" (json_file ~quick)
