(* E13 (crash-anywhere chaos sweep): resumable applies vs end-only
   persistence.

   For a ~60-resource `Workload.fleet` the crash point k is swept
   across every write-operation index: the engine process dies at the
   (k+1)-th cloud write (`Failure.Crash_after k`), in-flight calls
   settle on the cloud with nobody listening, and a fresh engine
   incarnation takes over.  Two recovery disciplines compete:

   - baseline (Terraform-style end-only persistence): the state file
     is only written after a whole apply, so the crashed run recorded
     *nothing* — the restart re-applies the full plan from empty
     state.  Every resource the dead run created is now an untracked
     orphan, and every one of them is re-created: orphans and
     duplicate creates grow with k.

   - journaled (this PR): the write-ahead journal knows every op's
     intent and most outcomes; `Lifecycle.resume` replays it, adopts
     in-flight creates from the cloud's activity log, and re-applies
     only the remainder.  Required shape at every k: 0 orphans, 0
     duplicate creates, residual divergence 0 (the post-resume plan is
     empty), bounded re-work.

   Determinism is asserted at a mid-sweep k: two runs with the same
   seed and crash point must produce byte-identical journals and final
   states.  Results land in BENCH_crash.json; `--quick` samples a few
   crash points of a smaller fleet (≤5s) into BENCH_crash_quick.json. *)

open Bench_util
module Addr = Cloudless_hcl.Addr
module Activity_log = Cloudless_sim.Activity_log
module Failure = Cloudless_sim.Failure
module Journal = Cloudless_state.Journal
module Recovery = Cloudless_deploy.Recovery
module Lifecycle = Cloudless.Lifecycle

type sample = {
  k : int;
  base_orphans : int;
  base_dup_creates : int;
  j_orphans : int;
  j_dup_creates : int;
  j_adopted : int;
  j_replanned : int;
  j_rework : int;  (** changes the resumed engine re-applied *)
  divergence : int;  (** journaled engine: non-noop changes post-resume *)
}

let engine_creates cloud =
  List.length
    (List.filter
       (fun (e : Activity_log.entry) ->
         match (e.Activity_log.op, e.Activity_log.actor) with
         | Activity_log.Log_create, Activity_log.Iac_engine _ -> true
         | _ -> false)
       (Activity_log.all (Cloud.log cloud)))

(* Baseline: crash the apply, then model a Terraform-style restart —
   the dead run persisted nothing, so the restart plans the full
   config against an EMPTY recorded state on the same (settled)
   cloud. *)
let run_baseline ~src ~seed ~k =
  let cloud = fresh_cloud ~seed () in
  let instances = expand_src src in
  let plan = Plan.make ~state:State.empty instances in
  let final_state =
    match
      Executor.apply cloud ~config:Executor.baseline_config ~state:State.empty
        ~plan ~crash:(Failure.Crash_after k) ()
    with
    | report -> report.Executor.state (* k past the last op: completed *)
    | exception Failure.Engine_crashed _ ->
        (* the run's state record died with the process; the restart
           plans against an empty state on the settled cloud *)
        Cloud.run_until_idle cloud;
        let plan2 = Plan.make ~state:State.empty (expand_src src) in
        (Executor.apply cloud ~config:Executor.baseline_config
           ~state:State.empty ~plan:plan2 ())
          .Executor.state
  in
  let n = List.length instances in
  let orphans = List.length (Recovery.orphans cloud ~state:final_state) in
  let dups = engine_creates cloud - n in
  (orphans, dups)

(* Journaled: crash the apply, resume, and demand convergence. *)
let run_journaled ~src ~seed ~k =
  let t = Lifecycle.create ~seed ~engine:Executor.cloudless_config () in
  Lifecycle.enable_journal t;
  Lifecycle.set_crash t (Failure.Crash_after k);
  let crashed, final_report, rr =
    match Lifecycle.deploy t src with
    | Ok report -> (false, report, None)
    | Error (Lifecycle.Crashed _) -> (
        match Lifecycle.resume t with
        | Ok (report, rr) -> (true, report, Some rr)
        | Error e ->
            failwith
              (Printf.sprintf "e13: resume failed at k=%d: %s" k
                 (Lifecycle.error_to_string e)))
    | Error e ->
        failwith
          (Printf.sprintf "e13: deploy failed at k=%d: %s" k
             (Lifecycle.error_to_string e))
  in
  let cloud = Lifecycle.cloud t in
  let state = Lifecycle.state t in
  let n =
    match Lifecycle.plan t with
    | Ok (p, _expansion) -> List.length (Plan.actionable p)
    | Error e ->
        failwith
          (Printf.sprintf "e13: post-resume plan failed: %s"
             (Lifecycle.error_to_string e))
  in
  let total = State.size state in
  let orphans = List.length (Recovery.orphans cloud ~state) in
  let dups = engine_creates cloud - total in
  let entries =
    match Lifecycle.journal t with
    | Some j -> Journal.entries j
    | None -> []
  in
  ( orphans,
    dups,
    n (* residual divergence: non-noop changes left after resume *),
    rr,
    (if crashed then List.length final_report.Executor.applied else 0),
    entries,
    state )

let json_file ~quick = if quick then "BENCH_crash_quick.json" else "BENCH_crash.json"

let json_of_sample s =
  Printf.sprintf
    "    {\"k\": %d, \"base_orphans\": %d, \"base_dup_creates\": %d, \
     \"j_orphans\": %d, \"j_dup_creates\": %d, \"j_adopted\": %d, \
     \"j_replanned\": %d, \"j_rework\": %d, \"divergence\": %d}"
    s.k s.base_orphans s.base_dup_creates s.j_orphans s.j_dup_creates
    s.j_adopted s.j_replanned s.j_rework s.divergence

let write_json ~quick ~n ~samples ~determinism_ok ~ok =
  let oc = open_out (json_file ~quick) in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"e13_crash\",\n\
    \  \"fleet_resources\": %d,\n\
    \  \"quick\": %b,\n\
    \  \"samples\": [\n\
     %s\n\
    \  ],\n\
    \  \"summary\": {\"max_base_orphans\": %d, \"max_base_dup_creates\": %d, \
     \"journaled_all_clean\": %b, \"determinism_ok\": %b}\n\
     }\n"
    n quick
    (String.concat ",\n" (List.map json_of_sample samples))
    (List.fold_left (fun a s -> max a s.base_orphans) 0 samples)
    (List.fold_left (fun a s -> max a s.base_dup_creates) 0 samples)
    ok determinism_ok;
  close_out oc

let run () =
  let quick = !Bench_util.quick in
  section
    (Printf.sprintf "E13: kill-anywhere crash sweep%s"
       (if quick then " (quick)" else ""));
  let n = if quick then 24 else 60 in
  let src = Workload.fleet ~resources:n () in
  let seed = 42 in
  let ks =
    if quick then [ 0; 3; 11; n ]
    else List.init (n + 1) (fun k -> k) (* every op index + no-crash control *)
  in
  let widths = [ 5; 13; 10; 10; 9; 9; 11; 10 ] in
  row widths
    [
      "k"; "base_orphans"; "base_dup"; "j_orphans"; "j_dup"; "adopted";
      "replanned"; "diverge";
    ];
  hline widths;
  let samples =
    List.map
      (fun k ->
        let base_orphans, base_dup_creates = run_baseline ~src ~seed ~k in
        let j_orphans, j_dup_creates, divergence, rr, rework, _, _ =
          run_journaled ~src ~seed ~k
        in
        let j_adopted, j_replanned =
          match rr with
          | Some r ->
              ( List.length r.Recovery.adopted,
                List.length r.Recovery.replanned )
          | None -> (0, 0)
        in
        let s =
          {
            k;
            base_orphans;
            base_dup_creates;
            j_orphans;
            j_dup_creates;
            j_adopted;
            j_replanned;
            j_rework = rework;
            divergence;
          }
        in
        if quick || k mod 10 = 0 || k = n then
          row widths
            [
              string_of_int k;
              string_of_int base_orphans;
              string_of_int base_dup_creates;
              string_of_int j_orphans;
              string_of_int j_dup_creates;
              string_of_int j_adopted;
              string_of_int j_replanned;
              string_of_int divergence;
            ];
        s)
      ks
  in
  (* determinism: same seed + same crash point => byte-identical
     journal and final state *)
  let det_k = if quick then 3 else n / 2 in
  let _, _, _, _, _, entries1, state1 = run_journaled ~src ~seed ~k:det_k in
  let _, _, _, _, _, entries2, state2 = run_journaled ~src ~seed ~k:det_k in
  let determinism_ok =
    Journal.to_string entries1 = Journal.to_string entries2
    && State.to_string state1 = State.to_string state2
  in
  let ok =
    List.for_all
      (fun s -> s.j_orphans = 0 && s.j_dup_creates = 0 && s.divergence = 0)
      samples
  in
  let monotone =
    (* the baseline's orphan count must grow with the crash point
       (the k=n sample is the no-crash control — excluded) *)
    let orphans =
      List.filter_map
        (fun s -> if s.k < n then Some s.base_orphans else None)
        samples
    in
    match orphans with
    | [] | [ _ ] -> true
    | _ :: tail ->
        List.exists (fun o -> o > 0) orphans
        && List.for_all2
             (fun a b -> a <= b + 3 (* in-flight window slack *))
             (List.filteri (fun i _ -> i < List.length orphans - 1) orphans)
             tail
  in
  Printf.printf
    "\n\
    \  journaled engine: %s at every crash point (orphans=0, dup creates=0,\n\
    \  residual divergence=0); baseline orphans grow with k (max %d).\n\
    \  determinism (k=%d twice): %s.  wrote %s\n"
    (if ok then "converged clean" else "FAILED TO CONVERGE")
    (List.fold_left (fun a s -> max a s.base_orphans) 0 samples)
    det_k
    (if determinism_ok then "byte-identical journal+state" else "DIVERGED")
    (json_file ~quick);
  write_json ~quick ~n ~samples ~determinism_ok ~ok;
  if not ok then failwith "E13: journaled engine failed to converge clean";
  if not determinism_ok then failwith "E13: crash/resume is not deterministic";
  if not monotone then failwith "E13: baseline orphan count did not grow"
