(* Shared experiment harness utilities: table rendering, standard
   cloud/engine setup, common workload deployment. *)

module Hcl = Cloudless_hcl
module Value = Hcl.Value
module Smap = Value.Smap
module Cloud = Cloudless_sim.Cloud
module State = Cloudless_state.State
module Plan = Cloudless_plan.Plan
module Executor = Cloudless_deploy.Executor
module Workload = Cloudless_workload.Workload

(* Set by [main.ml] when "--quick" is passed: experiments that sweep
   large inputs (E11) shrink to a ≤5s smoke run for tier-1 CI. *)
let quick = ref false

(* Set by [main.ml] when "--resources N" is passed: experiments whose
   sweeps are parameterized by fleet size (E2, E11, E16) run that one
   size instead of their built-in list, so a one-off measurement never
   needs a code edit. *)
let resources : int option ref = ref None

let section title =
  Printf.printf "\n==============================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==============================================================\n"

let subsection title = Printf.printf "\n--- %s ---\n" title

(* simple fixed-width table *)
let row widths cells =
  let cells =
    List.map2
      (fun w c -> if String.length c >= w then c else c ^ String.make (w - String.length c) ' ')
      widths cells
  in
  print_endline ("  " ^ String.concat "  " cells)

let hline widths =
  print_endline
    ("  " ^ String.concat "  " (List.map (fun w -> String.make w '-') widths))

let fresh_cloud ?(seed = 42) ?quotas ?failure ?(write_rate = None) () =
  let base = Cloud.default_config in
  let base =
    match quotas with Some q -> { base with Cloud.quotas = q } | None -> base
  in
  let base =
    match failure with Some f -> { base with Cloud.failure = f } | None -> base
  in
  let config = Cloudless_schema.Cloud_rules.config_with_checks ~base () in
  let cloud = Cloud.create ~config ~seed () in
  ignore write_rate;
  cloud

let data_resolver ~rtype ~name:_ ~args:_ =
  match rtype with
  | "aws_region" -> Some (Smap.singleton "name" (Value.Vstring "us-east-1"))
  | _ -> None

let env_for state =
  {
    Hcl.Eval.default_env with
    Hcl.Eval.data_resolver;
    state_lookup = (fun addr -> State.lookup state addr);
  }

let expand_src ?(state = State.empty) src =
  let cfg = Hcl.Config.parse ~file:"bench.tf" src in
  (Hcl.Eval.expand ~env:(env_for state) cfg).Hcl.Eval.instances

(* Deploy [src] from empty state on a fresh cloud; returns (cloud,
   report). *)
let deploy ?(seed = 42) ?(engine = Executor.cloudless_config) src =
  let cloud = fresh_cloud ~seed () in
  let instances = expand_src src in
  let plan = Plan.make ~state:State.empty instances in
  let report =
    Executor.apply cloud ~config:engine ~state:State.empty ~plan ()
  in
  (cloud, report)

(* Replace every occurrence of [sub] in [s] — workload-editing helper
   shared by the incremental-update experiments (the examples' copy
   lives in [Ex_common]). *)
let replace s ~sub ~by =
  let slen = String.length sub in
  if slen = 0 then s
  else begin
    let buf = Buffer.create (String.length s) in
    let rec go i =
      if i > String.length s - slen then
        Buffer.add_string buf (String.sub s i (String.length s - i))
      else if String.sub s i slen = sub then begin
        Buffer.add_string buf by;
        go (i + slen)
      end
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
    in
    go 0;
    Buffer.contents buf
  end

let pct a b = if b = 0. then 0. else 100. *. (1. -. (a /. b))

let fmt_s v = Printf.sprintf "%.0fs" v
let fmt_x v = Printf.sprintf "%.1fx" v
