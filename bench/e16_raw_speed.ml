(* E16 (raw-speed core): per-stage engine cost from 10k to 1M resources.

   E11 established that scheduler bookkeeping stays negligible at 10k
   resources; this experiment extends the question to the whole
   pipeline and two orders of magnitude further.  For each fleet size
   it times every stage in isolation on the interned-id hot path —

     eval      Workload.fleet_instances (the pre-sized fast path)
     intern    address -> dense id table build
     plan      state diff + change list (Plan.make on empty state)
     dag       flat execution graph + Kahn rounds
     execute   full Executor.apply on a fresh simulated cloud
     journal   the same apply with a write-ahead journal attached

   — recording wall seconds and Gc.minor_words allocation deltas per
   stage, plus the journal's overhead over the bare apply.  Two
   readings of that overhead are reported: relative to the pure-engine
   apply wall (honest but harsh — the fused direct-to-buffer encoder
   plus [~retain:false] cut it from ~160% to ~50-60%, and the WAL
   contract floors it there: one flush syscall per intent is already
   ~4-5% of a 15 us/change apply, encoding the rest), and as absolute
   microseconds per change — the number that matters against a real
   cloud, where a single API round-trip (0.15 simulated seconds here,
   ~100 ms in life) dwarfs the ~10 us the journal adds per change by
   four orders of magnitude.

   A second leg shards a multi-fleet plan by weakly-connected
   component ({!Cloudless_deploy.Shard}) and applies it at --domains
   {1, 2, 4}.  The merged report must be byte-identical at every
   domain count — asserted here via digests over the applied order,
   makespan, counters, and the rendered state — and the leg records
   wall times and speedups (meaningful only when the host actually has
   cores; the JSON carries [cores] so readers can tell).

   Results land in BENCH_raw.json; `--quick` runs a small sweep into
   BENCH_raw_quick.json (gitignored).  `--resources N` overrides the
   sweep with a single size. *)

open Bench_util
module Executor = Cloudless_deploy.Executor
module Shard = Cloudless_deploy.Shard
module Plan = Cloudless_plan.Plan
module Intern = Cloudless_graph.Intern
module Journal = Cloudless_state.Journal
module Eval = Cloudless_hcl.Eval
module Addr = Cloudless_hcl.Addr

(* Per-run scratch journal; lives inside the repo tree (gitignored)
   because the harness must not write outside it. *)
let journal_scratch = "BENCH_journal_scratch.jsonl"

type stage = { name : string; wall_s : float; minor_mwords : float }

let timed name f =
  let mw0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let wall_s = Unix.gettimeofday () -. t0 in
  let minor_mwords = (Gc.minor_words () -. mw0) /. 1e6 in
  (r, { name; wall_s; minor_mwords })

type sample = {
  n : int;
  stages : stage list;
  journal_overhead_pct : float;  (** vs the pure-engine apply wall *)
  journal_us_per_change : float;  (** absolute added cost per change *)
  group_us_per_change : float;
      (** same, for group commit (K=64): one flush barrier per batch
          instead of one per intent *)
  exec_words_per_change : float;  (** minor words the bare apply costs *)
  ok : bool;
}

(* One full pipeline pass at fleet size [n], each stage timed alone. *)
let run_size n =
  let instances, s_eval =
    timed "eval" (fun () -> Workload.fleet_instances ~resources:n ())
  in
  assert (List.length instances = n);
  let _it, s_intern =
    timed "intern" (fun () ->
        let it = Intern.create ~capacity:(2 * n) () in
        List.iter
          (fun (i : Eval.instance) -> ignore (Intern.intern it i.Eval.addr))
          instances;
        it)
  in
  let plan, s_plan =
    timed "plan" (fun () -> Plan.make ~state:State.empty instances)
  in
  let _rounds, s_dag =
    timed "dag" (fun () -> Plan.exec_rounds (Plan.exec_graph plan))
  in
  (* Both apply legs keep only scalars from their reports (the cloud
     and the 50k-row result state must not stay live and tax the other
     leg's GC), and each starts from a compacted heap so leg order
     cannot bias the comparison. *)
  let apply_leg ~journal () =
    let cloud = fresh_cloud ~seed:42 () in
    let r =
      Executor.apply cloud ~config:Executor.cloudless_config
        ~state:State.empty ~plan ?journal ~sched:Executor.Sched_heap ()
    in
    (* the applied list's spine is tiny and its addrs are shared with
       the live plan — keeping it costs nothing, unlike the state *)
    (r.Executor.makespan, r.Executor.applied, Executor.succeeded r)
  in
  Gc.compact ();
  let bare, s_execute = timed "execute" (apply_leg ~journal:None) in
  let journal_leg name mode =
    Gc.compact ();
    let r, st =
      timed name (fun () ->
          let journal =
            Journal.create ~path:journal_scratch ~retain:false ~mode ()
          in
          let r = apply_leg ~journal:(Some journal) () in
          Journal.close journal;
          r)
    in
    if Sys.file_exists journal_scratch then Sys.remove journal_scratch;
    (* journaling must not change the deployment, only its wall cost *)
    let bare_makespan, bare_applied, bare_ok = bare in
    let j_makespan, j_applied, j_ok = r in
    assert (bare_makespan = j_makespan);
    assert (bare_applied = j_applied);
    (* the fleet workload is valid at every size here; a failed apply
       is an engine regression, not a measurement *)
    assert (bare_ok && j_ok);
    st
  in
  let s_journal = journal_leg "journal" Journal.Wal in
  let s_group = journal_leg "group" (Journal.Group 64) in
  let _, _, bare_ok = bare in
  let overhead =
    if s_execute.wall_s > 0. then
      100. *. ((s_journal.wall_s /. s_execute.wall_s) -. 1.)
    else 0.
  in
  let us_per_change st =
    (st.wall_s -. s_execute.wall_s) /. float_of_int n *. 1e6
  in
  {
    n;
    stages = [ s_eval; s_intern; s_plan; s_dag; s_execute; s_journal; s_group ];
    journal_overhead_pct = overhead;
    journal_us_per_change = us_per_change s_journal;
    group_us_per_change = us_per_change s_group;
    exec_words_per_change = s_execute.minor_mwords *. 1e6 /. float_of_int n;
    ok = bare_ok;
  }

(* ------------------------------------------------------------------ *)
(* Domain-parallel leg                                                 *)
(* ------------------------------------------------------------------ *)

type domain_sample = {
  domains : int;  (** requested width (0 = size to the machine) *)
  effective : int;  (** what the pool actually ran: capped at
                        [min components cores] (see {!Shard.report}) *)
  dwall_s : float;
  speedup : float;  (** vs the domains=1 run of the same plan *)
  digest : string;
}

(* Everything observable about a sharded apply, digested; any
   domain-count dependence whatsoever changes the hex. *)
let report_digest (r : Shard.report) =
  let buf = Buffer.create 4096 in
  let addrs l = List.iter (fun a -> Buffer.add_string buf (Addr.to_string a); Buffer.add_char buf '\n') l in
  addrs r.Shard.applied;
  addrs r.Shard.skipped;
  List.iter
    (fun (f : Executor.failure) ->
      Buffer.add_string buf (Addr.to_string f.Executor.faddr);
      Buffer.add_string buf f.Executor.reason;
      Buffer.add_char buf '\n')
    r.Shard.failed;
  Buffer.add_string buf (Printf.sprintf "%.17g\n" r.Shard.makespan);
  Buffer.add_string buf
    (Printf.sprintf "%d %d %d %d %d\n" r.Shard.api_calls r.Shard.retries
       r.Shard.throttled r.Shard.sched_picks r.Shard.peak_ready);
  Buffer.add_string buf (State.to_string r.Shard.state);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let run_domains ~n ~fleets =
  let instances = Workload.fleet_instances ~fleets ~resources:n () in
  let plan = Plan.make ~state:State.empty instances in
  let run domains =
    let r =
      Shard.apply
        ~make_cloud:(fun _ -> fresh_cloud ~seed:42 ())
        ~domains ~config:Executor.cloudless_config ~state:State.empty ~plan ()
    in
    assert (Shard.succeeded r);
    (r, report_digest r)
  in
  let base, base_digest = run 1 in
  let samples =
    List.map
      (fun d ->
        let r, digest = run d in
        (* the tentpole's hard invariant: output is byte-identical at
           any domain count — including 0, the auto-detected width *)
        assert (digest = base_digest);
        {
          domains = d;
          effective = r.Shard.domains;
          dwall_s = r.Shard.wall_s;
          speedup =
            (if r.Shard.wall_s > 0. then base.Shard.wall_s /. r.Shard.wall_s
             else 0.);
          digest;
        })
      [ 1; 2; 4; 0 ]
  in
  (samples, List.length base.Shard.shards)

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let json_file ~quick = if quick then "BENCH_raw_quick.json" else "BENCH_raw.json"

let json_of_sample s =
  let stage_fields =
    String.concat ", "
      (List.map
         (fun st ->
           Printf.sprintf "\"%s_s\": %.6f, \"%s_minor_mwords\": %.3f" st.name
             st.wall_s st.name st.minor_mwords)
         s.stages)
  in
  Printf.sprintf
    "    {\"n\": %d, %s, \"journal_overhead_pct\": %.2f, \
     \"journal_us_per_change\": %.2f, \"group_us_per_change\": %.2f, \
     \"exec_words_per_change\": %.1f, \"succeeded\": %b}"
    s.n stage_fields s.journal_overhead_pct s.journal_us_per_change
    s.group_us_per_change s.exec_words_per_change s.ok

let json_of_domain_sample d =
  Printf.sprintf
    "    {\"domains\": %d, \"effective_domains\": %d, \"wall_s\": %.6f, \
     \"speedup\": %.2f, \"digest\": \"%s\"}"
    d.domains d.effective d.dwall_s d.speedup d.digest

let write_json ~quick ~samples ~domain_samples ~dom_n ~dom_fleets ~shards =
  let oc = open_out (json_file ~quick) in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"e16_raw_speed\",\n\
    \  \"engine\": \"cloudless\",\n\
    \  \"quick\": %b,\n\
    \  \"cores\": %d,\n\
    \  \"samples\": [\n\
     %s\n\
    \  ],\n\
    \  \"domain_leg\": {\"n\": %d, \"fleets\": %d, \"shards\": %d, \
     \"byte_identical\": true, \"runs\": [\n\
     %s\n\
    \  ]}\n\
     }\n"
    quick
    (Domain.recommended_domain_count ())
    (String.concat ",\n" (List.map json_of_sample samples))
    dom_n dom_fleets shards
    (String.concat ",\n" (List.map json_of_domain_sample domain_samples));
  close_out oc

let run () =
  let quick = !Bench_util.quick in
  section
    (Printf.sprintf "E16: raw-speed core — per-stage cost, 10k to 1M%s"
       (if quick then " (quick)" else ""));
  let sizes =
    match !Bench_util.resources with
    | Some n -> [ n ]
    | None -> if quick then [ 1_000; 5_000 ] else [ 10_000; 100_000; 1_000_000 ]
  in
  let widths = [ 9; 8; 8; 8; 9; 9; 8; 8; 8; 5 ] in
  row widths
    [ "n"; "eval"; "plan"; "dag"; "execute"; "exec-w/c"; "exec-MW";
      "wal-us"; "grp-us"; "ok" ];
  hline widths;
  let samples =
    List.map
      (fun n ->
        let s = run_size n in
        let stage name =
          List.find (fun st -> st.name = name) s.stages
        in
        row widths
          [
            string_of_int s.n;
            Printf.sprintf "%.3fs" (stage "eval").wall_s;
            Printf.sprintf "%.3fs" (stage "plan").wall_s;
            Printf.sprintf "%.3fs" (stage "dag").wall_s;
            Printf.sprintf "%.3fs" (stage "execute").wall_s;
            Printf.sprintf "%.0fw" s.exec_words_per_change;
            Printf.sprintf "%.0fMW" (stage "execute").minor_mwords;
            Printf.sprintf "%.1fus" s.journal_us_per_change;
            Printf.sprintf "%.1fus" s.group_us_per_change;
            (if s.ok then "yes" else "NO");
          ];
        s)
      sizes
  in
  (* Allocation regression gate (scripts/check.sh runs the quick
     sweep): the bare apply must stay within budget per change.  The
     budget carries ~35% headroom over the measured ~430 w/change so
     timing noise never trips it while a reintroduced per-change
     tree-path copy (~+100 w) or closure pileup still does. *)
  let alloc_budget = 600. in
  List.iter
    (fun s ->
      if s.exec_words_per_change > alloc_budget then begin
        Printf.printf
          "  ALLOC REGRESSION: %.0f minor words/change at n=%d (budget %.0f)\n"
          s.exec_words_per_change s.n alloc_budget;
        exit 1
      end)
    samples;
  let dom_n, dom_fleets =
    match !Bench_util.resources with
    | Some n -> (n, 8)
    | None -> if quick then (2_000, 8) else (100_000, 8)
  in
  let domain_samples, shards = run_domains ~n:dom_n ~fleets:dom_fleets in
  Printf.printf "\n  domain leg: n=%d over %d fleets -> %d shard(s), %d core(s)\n"
    dom_n dom_fleets shards
    (Domain.recommended_domain_count ());
  List.iter
    (fun d ->
      Printf.printf "    domains=%d  wall=%.3fs  speedup=%.2fx  digest=%s\n"
        d.domains d.dwall_s d.speedup
        (String.sub d.digest 0 12))
    domain_samples;
  let top = List.nth samples (List.length samples - 1) in
  Printf.printf
    "\n\
    \  shape check: identical digests at --domains {1,2,4,0} (asserted);\n\
    \  WAL journal adds %.1f us/change (%.1f%% of the pure-engine apply\n\
    \  wall; the flush-per-intent contract floors that ratio), group\n\
    \  commit (K=64) %.1f us/change — against the 0.15 s simulated API\n\
    \  round-trip either is <0.01%%.  Bare apply allocates %.0f minor\n\
    \  words/change (budget %.0f).\n\
    \  wrote %s\n"
    top.journal_us_per_change top.journal_overhead_pct
    top.group_us_per_change top.exec_words_per_change alloc_budget
    (json_file ~quick);
  write_json ~quick ~samples ~domain_samples ~dom_n ~dom_fleets ~shards
