(* E15 (shard fleet): the event-driven multi-shard control plane.

   N tenants spread over a fleet of shards (consistent-hash placement),
   all submitting their apply request at t=0, with out-of-band drift
   injected while the fleet runs.  Drift detection is push-based: one
   multiplexed activity-log subscription per shard replaces the
   per-deployment tailer polling of the E14 engine.  The bench asserts
   the E15 claims on its own output:

   - scale-out is free: request p99 and drift-detection p50 stay within
     1.5x of the single-shard run as the shard count grows 1 -> 8 (the
     work is tenant-disjoint; sharding must not add latency);
   - the management-read bill collapses: subscriptions never poll, so
     fleet mgmt reads (api_reads + log_polls) are >= 10x below the
     tailer-polling single-loop engine on the same scenario;
   - cross-shard drift routing works: the shard that classifies a log
     entry is (usually) not the tenant's owner, and the routed events
     still reconcile -- every injection is detected, instantly;
   - a crash mid-wave resumes at shard granularity with zero orphans,
     zero duplicate creates, and a state digest byte-identical to an
     uncrashed run;
   - the canonical state digest is identical at every shard count, and
     two identical runs export byte-identical metrics snapshots;
   - admission backpressure holds: hot tenants pushed over the queue
     bound get deferred (and all complete) or rejected (and are never
     executed), and queue-depth rebalancing moves at least one tenant
     off the hot shard.

   Results land in BENCH_fleet.json (BENCH_fleet_quick.json with
   --quick, which also shrinks the tenant count and shard sweep). *)

open Bench_util
module Activity_log = Cloudless_sim.Activity_log
module Rate_limiter = Cloudless_sim.Rate_limiter
module Failure = Cloudless_sim.Failure
module Cloud_rules = Cloudless_schema.Cloud_rules
module Control_plane = Cloudless_controlplane.Control_plane
module Shard = Cloudless_controlplane.Shard
module Fleet = Cloudless_controlplane.Fleet
module Scenario = Cloudless_controlplane.Scenario
module Metrics = Cloudless_obs.Metrics

let resources = 8
let drift_period = 60.

let service_cloud ~seed =
  Cloud.create
    ~config:(Cloud_rules.config_with_checks ())
    ~write_limiter:(Rate_limiter.create ~capacity:1e7 ~refill_rate:1e6)
    ~read_limiter:(Rate_limiter.create ~capacity:1e7 ~refill_rate:1e6)
    ~seed ()

let scenario ~tenants ~shards =
  {
    Scenario.default with
    Scenario.tenants;
    shards;
    deployments_per_tenant = 1;
    resources;
    requests_per_tenant = 1;
    request_interval = 600.;
    drift_events = (if tenants >= 64 then 32 else 8);
    drift_period;
    policy_period = 300.;
    duration = 1800.;
  }

let run_fleet ?crash ~scn ~seed () =
  let cloud = service_cloud ~seed in
  let config = Scenario.service_config scn Shard.fleet_service in
  let fleet =
    ref (Fleet.create ~cloud ~shards:scn.Scenario.shards config)
  in
  let injections = Scenario.install_fleet scn fleet in
  (match crash with
  | Some k -> Fleet.set_crash !fleet (Failure.Crash_after k)
  | None -> ());
  let crashed =
    match Fleet.run !fleet ~until:scn.Scenario.duration with
    | () -> false
    | exception Failure.Engine_crashed _ -> true
  in
  (fleet, !injections, crashed)

(* Join the injection log with the fleet's detection log: latency of
   the first detection at or after each injection. *)
let drift_latencies detections injections =
  List.map
    (fun (inj : Scenario.injection) ->
      match
        List.find_opt
          (fun (cid, at) ->
            cid = inj.Scenario.icloud_id
            && at >= inj.Scenario.injected_at -. 1e-9)
          detections
      with
      | Some (_, at) -> at -. inj.Scenario.injected_at
      | None ->
          failwith
            (Printf.sprintf "e15: injection at t=%.0f never detected"
               inj.Scenario.injected_at))
    injections

let nearest_rank p xs =
  match List.sort compare xs with
  | [] -> 0.
  | sorted ->
      let n = List.length sorted in
      let i =
        min (n - 1)
          (max 0 (int_of_float (ceil (p /. 100. *. float_of_int n)) - 1))
      in
      List.nth sorted i

type leg = {
  shards : int;
  p50 : float;
  p99 : float;
  makespan : float;
  drift_p50 : float;
  drift_max : float;
  mgmt_reads : int;
  api_calls : int;
  cross_routed : int;
  digest : string;
}

let measure_fleet_leg ~scn ~seed =
  let fleet, injections, crashed = run_fleet ~scn ~seed () in
  if crashed then failwith "e15: unexpected crash in measurement leg";
  let fleet = !fleet in
  let m = Fleet.metrics fleet in
  let expected = scn.Scenario.tenants * scn.Scenario.requests_per_tenant in
  if Metrics.counter m "requests_done" <> expected then
    failwith
      (Printf.sprintf "e15: %d/%d requests completed"
         (Metrics.counter m "requests_done")
         expected);
  if Fleet.orphans fleet <> [] then failwith "e15: orphaned resources";
  if List.length injections <> scn.Scenario.drift_events then
    failwith "e15: not all drift injections fired";
  if Metrics.counter m "log_polls" <> 0 then
    failwith "e15: subscription mode polled the activity log";
  let lat = drift_latencies (Fleet.drift_detections fleet) injections in
  let pctl name p =
    match Metrics.percentile m name p with
    | Some v -> v
    | None -> failwith ("e15: no samples for " ^ name)
  in
  let makespan =
    List.fold_left
      (fun acc (_, _, at) -> Float.max acc at)
      0.
      (Fleet.completed_requests fleet)
  in
  {
    shards = scn.Scenario.shards;
    p50 = pctl "request_latency" 50.;
    p99 = pctl "request_latency" 99.;
    makespan;
    drift_p50 = nearest_rank 50. lat;
    drift_max = List.fold_left Float.max 0. lat;
    mgmt_reads = Metrics.counter m "api_reads" + Metrics.counter m "log_polls";
    api_calls = Metrics.counter m "api_calls";
    cross_routed = Metrics.counter m "cross_shard_routed";
    digest = Fleet.state_digest fleet;
  }

(* The E14-style single-loop engine with per-deployment tailer polling:
   the mgmt-reads baseline the subscriptions are measured against. *)
let measure_tailer_leg ~scn ~seed =
  let cloud = service_cloud ~seed in
  let config =
    Scenario.service_config scn Control_plane.cloudless_service
  in
  let cp = ref (Control_plane.create ~cloud config) in
  let injections = Scenario.install scn cp in
  Control_plane.run !cp ~until:scn.Scenario.duration;
  let m = Control_plane.metrics !cp in
  if List.length !injections <> scn.Scenario.drift_events then
    failwith "e15: tailer leg injections did not fire";
  let polls = Metrics.counter m "log_polls" in
  if polls = 0 then failwith "e15: tailer leg never polled";
  Metrics.counter m "api_reads" + polls

(* --- crash leg: kill the fleet mid-wave, resume, audit ------------- *)

type crash_result = {
  crash_after : int;
  orphans : int;
  dup_creates : int;
  managed : int;
  expected_managed : int;
  digest_matches_uncrashed : bool;
}

let engine_creates cloud =
  List.length
    (List.filter
       (fun (e : Activity_log.entry) ->
         match (e.Activity_log.op, e.Activity_log.actor) with
         | Activity_log.Log_create, Activity_log.Iac_engine _ -> true
         | _ -> false)
       (Activity_log.all (Cloud.log cloud)))

let run_crash_leg ~seed =
  let tenants = 16 in
  (* One request wave: requests submitted while the fleet is down land
     in the dead process's mailbox (lost, as for any crashed endpoint),
     so the digest comparison needs every revision submitted before the
     crash.  The crash lands mid-wave, with creates both journaled-and-
     issued (adopted on resume) and journaled-but-never-issued
     (replanned). *)
  let scn =
    {
      (scenario ~tenants ~shards:2) with
      Scenario.requests_per_tenant = 1;
      drift_events = 0;
      policy_period = 0.;
      duration = 1200.;
    }
  in
  (* Reference digest: the same scenario, never crashed. *)
  let ref_fleet, _, _ = run_fleet ~scn ~seed () in
  let ref_digest = Fleet.state_digest !ref_fleet in
  let crash_after = 30 in
  let fleet_ref, _, crashed =
    run_fleet ~crash:crash_after ~scn ~seed ()
  in
  if not crashed then failwith "e15: crash leg did not crash";
  let fresh, _reports = Fleet.resume !fleet_ref in
  fleet_ref := fresh;
  Fleet.run fresh ~until:scn.Scenario.duration;
  let expected_managed = tenants * resources in
  let managed = Fleet.managed_resource_count fresh in
  let dup_creates = engine_creates (Fleet.cloud fresh) - managed in
  {
    crash_after;
    orphans = List.length (Fleet.orphans fresh);
    dup_creates;
    managed;
    expected_managed;
    digest_matches_uncrashed = String.equal (Fleet.state_digest fresh) ref_digest;
  }

(* --- determinism leg ----------------------------------------------- *)

let snapshot_of_run ~shards ~seed =
  let fleet_ref, _, _ =
    run_fleet ~scn:(scenario ~tenants:24 ~shards) ~seed ()
  in
  Metrics.to_json (Fleet.metrics !fleet_ref)

(* --- backpressure + rebalance leg ---------------------------------- *)

type pressure_result = {
  deferred : int;
  rejected : int;
  rebalance_moves : int;
  defer_all_done : bool;
  reject_none_lost : bool;
}

let pressure_scenario admission =
  {
    (scenario ~tenants:8 ~shards:2) with
    Scenario.requests_per_tenant = 2;
    request_interval = 300.;
    drift_events = 0;
    policy_period = 0.;
    duration = 1200.;
    hot_tenants = 2;
    hot_burst = 8;
    max_queue_depth = 4;
    admission;
    rebalance_period = 20.;
  }

let run_pressure_leg ~seed =
  let scn = pressure_scenario Shard.Defer in
  let fleet_ref, _, _ = run_fleet ~scn ~seed () in
  let m = Fleet.metrics !fleet_ref in
  let deferred = Metrics.counter m "requests_deferred" in
  let moves = Metrics.counter m "rebalance_moves" in
  let defer_all_done =
    Metrics.counter m "requests_done" = Metrics.counter m "requests"
  in
  let scn_r = pressure_scenario Shard.Reject in
  let fleet_r, _, _ = run_fleet ~scn:scn_r ~seed () in
  let mr = Fleet.metrics !fleet_r in
  let rejected = Metrics.counter mr "requests_rejected" in
  let reject_none_lost =
    Metrics.counter mr "requests_done" = Metrics.counter mr "requests"
  in
  { deferred; rejected; rebalance_moves = moves; defer_all_done; reject_none_lost }

(* --- JSON ---------------------------------------------------------- *)

let json_file ~quick =
  if quick then "BENCH_fleet_quick.json" else "BENCH_fleet.json"

let json_of_leg l =
  Printf.sprintf
    "    {\"shards\": %d, \"p50\": %.2f, \"p99\": %.2f, \"makespan\": %.2f, \
     \"drift_p50\": %.2f, \"drift_max\": %.2f, \"mgmt_reads\": %d, \
     \"api_calls\": %d, \"cross_shard_routed\": %d, \"digest\": \"%s\"}"
    l.shards l.p50 l.p99 l.makespan l.drift_p50 l.drift_max l.mgmt_reads
    l.api_calls l.cross_routed l.digest

let write_json ~quick ~tenants ~legs ~big ~tailer_reads ~(crash : crash_result)
    ~(pressure : pressure_result) ~determinism_ok =
  let fleet_reads =
    match legs with l :: _ -> max 1 l.mgmt_reads | [] -> 1
  in
  let oc = open_out (json_file ~quick) in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"e15_fleet\",\n\
    \  \"quick\": %b,\n\
    \  \"tenants\": %d,\n\
    \  \"resources_per_tenant\": %d,\n\
    \  \"drift_period\": %.0f,\n\
    \  \"shard_sweep\": [\n\
     %s\n\
    \  ],\n\
     %s\
    \  \"tailer_mgmt_reads\": %d,\n\
    \  \"mgmt_reads_ratio\": %.1f,\n\
    \  \"crash\": {\"tenants\": 16, \"shards\": 2, \"crash_after\": %d, \
     \"orphans\": %d, \"dup_creates\": %d, \"managed\": %d, \
     \"expected_managed\": %d, \"digest_matches_uncrashed\": %b},\n\
    \  \"backpressure\": {\"deferred\": %d, \"rejected\": %d, \
     \"rebalance_moves\": %d, \"defer_all_done\": %b, \
     \"reject_none_lost\": %b},\n\
    \  \"summary\": {\"p99_flat_across_shards\": true, \
     \"drift_p50_flat_across_shards\": true, \
     \"digest_shard_invariant\": true, \"determinism_ok\": %b}\n\
     }\n"
    quick tenants resources drift_period
    (String.concat ",\n" (List.map json_of_leg legs))
    (match big with
    | None -> ""
    | Some l ->
        (* the leg object with a tenants field spliced in *)
        let body = String.trim (json_of_leg l) in
        let inner = String.sub body 1 (String.length body - 2) in
        Printf.sprintf "  \"big\": {\"tenants\": 1024,%s},\n" inner)
    tailer_reads
    (float_of_int tailer_reads /. float_of_int fleet_reads)
    crash.crash_after crash.orphans crash.dup_creates crash.managed
    crash.expected_managed crash.digest_matches_uncrashed pressure.deferred
    pressure.rejected pressure.rebalance_moves pressure.defer_all_done
    pressure.reject_none_lost determinism_ok;
  close_out oc

(* --- assertions ---------------------------------------------------- *)

let assert_claims legs tailer_reads (crash : crash_result)
    (pressure : pressure_result) determinism_ok =
  let base =
    match legs with
    | l :: _ when l.shards = 1 -> l
    | _ -> failwith "e15: sweep must start at one shard"
  in
  List.iter
    (fun l ->
      (* scale-out must not cost latency: the work is tenant-disjoint *)
      if l.p99 > 1.5 *. base.p99 then
        failwith
          (Printf.sprintf "e15: p99 at %d shards exceeds 1.5x single-shard"
             l.shards);
      if l.drift_p50 > 1.5 *. Float.max 1. base.drift_p50 then
        failwith
          (Printf.sprintf
             "e15: drift p50 at %d shards exceeds 1.5x single-shard" l.shards);
      (* push detection is within one poll period by a wide margin *)
      if l.drift_max > drift_period then
        failwith "e15: subscription drift latency exceeded one poll period";
      (* the digest is shard-count-invariant *)
      if not (String.equal l.digest base.digest) then
        failwith
          (Printf.sprintf "e15: state digest differs at %d shards" l.shards);
      (* classification shard != owner shard happens once there are >1 *)
      if l.shards > 1 && l.cross_routed = 0 then
        failwith
          (Printf.sprintf "e15: no cross-shard drift routing at %d shards"
             l.shards);
      (* subscriptions never poll; the tailer engine's bill is >= 10x *)
      if tailer_reads < 10 * max 1 l.mgmt_reads then
        failwith
          (Printf.sprintf
             "e15: tailer mgmt reads not 10x the fleet's at %d shards"
             l.shards))
    legs;
  if crash.orphans <> 0 then failwith "e15: crash leg left orphans";
  if crash.dup_creates <> 0 then failwith "e15: crash leg duplicated creates";
  if crash.managed <> crash.expected_managed then
    failwith "e15: crash leg lost resources";
  if not crash.digest_matches_uncrashed then
    failwith "e15: post-resume digest differs from uncrashed run";
  if pressure.deferred = 0 then
    failwith "e15: hot tenants never tripped the defer bound";
  if not pressure.defer_all_done then
    failwith "e15: deferred requests did not all complete";
  if pressure.rejected = 0 then
    failwith "e15: hot tenants never tripped the reject bound";
  if not pressure.reject_none_lost then
    failwith "e15: accepted requests lost under reject admission";
  if pressure.rebalance_moves = 0 then
    failwith "e15: rebalancer never moved a tenant off the hot shard";
  if not determinism_ok then
    failwith "e15: metrics snapshots not byte-identical"

(* --- driver -------------------------------------------------------- *)

let run () =
  let quick = !Bench_util.quick in
  section
    (Printf.sprintf "E15: multi-shard fleet%s" (if quick then " (quick)" else ""));
  let seed = 42 in
  let tenants = if quick then 24 else 512 in
  let shard_counts = if quick then [ 1; 2; 4 ] else [ 1; 2; 4; 8 ] in
  let widths = [ 7; 9; 9; 10; 9; 9; 9; 10 ] in
  row widths
    [
      "shards"; "p50"; "p99"; "makespan"; "drift50"; "driftmax"; "mgmt_rd";
      "x-routed";
    ];
  hline widths;
  let legs =
    List.map
      (fun shards ->
        let scn = scenario ~tenants ~shards in
        let l = measure_fleet_leg ~scn ~seed in
        row widths
          [
            string_of_int shards;
            fmt_s l.p50;
            fmt_s l.p99;
            fmt_s l.makespan;
            fmt_s l.drift_p50;
            fmt_s l.drift_max;
            string_of_int l.mgmt_reads;
            string_of_int l.cross_routed;
          ];
        l)
      shard_counts
  in
  let big =
    if quick then None
    else begin
      let l = measure_fleet_leg ~scn:(scenario ~tenants:1024 ~shards:8) ~seed in
      Printf.printf "1024 tenants @ 8 shards: p99=%.2f drift_p50=%.2f \
                     mgmt_reads=%d cross_routed=%d\n"
        l.p99 l.drift_p50 l.mgmt_reads l.cross_routed;
      Some l
    end
  in
  let tailer_reads = measure_tailer_leg ~scn:(scenario ~tenants ~shards:1) ~seed in
  Printf.printf "tailer engine mgmt reads at %d tenants: %d (fleet: %d)\n"
    tenants tailer_reads
    (match legs with l :: _ -> l.mgmt_reads | [] -> 0);
  let crash = run_crash_leg ~seed in
  Printf.printf
    "crash leg (16 tenants, 2 shards, crash after write %d): orphans=%d \
     dup_creates=%d managed=%d/%d digest_match=%b\n"
    crash.crash_after crash.orphans crash.dup_creates crash.managed
    crash.expected_managed crash.digest_matches_uncrashed;
  let pressure = run_pressure_leg ~seed in
  Printf.printf
    "backpressure: deferred=%d rejected=%d rebalance_moves=%d all_done=%b\n"
    pressure.deferred pressure.rejected pressure.rebalance_moves
    pressure.defer_all_done;
  let determinism_ok =
    List.for_all
      (fun shards ->
        String.equal (snapshot_of_run ~shards ~seed) (snapshot_of_run ~shards ~seed))
      shard_counts
  in
  Printf.printf "metrics determinism at shards {%s}: %s\n"
    (String.concat "," (List.map string_of_int shard_counts))
    (if determinism_ok then "ok" else "FAILED");
  assert_claims legs tailer_reads crash pressure determinism_ok;
  write_json ~quick ~tenants ~legs ~big ~tailer_reads ~crash ~pressure
    ~determinism_ok;
  Printf.printf "wrote %s\n" (json_file ~quick)
