(* E2 (§3.3, accelerating deployment updates).

   Claim: confining an update to its impact scope slashes both the
   state-refresh API cost and the turnaround time, because "even a
   single resource update will trigger expensive queries on all
   cloud-level resource state".

   Setup: deploy a microservice fleet, then update k services' instance
   types.  Baseline refreshes the whole state; the incremental engine
   refreshes only the impact scope. *)

open Bench_util
module Executor = Cloudless_deploy.Executor
module Plan = Cloudless_plan.Plan
module State = Cloudless_state.State
module Dag = Cloudless_graph.Dag
module Addr = Cloudless_hcl.Addr

let fleet services = Workload.microservices ~services ~instances_per_service:4 ()

let edit_services src k =
  (* bump instance type of the first k services *)
  let rec go src i =
    if i >= k then src
    else
      let sub = Printf.sprintf "ami           = \"ami-0svc%04d\"" i in
      let by = Printf.sprintf "ami           = \"ami-1svc%04d\"" i in
      go (Bench_util.replace src ~sub ~by) (i + 1)
  in
  go src 0

let run_update ~incremental cloud state old_instances new_src edited =
  let instances = expand_src ~state new_src in
  let plan = Plan.make ~state instances in
  let engine =
    if incremental then
      let graph = Dag.of_instances old_instances in
      let scope = Plan.impact_scope ~graph ~edited in
      { Executor.cloudless_config with Executor.refresh = Executor.Refresh_scoped scope }
    else Executor.baseline_config
  in
  Executor.apply cloud ~config:engine ~state ~plan ()

let run_case services k =
  let src = fleet services in
  let deploy_once () =
    let cloud, report = deploy ~engine:Executor.cloudless_config src in
    (cloud, report.Executor.state)
  in
  let edited =
    List.init k (fun i ->
        Addr.make ~rtype:"aws_instance" ~rname:(Printf.sprintf "svc%d" i) ())
  in
  let new_src = edit_services src k in
  (* full *)
  let cloud1, state1 = deploy_once () in
  let old_instances1 = expand_src ~state:state1 src in
  let full = run_update ~incremental:false cloud1 state1 old_instances1 new_src edited in
  (* incremental *)
  let cloud2, state2 = deploy_once () in
  let old_instances2 = expand_src ~state:state2 src in
  let inc = run_update ~incremental:true cloud2 state2 old_instances2 new_src edited in
  assert (Executor.succeeded full && Executor.succeeded inc);
  row
    [ 14; 8; 12; 12; 12; 12 ]
    [
      Printf.sprintf "%d services" services;
      string_of_int k;
      Printf.sprintf "%d reads" full.Executor.refresh_reads;
      Printf.sprintf "%d reads" inc.Executor.refresh_reads;
      fmt_s (full.Executor.refresh_duration +. full.Executor.makespan);
      fmt_s (inc.Executor.refresh_duration +. inc.Executor.makespan);
    ];
  (full, inc)

let run () =
  section "E2: incremental updates — full refresh+replan vs impact scope";
  row [ 14; 8; 12; 12; 12; 12 ]
    [ "fleet"; "edited"; "full-rfsh"; "inc-rfsh"; "full-time"; "inc-time" ];
  hline [ 14; 8; 12; 12; 12; 12 ];
  (* the (services, edited) sweep; `--resources N` replaces the
     hardcoded fleet sizes with an N-service fleet at two edit widths *)
  let cases =
    match !Bench_util.resources with
    | Some n -> [ (n, 1); (n, max 1 (n / 5)) ]
    | None -> [ (10, 1); (10, 3); (25, 1); (25, 5); (25, 10) ]
  in
  let results = List.map (fun (s, k) -> run_case s k) cases in
  let read_savings =
    List.map
      (fun ((full : Executor.report), (inc : Executor.report)) ->
        pct (float_of_int inc.Executor.refresh_reads)
          (float_of_int full.Executor.refresh_reads))
      results
  in
  Printf.printf
    "\n  shape check: refresh reads cut by %.0f-%.0f%%; expected: savings grow\n\
    \  as the edit touches a smaller fraction of the fleet.\n"
    (List.fold_left min 100. read_savings)
    (List.fold_left max 0. read_savings)
