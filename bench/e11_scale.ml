(* E11 (engine scalability): scheduler overhead at 10k-resource fleets.

   The paper's §3.3 scheduling argument only holds if the IaC engine's
   own bookkeeping stays negligible as fleets grow.  This experiment
   times the executor's *real* (wall-clock) overhead — as opposed to
   simulated cloud time — while deploying `Workload.fleet` topologies
   of 100 → 10k resources with the cloudless engine, under both
   ready-set implementations:

   - heap: the shared Pqueue binary heap (O(log n) picks), the default;
   - list: the seed's list scan (O(n) per pick), kept as reference.

   Both must produce identical makespans and apply orders (asserted
   here); they differ only in engine overhead.  Results also land in
   BENCH_scale.json so future PRs can track the perf trajectory.

   `--quick` shrinks the sweep to a ≤5s smoke run. *)

open Bench_util
module Executor = Cloudless_deploy.Executor
module Plan = Cloudless_plan.Plan

type sample = {
  n : int;
  sched : string;
  wall_s : float;  (** real seconds for the whole apply *)
  sched_s : float;  (** real seconds inside ready-set operations *)
  picks : int;
  peak_ready : int;
  makespan : float;  (** simulated seconds *)
  ok : bool;
}

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let run_one ~n ~sched ~sched_name plan =
  let cloud = fresh_cloud ~seed:42 () in
  let report, wall =
    time (fun () ->
        Executor.apply cloud ~config:Executor.cloudless_config
          ~state:State.empty ~plan ~sched ())
  in
  ( {
      n;
      sched = sched_name;
      wall_s = wall;
      sched_s = report.Executor.sched_time;
      picks = report.Executor.sched_picks;
      peak_ready = report.Executor.peak_ready;
      makespan = report.Executor.makespan;
      ok = Executor.succeeded report;
    },
    report )

let json_of_sample s =
  Printf.sprintf
    "    {\"n\": %d, \"sched\": \"%s\", \"wall_s\": %.6f, \"sched_s\": %.6f, \
     \"picks\": %d, \"picks_per_s\": %.0f, \"peak_ready\": %d, \
     \"makespan_sim_s\": %.3f, \"succeeded\": %b}"
    s.n s.sched s.wall_s s.sched_s s.picks
    (if s.sched_s > 0. then float_of_int s.picks /. s.sched_s else 0.)
    s.peak_ready s.makespan s.ok

(* Quick runs land in a separate throwaway file so a CI smoke run can
   never clobber the committed full-sweep perf trajectory. *)
let json_file ~quick =
  if quick then "BENCH_scale_quick.json" else "BENCH_scale.json"

let write_json ~quick ~samples ~ratio ~ratio_desc =
  let oc = open_out (json_file ~quick) in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"e11_scale\",\n\
    \  \"engine\": \"cloudless\",\n\
    \  \"quick\": %b,\n\
    \  \"samples\": [\n\
     %s\n\
    \  ],\n\
    \  \"summary\": {\"sched_overhead_ratio\": %.1f, \"description\": \"%s\"}\n\
     }\n"
    quick
    (String.concat ",\n" (List.map json_of_sample samples))
    ratio ratio_desc;
  close_out oc

let run () =
  let quick = !Bench_util.quick in
  section
    (Printf.sprintf "E11: engine overhead at scale — heap vs list ready set%s"
       (if quick then " (quick)" else ""));
  let sizes =
    match !Bench_util.resources with
    | Some n -> [ n ]
    | None ->
        if quick then [ 100; 250; 500 ] else [ 100; 500; 1000; 5000; 10000 ]
  in
  let list_cap = if quick then 500 else 5000 in
  let widths = [ 7; 5; 9; 9; 8; 10; 7; 9 ] in
  row widths
    [ "n"; "sched"; "wall"; "sched-ovh"; "picks"; "peak-rdy"; "sim"; "ok" ];
  hline widths;
  let samples = ref [] in
  List.iter
    (fun n ->
      let src = Workload.fleet ~resources:n () in
      let instances = expand_src src in
      assert (List.length instances = n);
      let plan = Plan.make ~state:State.empty instances in
      let heap_sample, heap_report =
        run_one ~n ~sched:Executor.Sched_heap ~sched_name:"heap" plan
      in
      let print_sample s =
        row widths
          [
            string_of_int s.n;
            s.sched;
            Printf.sprintf "%.3fs" s.wall_s;
            Printf.sprintf "%.4fs" s.sched_s;
            string_of_int s.picks;
            string_of_int s.peak_ready;
            Printf.sprintf "%.0fs" s.makespan;
            (if s.ok then "yes" else "NO");
          ]
      in
      print_sample heap_sample;
      samples := heap_sample :: !samples;
      if n <= list_cap then begin
        let list_sample, list_report =
          run_one ~n ~sched:Executor.Sched_list ~sched_name:"list" plan
        in
        print_sample list_sample;
        samples := list_sample :: !samples;
        (* same schedule, bit for bit: only the overhead may differ *)
        assert (list_report.Executor.makespan = heap_report.Executor.makespan);
        assert (list_report.Executor.applied = heap_report.Executor.applied)
      end)
    sizes;
  let samples = List.rev !samples in
  let find sched n =
    List.find_opt (fun s -> s.sched = sched && s.n = n) samples
  in
  let heap_top = Option.get (find "heap" (List.fold_left max 0 sizes)) in
  let list_top = Option.get (find "list" list_cap) in
  let ratio =
    if heap_top.sched_s > 0. then list_top.sched_s /. heap_top.sched_s
    else Float.infinity
  in
  let ratio_desc =
    Printf.sprintf
      "list ready set at n=%d spends %.1fx the scheduler time of the heap at \
       n=%d"
      list_top.n ratio heap_top.n
  in
  Printf.printf
    "\n\
    \  shape check: identical makespans and apply orders under both ready\n\
    \  sets; %s.\n\
    \  wrote %s\n"
    ratio_desc (json_file ~quick);
  write_json ~quick ~samples ~ratio ~ratio_desc
