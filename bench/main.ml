(* The experiment harness: regenerates every table in EXPERIMENTS.md.

   Usage:
     dune exec bench/main.exe            # E1-E11 (simulated-time experiments)
     dune exec bench/main.exe -- micro   # bechamel microbenches only
     dune exec bench/main.exe -- e3 e5   # a subset
     dune exec bench/main.exe -- all     # experiments + microbenches

   Flags:
     --quick         shrink large sweeps (E11, E16) to a ≤5s smoke run
     --resources N   run size-swept experiments (E2, E11, E16) at one
                     fleet size N instead of their built-in sweeps *)

let experiments =
  [
    ("e1", E1_deploy_scaling.run);
    ("e2", E2_incremental.run);
    ("e3", E3_locks.run);
    ("e4", E4_rollback.run);
    ("e5", E5_drift.run);
    ("e6", E6_validation.run);
    ("e7", E7_porting.run);
    ("e8", E8_policy.run);
    ("e9", E9_synthesis.run);
    ("e10", E10_rate_limit.run);
    ("e11", E11_scale.run);
    ("e12", E12_pipeline.run);
    ("e13", E13_crash.run);
    ("e14", E14_service.run);
    ("e15", E15_fleet.run);
    ("e16", E16_raw_speed.run);
    ("e17", E17_soak.run);
    ("e18", E18_wave.run);
    ("ablation", Ablation.run);
  ]

let () =
  let args =
    match Array.to_list Sys.argv with _ :: rest -> rest | [] -> []
  in
  let args =
    List.filter
      (fun a ->
        if a = "--quick" then begin
          Bench_util.quick := true;
          false
        end
        else true)
      args
  in
  (* --resources N: consume the flag and its value *)
  let rec eat_resources = function
    | "--resources" :: n :: rest ->
        (match int_of_string_opt n with
        | Some v when v > 0 -> Bench_util.resources := Some v
        | _ ->
            Printf.eprintf "--resources expects a positive integer, got %S\n" n;
            exit 2);
        eat_resources rest
    | a :: rest -> a :: eat_resources rest
    | [] -> []
  in
  let args = eat_resources args in
  let run_experiments names =
    List.iter
      (fun n ->
        if n <> "micro" && not (List.mem_assoc n experiments) then begin
          Printf.eprintf "unknown experiment %S (known: %s, micro)\n" n
            (String.concat ", " (List.map fst experiments));
          exit 2
        end)
      names;
    List.iter
      (fun (name, f) -> if names = [] || List.mem name names then f ())
      experiments
  in
  match args with
  | [] ->
      print_endline "cloudless experiment harness (see EXPERIMENTS.md)";
      run_experiments []
  | [ "micro" ] -> Micro.run ()
  | [ "all" ] ->
      run_experiments [];
      Micro.run ()
  | names ->
      let micro = List.mem "micro" names in
      run_experiments (List.filter (fun n -> n <> "micro") names);
      if micro then Micro.run ()
