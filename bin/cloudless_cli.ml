(* The cloudless command-line tool: cmdliner wiring only.

   Every handler lives in [Cloudless.Cli] (lib/core/cli.ml) and
   returns an exit code — 0 success, 1 user/config error, 2 deploy
   failure (or, for `plan`, a non-empty diff).  Keeping the bodies in
   the library means tests exercise exactly what this binary runs:

     cloudless fmt main.tf
     cloudless validate main.tf [--level cloud]
     cloudless graph main.tf > deps.dot
     cloudless plan main.tf --state state.cls [--trace t.jsonl]
     cloudless apply main.tf --state state.cls [--engine cloudless] [--trace t.jsonl]
     cloudless destroy --state state.cls
     cloudless policy-check main.tf --policies policies.hcl
     cloudless example web-tier     # emit a generated workload
     cloudless serve scenario.txt --ticks 20 [--engine baseline]  *)

open Cmdliner
module Cli = Cloudless.Cli
module Validate = Cloudless_validate.Validate

(* ------------------------------------------------------------------ *)
(* Common args                                                         *)
(* ------------------------------------------------------------------ *)

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"IaC source file or directory of .tf files")

let state_arg =
  Arg.(
    value
    & opt string "cloudless.state"
    & info [ "state" ] ~docv:"PATH" ~doc:"State file (created on first apply)")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Simulation seed")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"PATH"
        ~doc:"Write per-stage trace spans (JSONL) to $(docv)")

let engine_arg =
  let engines =
    [ ("baseline", Cli.Baseline); ("cloudless", Cli.Cloudless) ]
  in
  Arg.(
    value
    & opt (enum engines) Cli.Cloudless
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:"Deployment engine: $(b,baseline) (Terraform-like) or $(b,cloudless)")

(* ------------------------------------------------------------------ *)
(* Commands                                                            *)
(* ------------------------------------------------------------------ *)

let fmt_cmd =
  let run file in_place = Cli.fmt ~file ~in_place () in
  let in_place =
    Arg.(value & flag & info [ "i"; "in-place" ] ~doc:"Rewrite the file")
  in
  Cmd.v (Cmd.info "fmt" ~doc:"Canonically format an IaC file")
    Term.(const run $ file_arg $ in_place)

let level_arg =
  let levels =
    [
      ("syntax", Validate.L_syntax);
      ("refs", Validate.L_references);
      ("types", Validate.L_types);
      ("cloud", Validate.L_cloud);
    ]
  in
  Arg.(
    value
    & opt (enum levels) Validate.L_cloud
    & info [ "level" ] ~docv:"LEVEL"
        ~doc:"Validation depth: $(b,syntax), $(b,refs), $(b,types) or $(b,cloud)")

let validate_cmd =
  let run file level state_path = Cli.validate ~level ~file ~state_path () in
  Cmd.v
    (Cmd.info "validate" ~doc:"Run the staged validation pipeline (§3.2)")
    Term.(const run $ file_arg $ level_arg $ state_arg)

let graph_cmd =
  let run file = Cli.graph ~file () in
  Cmd.v
    (Cmd.info "graph" ~doc:"Emit the resource dependency graph as Graphviz dot")
    Term.(const run $ file_arg)

let plan_cmd =
  let run file state_path trace_path =
    Cli.plan ?trace_path ~file ~state_path ()
  in
  Cmd.v
    (Cmd.info "plan" ~doc:"Show what apply would change (exit 2 when non-empty)")
    Term.(const run $ file_arg $ state_arg $ trace_arg)

let apply_cmd =
  let run file state_path seed engine trace_path resume domains journal_mode =
    Cli.apply ?trace_path ~seed ~engine ~resume ~domains ~journal_mode ~file
      ~state_path ()
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Recover from a crashed apply: merge the deployment journal \
             left next to the state file into the state before planning, \
             then continue the remaining changes")
  in
  let domains_arg =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Shard the plan by weakly-connected component and apply the \
             shards on N OCaml domains; 0 sizes the pool to the machine. \
             Output is byte-identical for any N; the sharded path skips the \
             deployment journal (crash resume is a --domains 1 feature)")
  in
  let journal_mode_arg =
    let modes =
      [
        ("wal", Cloudless_state.Journal.Wal);
        ("group", Cloudless_state.Journal.Group 64);
      ]
    in
    Arg.(
      value
      & opt (enum modes) Cloudless_state.Journal.Wal
      & info [ "journal-mode" ] ~docv:"MODE"
          ~doc:
            "Deployment-journal durability: $(b,wal) flushes every intent \
             before its cloud call is issued; $(b,group) batches up to 64 \
             intents behind one flush barrier, deferring their cloud calls \
             until the barrier — an order of magnitude fewer syscalls for a \
             wider crash window (lost batched intents are ops that were \
             never issued, so resume simply replans them)")
  in
  Cmd.v
    (Cmd.info "apply" ~doc:"Apply the configuration against the simulated cloud")
    Term.(
      const run $ file_arg $ state_arg $ seed_arg $ engine_arg $ trace_arg
      $ resume_arg $ domains_arg $ journal_mode_arg)

let destroy_cmd =
  let run state_path seed trace_path =
    Cli.destroy ?trace_path ~seed ~state_path ()
  in
  Cmd.v
    (Cmd.info "destroy" ~doc:"Destroy everything tracked in the state file")
    Term.(const run $ state_arg $ seed_arg $ trace_arg)

let policy_check_cmd =
  let policies_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "policies" ] ~docv:"FILE" ~doc:"Policy file (obs/action HCL)")
  in
  let run file policies_path state_path =
    Cli.policy_check ~file ~policies_path ~state_path ()
  in
  Cmd.v
    (Cmd.info "policy-check" ~doc:"Run plan-phase policies against a plan (§3.6)")
    Term.(const run $ file_arg $ policies_arg $ state_arg)

let import_cmd =
  let optimize_arg =
    Arg.(
      value & flag
      & info [ "no-optimize" ]
          ~doc:"Skip the refactoring optimizer (emit the naive one-block-per-resource dump)")
  in
  let run state_path no_optimize = Cli.import ~no_optimize ~state_path () in
  Cmd.v
    (Cmd.info "import"
       ~doc:
         "Port the tracked deployment back to IaC source (§3.1): naive dump           or optimizer output")
    Term.(const run $ state_arg $ optimize_arg)

let example_cmd =
  let name_arg =
    Arg.(
      required
      & pos 0 (some (enum (List.map (fun (n, _) -> (n, n)) Cli.examples))) None
      & info [] ~docv:"NAME"
          ~doc:
            "One of: web-tier, microservices, data-pipeline, multi-region, \
             multi-cloud, figure2")
  in
  let run name = Cli.example ~name () in
  Cmd.v
    (Cmd.info "example" ~doc:"Emit a generated example configuration")
    Term.(const run $ name_arg)

let serve_cmd =
  let scenario_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"SCENARIO"
          ~doc:
            "Scenario file (key = value lines: tenants, resources, \
             requests_per_tenant, request_interval, drift_events, \
             drift_period, policy_period, duration)")
  in
  let ticks_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "ticks" ] ~docv:"N"
          ~doc:
            "Run for $(docv) drift periods of simulated time instead of the \
             scenario's duration")
  in
  let metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"PATH"
          ~doc:
            "Write the metrics snapshot (JSON) to $(docv) instead of stdout")
  in
  let shards_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Run the scenario on the E15 multi-shard fleet with $(docv) \
             shards (consistent-hash tenant placement, push-based drift via \
             activity-log subscriptions) instead of the single event loop")
  in
  let queue_bound_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "queue-bound" ] ~docv:"K"
          ~doc:
            "Admission backpressure: defer or reject tenant requests while a \
             shard's queue depth is at or above $(docv) (0 = unbounded; \
             overrides the scenario's max_queue_depth)")
  in
  let admission_arg =
    Arg.(
      value
      & opt (some (enum [ ("defer", `Defer); ("reject", `Reject) ])) None
      & info [ "admission" ] ~docv:"POLICY"
          ~doc:
            "What to do with requests over the queue bound: $(b,defer) \
             (re-admit later) or $(b,reject) (overrides the scenario's \
             admission knob)")
  in
  let episodes_arg =
    Arg.(
      value
      & opt (some bool) None
      & info [ "episodes" ] ~docv:"BOOL"
          ~doc:
            "Chaos episodes: $(b,false) strips the scenario's episode \
             windows (outages, error/throttle storms, spot waves, quota \
             cuts); $(b,true) keeps them (the default)")
  in
  let breaker_arg =
    Arg.(
      value
      & opt (some bool) None
      & info [ "breaker" ] ~docv:"BOOL"
          ~doc:
            "Circuit breakers: override the scenario's $(b,breaker) switch. \
             With breakers on, applies fast-fail against open (API kind, \
             resource type) cells and the affected work parks until the \
             next half-open probe")
  in
  let waves_arg =
    Arg.(
      value
      & opt (some bool) None
      & info [ "waves" ] ~docv:"BOOL"
          ~doc:
            "Bulk-change wave rollouts: $(b,false) strips the scenario's \
             $(b,wave =) lines; $(b,true) keeps them (the default; they run \
             only with --shards)")
  in
  let run scenario_path seed engine trace_path ticks metrics_path shards
      queue_bound admission episodes breaker waves =
    Cli.serve ?trace_path ~seed ~engine ?ticks ?metrics_path ?shards
      ?queue_bound ?admission ?episodes ?breaker ?waves ~scenario_path ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the multi-tenant reconciliation control plane against a \
          scenario for a bounded stretch of simulated time")
    Term.(
      const run $ scenario_arg $ seed_arg $ engine_arg $ trace_arg $ ticks_arg
      $ metrics_arg $ shards_arg $ queue_bound_arg $ admission_arg
      $ episodes_arg $ breaker_arg $ waves_arg)

let rollout_cmd =
  let change_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"CHANGE"
          ~doc:"Bulk-change file (HCL $(b,change) blocks: actions + gates)")
  in
  let scenario_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "scenario" ] ~docv:"SCENARIO"
          ~doc:
            "Scenario file providing the fleet shape (tenants, fleet size, \
             shard count); its request/drift schedule is not installed")
  in
  let shards_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "shards" ] ~docv:"N"
          ~doc:"Fleet shard count (default: the scenario's)")
  in
  let check_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "check-period" ] ~docv:"SECONDS"
          ~doc:"Wave quiescence-poll cadence in simulated seconds (default 30)")
  in
  let run file scenario_path seed trace_path shards check_period =
    Cli.rollout ?trace_path ~seed ?shards ?check_period ~file ~scenario_path ()
  in
  Cmd.v
    (Cmd.info "rollout"
       ~doc:
         "Carry a bulk change across a tenant fleet in canary-first, \
          geometrically growing waves, gating every wave boundary on policy \
          and health and auto-rolling-back a failed wave (exit 2 when a gate \
          halts the rollout)")
    Term.(
      const run $ change_arg $ scenario_arg $ seed_arg $ trace_arg
      $ shards_arg $ check_arg)

let main_cmd =
  let doc = "a principled IaC framework (HotNets '23 'Cloudless Computing')" in
  Cmd.group
    (Cmd.info "cloudless" ~version:"1.0.0" ~doc)
    [
      fmt_cmd;
      validate_cmd;
      graph_cmd;
      plan_cmd;
      apply_cmd;
      destroy_cmd;
      import_cmd;
      policy_check_cmd;
      example_cmd;
      serve_cmd;
      rollout_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
