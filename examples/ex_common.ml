(* Helpers shared by the examples. *)

module Lifecycle = Cloudless.Lifecycle

(* Unwrap a lifecycle result, rendering any error through the unified
   diagnostic channel before bailing out. *)
let ok = function
  | Ok v -> v
  | Error e -> failwith (Lifecycle.error_to_string e)

(* Substring replacement (the stdlib has no non-Str equivalent). *)
let replace s ~sub ~by =
  let slen = String.length sub in
  if slen = 0 then s
  else begin
    let buf = Buffer.create (String.length s) in
    let rec go i =
      if i > String.length s - slen then
        Buffer.add_string buf (String.sub s i (String.length s - i))
      else if String.sub s i slen = sub then begin
        Buffer.add_string buf by;
        go (i + slen)
      end
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
    in
    go 0;
    Buffer.contents buf
  end
