(* The full cloudless lifecycle (reproduces Figure 1(b) of the paper).

   Walks one infrastructure through every stage the paper names:
   develop -> validate (catching a cloud-level misconfiguration before
   deployment) -> deploy -> incremental update -> drift detection and
   reconciliation -> rollback via the time machine.

     dune exec examples/lifecycle.exe *)

module Lifecycle = Cloudless.Lifecycle
module Validate = Cloudless_validate.Validate
module Diagnostic = Cloudless_validate.Diagnostic
module State = Cloudless_state.State
module Version_store = Cloudless_state.Version_store
module Cloud = Cloudless_sim.Cloud
module Executor = Cloudless_deploy.Executor
module Workload = Cloudless_workload.Workload
module Drift = Cloudless_drift.Drift
module Addr = Cloudless_hcl.Addr
module Value = Cloudless_hcl.Value

let stage n title = Printf.printf "\n[%d] %s\n%s\n" n title (String.make 60 '-')

let ok = Ex_common.ok

let () =
  print_endline "=== The cloudless lifecycle (Figure 1b) ===";
  let t = Lifecycle.create () in

  (* ---------------------------------------------------------------- *)
  stage 1 "Developing & validating: a misconfiguration is caught early";
  let broken = Workload.misconfigured Workload.M_region_mismatch in
  (match Lifecycle.develop t broken with
  | Error (Lifecycle.Invalid_config ds) ->
      print_endline "the VM/NIC region mismatch never reaches the cloud:";
      List.iter
        (fun d -> Printf.printf "  %s\n" (Diagnostic.to_string d))
        ds
  | _ -> failwith "expected validation failure");

  (* ---------------------------------------------------------------- *)
  stage 2 "Deploying: a correct web tier";
  let report = ok (Lifecycle.deploy t (Workload.web_tier ())) in
  Printf.printf "deployed %d resources in %.0f simulated seconds (%d API calls)\n"
    (List.length report.Executor.applied)
    report.Executor.makespan report.Executor.api_calls;
  let v_initial = Option.get (Version_store.head (Lifecycle.versions t)) in

  (* ---------------------------------------------------------------- *)
  stage 3 "Updating incrementally: grow the fleet from 4 to 6 instances";
  let grown =
    (* web_tier emits `count = 4` for aws_instance.web *)
    Ex_common.replace (Workload.web_tier ())
      ~sub:"count                  = 4" ~by:"count                  = 6"
  in
  let report = ok (Lifecycle.update t grown) in
  Printf.printf
    "impact-scoped update: %d refresh reads (full refresh would read %d),\n\
     applied %d changes in %.0f simulated seconds\n"
    report.Executor.refresh_reads
    (State.size (Lifecycle.state t) - 2)
    (List.length report.Executor.applied)
    report.Executor.makespan;

  (* ---------------------------------------------------------------- *)
  stage 4 "Observing: an out-of-band change drifts the deployment";
  let addr = Addr.make ~rtype:"aws_instance" ~rname:"web" ~key:(Addr.Kint 0) () in
  let r = Option.get (State.find_opt (Lifecycle.state t) addr) in
  (match
     Cloud.mutate_oob (Lifecycle.cloud t) ~script:"legacy-cron.sh"
       ~cloud_id:r.State.cloud_id ~attr:"instance_type"
       ~value:(Value.Vstring "t3.metal")
   with
  | Ok () -> Printf.printf "legacy-cron.sh silently resized %s...\n" r.State.cloud_id
  | Error _ -> failwith "oob mutation failed");
  let events = Lifecycle.check_drift t in
  List.iter (fun e -> Fmt.pr "  drift: %a@." Drift.pp_event e) events;
  Lifecycle.reconcile_drift t events;
  print_endline "  reconciled: state now reflects the live cloud";

  (* ---------------------------------------------------------------- *)
  stage 5 "Rolling back: return to the initial 4-instance version";
  let report = ok (Lifecycle.rollback_to t ~version_id:v_initial) in
  Printf.printf "rollback applied %d changes; fleet is back to %d resources\n"
    (List.length report.Executor.applied)
    (State.size (Lifecycle.state t));

  (* ---------------------------------------------------------------- *)
  stage 6 "History: the time machine";
  List.iter
    (fun v -> Fmt.pr "  %a@." Version_store.pp_version v)
    (Version_store.history (Lifecycle.versions t));

  print_endline "\nlifecycle complete."
