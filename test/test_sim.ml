(* Tests for the cloud simulator substrate: PRNG determinism, event
   queue ordering, rate limiting, activity log, CRUD lifecycle, failure
   injection, quotas, out-of-band mutation. *)

open Cloudless_sim
module Value = Cloudless_hcl.Value
module Smap = Value.Smap

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool
let string_ = Alcotest.string

(* ------------------------------------------------------------------ *)
(* PRNG                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  let xs = List.init 20 (fun _ -> Prng.int a 1000) in
  let ys = List.init 20 (fun _ -> Prng.int b 1000) in
  check (Alcotest.list int_) "same seed, same stream" xs ys;
  let c = Prng.create 43 in
  let zs = List.init 20 (fun _ -> Prng.int c 1000) in
  check bool_ "different seed differs" true (xs <> zs)

let test_prng_ranges () =
  let p = Prng.create 1 in
  for _ = 1 to 1000 do
    let f = Prng.float p in
    assert (f >= 0. && f < 1.);
    let n = Prng.int_range p 5 10 in
    assert (n >= 5 && n <= 10)
  done

let test_prng_split_independent () =
  let p = Prng.create 7 in
  let child = Prng.split p in
  let a = List.init 10 (fun _ -> Prng.int p 100) in
  let b = List.init 10 (fun _ -> Prng.int child 100) in
  check bool_ "streams differ" true (a <> b)

let prop_exponential_positive =
  QCheck.Test.make ~count:200 ~name:"exponential samples are positive"
    QCheck.(int_range 1 10000)
    (fun seed ->
      let p = Prng.create seed in
      Prng.exponential p ~mean:10. > 0.)

(* ------------------------------------------------------------------ *)
(* Event queue                                                         *)
(* ------------------------------------------------------------------ *)

let test_event_queue_order () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:3. "c";
  Event_queue.push q ~time:1. "a";
  Event_queue.push q ~time:2. "b";
  let pop () = Option.map snd (Event_queue.pop q) in
  let p1 = pop () in
  let p2 = pop () in
  let p3 = pop () in
  let p4 = pop () in
  check (Alcotest.list (Alcotest.option string_)) "sorted order"
    [ Some "a"; Some "b"; Some "c"; None ]
    [ p1; p2; p3; p4 ]

let test_event_queue_fifo_ties () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:1. "first";
  Event_queue.push q ~time:1. "second";
  Event_queue.push q ~time:1. "third";
  let order = List.init 3 (fun _ -> Option.get (Event_queue.pop q) |> snd) in
  check (Alcotest.list string_) "insertion order on ties"
    [ "first"; "second"; "third" ] order

let prop_event_queue_sorted =
  QCheck.Test.make ~count:100 ~name:"pops are monotone in time"
    QCheck.(list_of_size (QCheck.Gen.int_range 0 50) (float_range 0. 1000.))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> Event_queue.push q ~time:t ()) times;
      let rec drain last =
        match Event_queue.pop q with
        | None -> true
        | Some (t, ()) -> t >= last && drain t
      in
      drain neg_infinity)

(* ------------------------------------------------------------------ *)
(* Rate limiter                                                        *)
(* ------------------------------------------------------------------ *)

let test_rate_limiter_burst_then_throttle () =
  let rl = Rate_limiter.create ~capacity:5. ~refill_rate:1. in
  for _ = 1 to 5 do
    match Rate_limiter.try_acquire rl ~now:0. with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "burst should be admitted"
  done;
  (match Rate_limiter.try_acquire rl ~now:0. with
  | Error after -> check bool_ "retry-after positive" true (after > 0.)
  | Ok () -> Alcotest.fail "6th call should throttle");
  (* after refill, admitted again *)
  match Rate_limiter.try_acquire rl ~now:2. with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "should be admitted after refill"

let test_rate_limiter_stats () =
  let rl = Rate_limiter.create ~capacity:1. ~refill_rate:0.1 in
  ignore (Rate_limiter.try_acquire rl ~now:0.);
  ignore (Rate_limiter.try_acquire rl ~now:0.);
  let admitted, throttled = Rate_limiter.stats rl in
  check int_ "admitted" 1 admitted;
  check int_ "throttled" 1 throttled

let test_rate_limiter_time_until () =
  let rl = Rate_limiter.create ~capacity:2. ~refill_rate:0.5 in
  ignore (Rate_limiter.try_acquire rl ~now:0.);
  ignore (Rate_limiter.try_acquire rl ~now:0.);
  let wait = Rate_limiter.time_until rl ~now:0. 1. in
  check (Alcotest.float 0.001) "2s to refill one token at 0.5/s" 2. wait

(* ------------------------------------------------------------------ *)
(* Cloud CRUD lifecycle                                                *)
(* ------------------------------------------------------------------ *)

let actor = Activity_log.Iac_engine "test"

let attrs kvs =
  Smap.of_seq (List.to_seq (List.map (fun (k, v) -> (k, Value.Vstring v)) kvs))

let test_cloud_create_read_delete () =
  let cloud = Cloud.create ~seed:1 () in
  let result =
    Cloud.run_sync cloud ~actor
      (Cloud.Create
         {
           rtype = "aws_vpc";
           region = "us-east-1";
           attrs = attrs [ ("cidr_block", "10.0.0.0/16") ];
         })
  in
  let created = match result with Ok a -> a | Error e -> Alcotest.failf "create: %s" (Cloud.error_to_string e) in
  let id = Value.to_string (Smap.find "id" created) in
  check bool_ "id prefix" true (String.length id > 4);
  check bool_ "time advanced" true (Cloud.now cloud > 0.);
  (* read it back *)
  (match Cloud.run_sync cloud ~actor (Cloud.Read { cloud_id = id }) with
  | Ok a ->
      check string_ "attr persisted" "10.0.0.0/16"
        (Value.to_string (Smap.find "cidr_block" a))
  | Error e -> Alcotest.failf "read: %s" (Cloud.error_to_string e));
  (* delete *)
  (match Cloud.run_sync cloud ~actor (Cloud.Delete { cloud_id = id }) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "delete: %s" (Cloud.error_to_string e));
  match Cloud.run_sync cloud ~actor (Cloud.Read { cloud_id = id }) with
  | Error (Cloud.Not_found _) -> ()
  | _ -> Alcotest.fail "read after delete should 404"

let test_cloud_create_takes_service_time () =
  let cloud = Cloud.create ~seed:1 () in
  ignore
    (Cloud.run_sync cloud ~actor
       (Cloud.Create { rtype = "aws_db_instance"; region = "us-east-1"; attrs = attrs [("identifier", "db1"); ("engine", "postgres"); ("instance_class", "db.m5")] }));
  (* db instances take ~420s in the service model *)
  check bool_ "db create is slow" true (Cloud.now cloud > 300.)

let test_cloud_unknown_region () =
  let cloud = Cloud.create ~seed:1 () in
  match
    Cloud.run_sync cloud ~actor
      (Cloud.Create { rtype = "aws_vpc"; region = "mars-north-1"; attrs = Smap.empty })
  with
  | Error (Cloud.Invalid _) -> ()
  | _ -> Alcotest.fail "expected invalid region error"

let test_cloud_quota () =
  let config = { Cloud.default_config with Cloud.quotas = [ ("aws_vpc", 2) ] } in
  let cloud = Cloud.create ~config ~seed:1 () in
  let create () =
    Cloud.run_sync cloud ~actor
      (Cloud.Create { rtype = "aws_vpc"; region = "us-east-1"; attrs = Smap.empty })
  in
  (match create () with Ok _ -> () | Error _ -> Alcotest.fail "1st");
  (match create () with Ok _ -> () | Error _ -> Alcotest.fail "2nd");
  match create () with
  | Error (Cloud.Quota_exceeded _) -> ()
  | _ -> Alcotest.fail "3rd should exceed quota"

let test_cloud_update () =
  let cloud = Cloud.create ~seed:1 () in
  let id =
    match
      Cloud.run_sync cloud ~actor
        (Cloud.Create { rtype = "aws_instance"; region = "us-east-1";
                        attrs = attrs [ ("instance_type", "t3.small"); ("ami", "ami-1") ] })
    with
    | Ok a -> Value.to_string (Smap.find "id" a)
    | Error _ -> Alcotest.fail "create"
  in
  match
    Cloud.run_sync cloud ~actor
      (Cloud.Update { cloud_id = id; attrs = attrs [ ("instance_type", "t3.large") ] })
  with
  | Ok a ->
      check string_ "updated" "t3.large" (Value.to_string (Smap.find "instance_type" a));
      check string_ "old attr kept" "ami-1" (Value.to_string (Smap.find "ami" a))
  | Error e -> Alcotest.failf "update: %s" (Cloud.error_to_string e)

let test_cloud_activity_log () =
  let cloud = Cloud.create ~seed:1 () in
  ignore
    (Cloud.run_sync cloud ~actor
       (Cloud.Create { rtype = "aws_vpc"; region = "us-east-1"; attrs = Smap.empty }));
  let entries = Activity_log.all (Cloud.log cloud) in
  check int_ "one entry" 1 (List.length entries);
  let e = List.hd entries in
  check string_ "create op" "create" (Activity_log.op_to_string e.Activity_log.op);
  check string_ "actor" "iac:test" (Activity_log.actor_to_string e.Activity_log.actor)

let test_cloud_transient_failures () =
  let config =
    { Cloud.default_config with Cloud.failure = Failure.make ~transient_prob:1.0 () }
  in
  let cloud = Cloud.create ~config ~seed:1 () in
  match
    Cloud.run_sync cloud ~actor
      (Cloud.Create { rtype = "aws_vpc"; region = "us-east-1"; attrs = Smap.empty })
  with
  | Error (Cloud.Transient _) -> ()
  | _ -> Alcotest.fail "expected transient failure"

let test_cloud_permanent_failure () =
  let config =
    {
      Cloud.default_config with
      Cloud.failure = Failure.make ~permanent:[ ("aws_vpc", "not allowed") ] ();
    }
  in
  let cloud = Cloud.create ~config ~seed:1 () in
  match
    Cloud.run_sync cloud ~actor
      (Cloud.Create { rtype = "aws_vpc"; region = "us-east-1"; attrs = Smap.empty })
  with
  | Error (Cloud.Invalid msg) -> check string_ "message" "not allowed" msg
  | _ -> Alcotest.fail "expected permanent failure"

let test_cloud_oob_mutation_logged () =
  let cloud = Cloud.create ~seed:1 () in
  let id = Cloud.create_oob cloud ~script:"legacy.sh" ~rtype:"aws_vpc"
      ~region:"us-east-1" ~attrs:Smap.empty in
  (match Cloud.mutate_oob cloud ~script:"legacy.sh" ~cloud_id:id
           ~attr:"cidr_block" ~value:(Value.Vstring "10.9.0.0/16") with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "mutate");
  let drift_events = Activity_log.non_iac_writes (Cloud.log cloud) ~since:0 in
  check int_ "create + update logged as non-iac" 2 (List.length drift_events)

let test_cloud_list_type () =
  let cloud = Cloud.create ~seed:1 () in
  for _ = 1 to 3 do
    ignore
      (Cloud.run_sync cloud ~actor
         (Cloud.Create { rtype = "aws_subnet"; region = "us-east-1"; attrs = Smap.empty }))
  done;
  ignore
    (Cloud.run_sync cloud ~actor
       (Cloud.Create { rtype = "aws_vpc"; region = "us-east-1"; attrs = Smap.empty }));
  match Cloud.run_sync cloud ~actor (Cloud.List_type { rtype = "aws_subnet"; region = None }) with
  | Ok listing -> check int_ "three subnets" 3 (Smap.cardinal listing)
  | Error e -> Alcotest.failf "list: %s" (Cloud.error_to_string e)

let test_cloud_determinism () =
  let run () =
    let cloud = Cloud.create ~seed:99 () in
    for _ = 1 to 5 do
      ignore
        (Cloud.run_sync cloud ~actor
           (Cloud.Create { rtype = "aws_instance"; region = "us-east-1";
                           attrs = attrs [ ("ami", "a"); ("instance_type", "t") ] }))
    done;
    Cloud.now cloud
  in
  check (Alcotest.float 1e-9) "identical end time" (run ()) (run ())

(* ------------------------------------------------------------------ *)
(* Activity-log subscriptions                                          *)
(* ------------------------------------------------------------------ *)

let log_append log ~seq:_ id =
  ignore
    (Activity_log.append log ~time:0. ~actor ~op:Activity_log.Log_create
       ~cloud_id:id ~rtype:"aws_vpc" ~region:"us-east-1" ~detail:"")

let test_log_subscribe_push () =
  let log = Activity_log.create () in
  let got = ref [] in
  let sub =
    Activity_log.subscribe log (fun e -> got := e.Activity_log.cloud_id :: !got)
  in
  log_append log ~seq:0 "a";
  log_append log ~seq:1 "b";
  check (Alcotest.list string_) "delivered in append order" [ "a"; "b" ]
    (List.rev !got);
  check int_ "one subscriber" 1 (Activity_log.subscriber_count log);
  Activity_log.unsubscribe log sub;
  log_append log ~seq:2 "c";
  check (Alcotest.list string_) "nothing after unsubscribe" [ "a"; "b" ]
    (List.rev !got);
  check int_ "unsubscribe idempotent" 0
    (Activity_log.unsubscribe log sub;
     Activity_log.subscriber_count log)

let test_log_subscribe_replay () =
  let log = Activity_log.create () in
  log_append log ~seq:0 "a";
  log_append log ~seq:1 "b";
  log_append log ~seq:2 "c";
  let got = ref [] in
  (* a restarted consumer carries its cursor: seq >= 1 replays b, c *)
  ignore
    (Activity_log.subscribe log ~from:1 (fun e ->
         got := e.Activity_log.cloud_id :: !got));
  check (Alcotest.list string_) "cursor replay" [ "b"; "c" ] (List.rev !got);
  log_append log ~seq:3 "d";
  check (Alcotest.list string_) "then live delivery" [ "b"; "c"; "d" ]
    (List.rev !got);
  (* replays and live pushes both count as deliveries *)
  check int_ "deliveries counted" 3 (Activity_log.deliveries log)

let test_log_subscribe_fanout_order () =
  let log = Activity_log.create () in
  let order = ref [] in
  ignore (Activity_log.subscribe log (fun _ -> order := "first" :: !order));
  ignore (Activity_log.subscribe log (fun _ -> order := "second" :: !order));
  log_append log ~seq:0 "a";
  check (Alcotest.list string_) "subscription order preserved"
    [ "first"; "second" ] (List.rev !order)

let qtest = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "sim.prng",
      [
        Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
        Alcotest.test_case "ranges" `Quick test_prng_ranges;
        Alcotest.test_case "split independence" `Quick test_prng_split_independent;
        qtest prop_exponential_positive;
      ] );
    ( "sim.event_queue",
      [
        Alcotest.test_case "time order" `Quick test_event_queue_order;
        Alcotest.test_case "fifo ties" `Quick test_event_queue_fifo_ties;
        qtest prop_event_queue_sorted;
      ] );
    ( "sim.rate_limiter",
      [
        Alcotest.test_case "burst then throttle" `Quick test_rate_limiter_burst_then_throttle;
        Alcotest.test_case "stats" `Quick test_rate_limiter_stats;
        Alcotest.test_case "time_until" `Quick test_rate_limiter_time_until;
      ] );
    ( "sim.cloud",
      [
        Alcotest.test_case "create/read/delete" `Quick test_cloud_create_read_delete;
        Alcotest.test_case "service time" `Quick test_cloud_create_takes_service_time;
        Alcotest.test_case "unknown region" `Quick test_cloud_unknown_region;
        Alcotest.test_case "quota" `Quick test_cloud_quota;
        Alcotest.test_case "update" `Quick test_cloud_update;
        Alcotest.test_case "activity log" `Quick test_cloud_activity_log;
        Alcotest.test_case "transient failure" `Quick test_cloud_transient_failures;
        Alcotest.test_case "permanent failure" `Quick test_cloud_permanent_failure;
        Alcotest.test_case "oob mutation logged" `Quick test_cloud_oob_mutation_logged;
        Alcotest.test_case "list by type" `Quick test_cloud_list_type;
        Alcotest.test_case "determinism" `Quick test_cloud_determinism;
      ] );
    ( "sim.activity_log",
      [
        Alcotest.test_case "subscribe pushes appends" `Quick
          test_log_subscribe_push;
        Alcotest.test_case "cursor replay on subscribe" `Quick
          test_log_subscribe_replay;
        Alcotest.test_case "fan-out in subscription order" `Quick
          test_log_subscribe_fanout_order;
      ] );
  ]
