(* Workload-generator sanity plus cross-cutting property tests:
   every generated topology parses, validates, and deploys; random
   fleets deploy with correct bookkeeping under both engines; the lock
   manager never double-grants. *)

open Cloudless_hcl
module Cloud = Cloudless_sim.Cloud
module State = Cloudless_state.State
module Plan = Cloudless_plan.Plan
module Executor = Cloudless_deploy.Executor
module Dag = Cloudless_graph.Dag
module Validate = Cloudless_validate.Validate
module Diagnostic = Cloudless_validate.Diagnostic
module Workload = Cloudless_workload.Workload
module Lock_manager = Cloudless_lock.Lock_manager
module Prng = Cloudless_sim.Prng

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool

let generators =
  [
    ("web_tier", fun () -> Workload.web_tier ());
    ("web_tier minimal", fun () -> Workload.web_tier ~with_lb:false ~with_db:false ());
    ("microservices", fun () -> Workload.microservices ());
    ("data_pipeline", fun () -> Workload.data_pipeline ());
    ("multi_region", fun () -> Workload.multi_region ());
    ("layered", fun () -> Workload.layered ~width:3 ~depth:4 ());
    ("fleet", fun () -> Workload.fleet ~resources:40 ());
    ("chain", fun () -> Workload.chain ~resources:20 ());
  ]

let test_generators_validate () =
  List.iter
    (fun (name, gen) ->
      let report = Validate.validate_source ~file:name (gen ()) in
      let errors = Diagnostic.errors report.Validate.diagnostics in
      if errors <> [] then
        Alcotest.failf "%s: %s" name (Diagnostic.to_string (List.hd errors)))
    generators

let test_generators_deploy () =
  List.iter
    (fun (name, gen) ->
      let cloud =
        Cloud.create
          ~config:(Cloudless_schema.Cloud_rules.config_with_checks ())
          ~seed:3 ()
      in
      let cfg = Config.parse ~file:name (gen ()) in
      let instances = (Eval.expand cfg).Eval.instances in
      let plan = Plan.make ~state:State.empty instances in
      let report =
        Executor.apply cloud ~config:Executor.cloudless_config ~state:State.empty
          ~plan ()
      in
      if not (Executor.succeeded report) then
        Alcotest.failf "%s failed to deploy: %s" name
          (match report.Executor.failed with
          | f :: _ -> f.Executor.reason
          | [] -> "skipped resources");
      check bool_ (name ^ " cloud matches state") true
        (Cloud.resource_count cloud = State.size report.Executor.state))
    generators

let test_generators_deterministic () =
  List.iter
    (fun (name, gen) ->
      check bool_ (name ^ " deterministic") true (gen () = gen ()))
    generators

let test_multi_cloud_deploys () =
  (* one program spanning aws + azurerm + google providers *)
  let src = Workload.multi_cloud () in
  let report = Validate.validate_source ~file:"mc" src in
  check int_ "validates" 0 (Diagnostic.count_errors report.Validate.diagnostics);
  let cloud =
    Cloud.create ~config:(Cloudless_schema.Cloud_rules.config_with_checks ())
      ~seed:3 ()
  in
  let cfg = Config.parse ~file:"mc" src in
  let instances = (Eval.expand cfg).Eval.instances in
  let providers =
    List.sort_uniq compare
      (List.map (fun (i : Eval.instance) -> i.Eval.provider) instances)
  in
  check (Alcotest.list Alcotest.string) "three providers"
    [ "aws"; "azurerm"; "google" ] providers;
  let plan = Plan.make ~state:State.empty instances in
  let deploy_report =
    Executor.apply cloud ~config:Executor.cloudless_config ~state:State.empty
      ~plan ()
  in
  check bool_ "deploys across providers" true (Executor.succeeded deploy_report)

(* Golden check for the E11/E12 scale workload: a 10k fleet must keep
   producing exactly the same plan shape after front-half rewiring. *)
let test_fleet_10k_plan_golden () =
  let src = Workload.fleet ~resources:10_000 () in
  let cfg = Config.parse ~file:"fleet.tf" src in
  let instances = (Eval.expand cfg).Eval.instances in
  check int_ "10000 instances" 10_000 (List.length instances);
  let plan = Plan.make ~state:State.empty instances in
  let s = Plan.summarize plan in
  check int_ "creates" 10_000 s.Plan.to_create;
  check int_ "updates" 0 s.Plan.to_update;
  check int_ "replaces" 0 s.Plan.to_replace;
  check int_ "deletes" 0 s.Plan.to_delete;
  let g = Dag.of_instances instances in
  check int_ "graph nodes" 10_000 (Dag.size g);
  check int_ "graph depth" 3 (Dag.depth g);
  (* against a state mirroring the fleet, everything is a noop and the
     cloud-id index answers reverse lookups *)
  let populated =
    List.fold_left
      (fun st (i : Eval.instance) ->
        State.add st
          {
            State.addr = i.Eval.addr;
            cloud_id = "cid-" ^ Addr.to_string i.Eval.addr;
            rtype = i.Eval.addr.Addr.rtype;
            region = "us-east-1";
            attrs = i.Eval.attrs;
            deps = [];
          })
      State.empty instances
  in
  check bool_ "mirror state plans to noop" true
    (Plan.is_empty (Plan.make ~state:populated instances));
  check bool_ "cloud-id index answers" true
    (State.find_by_cloud_id populated "cid-aws_vpc.fleet" <> None)

(* ------------------------------------------------------------------ *)
(* Random-fleet deployment property                                    *)
(* ------------------------------------------------------------------ *)

(* a random (but type-correct) fleet: a vpc, a few subnets, instances
   spread across them *)
let random_fleet_src prng =
  let subnets = 1 + Prng.int prng 4 in
  let instances = Prng.int prng 12 in
  Printf.sprintf
    {|
resource "aws_vpc" "v" {
  cidr_block = "10.0.0.0/16"
  region     = "us-east-1"
}
resource "aws_subnet" "s" {
  count      = %d
  vpc_id     = aws_vpc.v.id
  cidr_block = cidrsubnet(aws_vpc.v.cidr_block, 8, count.index)
  region     = "us-east-1"
}
resource "aws_instance" "i" {
  count         = %d
  ami           = "ami-r"
  instance_type = "t3.small"
  subnet_id     = aws_subnet.s[count.index %% %d].id
  region        = "us-east-1"
}
|}
    subnets instances subnets

let prop_deploy_bookkeeping engine_name engine =
  QCheck.Test.make ~count:25
    ~name:
      (Printf.sprintf "%s: applied = plan size; state = cloud (random fleets)"
         engine_name)
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let prng = Prng.create seed in
      let src = random_fleet_src prng in
      let cloud =
        Cloud.create
          ~config:(Cloudless_schema.Cloud_rules.config_with_checks ())
          ~seed ()
      in
      let cfg = Config.parse ~file:"rand.tf" src in
      let instances = (Eval.expand cfg).Eval.instances in
      let plan = Plan.make ~state:State.empty instances in
      let expected = List.length (Plan.actionable plan) in
      let report =
        Executor.apply cloud ~config:engine ~state:State.empty ~plan ()
      in
      Executor.succeeded report
      && List.length report.Executor.applied = expected
      && State.size report.Executor.state = List.length instances
      && Cloud.resource_count cloud = List.length instances)

(* dependency order is respected in the activity log, for random fleets *)
let prop_deploy_order =
  QCheck.Test.make ~count:20 ~name:"creates respect dependency order"
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let prng = Prng.create seed in
      let src = random_fleet_src prng in
      let cloud =
        Cloud.create
          ~config:(Cloudless_schema.Cloud_rules.config_with_checks ())
          ~seed ()
      in
      let cfg = Config.parse ~file:"rand.tf" src in
      let instances = (Eval.expand cfg).Eval.instances in
      let plan = Plan.make ~state:State.empty instances in
      let report =
        Executor.apply cloud ~config:Executor.cloudless_config
          ~state:State.empty ~plan ()
      in
      if not (Executor.succeeded report) then false
      else begin
        (* creation completion times from the log, per type *)
        let log = Cloudless_sim.Activity_log.all (Cloud.log cloud) in
        let times ty =
          List.filter_map
            (fun (e : Cloudless_sim.Activity_log.entry) ->
              if
                e.Cloudless_sim.Activity_log.rtype = ty
                && e.Cloudless_sim.Activity_log.op = Cloudless_sim.Activity_log.Log_create
              then Some e.Cloudless_sim.Activity_log.time
              else None)
            log
        in
        let vpc_done = List.fold_left Float.max 0. (times "aws_vpc") in
        let first_subnet =
          List.fold_left Float.min infinity (times "aws_subnet")
        in
        let first_instance =
          List.fold_left Float.min infinity (times "aws_instance")
        in
        vpc_done <= first_subnet
        && (first_instance = infinity || first_subnet <= first_instance)
      end)

(* second apply over the deployed state is always a no-op *)
let prop_idempotent =
  QCheck.Test.make ~count:20 ~name:"apply is idempotent (random fleets)"
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let prng = Prng.create seed in
      let src = random_fleet_src prng in
      let cloud =
        Cloud.create
          ~config:(Cloudless_schema.Cloud_rules.config_with_checks ())
          ~seed ()
      in
      let cfg = Config.parse ~file:"rand.tf" src in
      let instances = (Eval.expand cfg).Eval.instances in
      let plan = Plan.make ~state:State.empty instances in
      let report =
        Executor.apply cloud ~config:Executor.cloudless_config
          ~state:State.empty ~plan ()
      in
      let env =
        {
          Eval.default_env with
          Eval.state_lookup = (fun a -> State.lookup report.Executor.state a);
        }
      in
      let instances2 = (Eval.expand ~env cfg).Eval.instances in
      Plan.is_empty (Plan.make ~state:report.Executor.state instances2))

(* ------------------------------------------------------------------ *)
(* Lock-manager invariant                                              *)
(* ------------------------------------------------------------------ *)

(* random acquire/release interleavings never leave one key held by
   two owners and never lose a grant *)
let prop_lock_exclusive =
  QCheck.Test.make ~count:100 ~name:"lock manager never double-grants"
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let prng = Prng.create seed in
      let lm = Lock_manager.create Lock_manager.Per_resource in
      let keys =
        Array.init 5 (fun i ->
            Addr.make ~rtype:"t_x" ~rname:(Printf.sprintf "k%d" i) ())
      in
      let held_by : (string, Addr.t list) Hashtbl.t = Hashtbl.create 8 in
      let violation = ref false in
      let grants = ref 0 and requests = ref 0 in
      let owners = [ "a"; "b"; "c" ] in
      for _ = 1 to 40 do
        let owner = Prng.choose prng owners in
        if Prng.bernoulli prng 0.4 then begin
          (* release everything owner holds *)
          Hashtbl.remove held_by owner;
          Lock_manager.release lm ~owner
        end
        else begin
          let want =
            List.init (1 + Prng.int prng 2) (fun _ ->
                keys.(Prng.int prng (Array.length keys)))
            |> List.sort_uniq Addr.compare
          in
          incr requests;
          Lock_manager.acquire lm ~owner ~keys:want (fun () ->
              incr grants;
              (* exclusivity check at grant time *)
              Hashtbl.iter
                (fun o ks ->
                  if o <> owner then
                    List.iter
                      (fun k ->
                        if List.exists (Addr.equal k) ks then violation := true)
                      want)
                held_by;
              let existing =
                Option.value ~default:[] (Hashtbl.find_opt held_by owner)
              in
              Hashtbl.replace held_by owner (want @ existing))
        end
      done;
      (* drain: release everyone until the queue empties *)
      let rec drain n =
        if n = 0 then ()
        else begin
          List.iter
            (fun o ->
              Hashtbl.remove held_by o;
              Lock_manager.release lm ~owner:o)
            owners;
          if Lock_manager.queue_length lm > 0 then drain (n - 1)
        end
      in
      drain 50;
      (not !violation)
      && Lock_manager.queue_length lm = 0
      && !grants = !requests)

(* ------------------------------------------------------------------ *)
(* Printer/parser fixpoint on random generated configurations          *)
(* ------------------------------------------------------------------ *)

(* build a random but well-formed config programmatically *)
let random_config prng =
  let n_vpcs = 1 + Prng.int prng 2 in
  let buf = Buffer.create 512 in
  for v = 0 to n_vpcs - 1 do
    Buffer.add_string buf
      (Printf.sprintf
         "resource \"aws_vpc\" \"v%d\" {\n  cidr_block = \"10.%d.0.0/16\"\n  region     = \"us-east-1\"\n}\n"
         v v);
    let n_subnets = Prng.int prng 4 in
    for s = 0 to n_subnets - 1 do
      Buffer.add_string buf
        (Printf.sprintf
           "resource \"aws_subnet\" \"v%d_s%d\" {\n  vpc_id     = aws_vpc.v%d.id\n  cidr_block = cidrsubnet(aws_vpc.v%d.cidr_block, 8, %d)\n  region     = \"us-east-1\"\n}\n"
           v s v v s)
    done
  done;
  if Prng.bernoulli prng 0.5 then
    Buffer.add_string buf
      "output \"vpcs\" { value = [aws_vpc.v0.cidr_block] }\n";
  Buffer.contents buf

let expansion_fingerprint src =
  let cfg = Config.parse ~file:"fuzz.tf" src in
  (Eval.expand cfg).Eval.instances
  |> List.map (fun (i : Eval.instance) ->
         ( Addr.to_string i.Eval.addr,
           Value.Smap.bindings i.Eval.attrs
           |> List.map (fun (k, v) -> (k, Value.show v)) ))
  |> List.sort compare

let prop_print_parse_fixpoint =
  QCheck.Test.make ~count:40 ~name:"config print/parse fixpoint + same expansion"
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let prng = Prng.create seed in
      let src = random_config prng in
      let printed = Config.to_string (Config.parse ~file:"a.tf" src) in
      let printed2 = Config.to_string (Config.parse ~file:"b.tf" printed) in
      printed = printed2
      && expansion_fingerprint src = expansion_fingerprint printed)

let qtest = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "workload.generators",
      [
        Alcotest.test_case "all validate" `Quick test_generators_validate;
        Alcotest.test_case "all deploy" `Slow test_generators_deploy;
        Alcotest.test_case "deterministic" `Quick test_generators_deterministic;
        Alcotest.test_case "multi-cloud" `Quick test_multi_cloud_deploys;
        Alcotest.test_case "10k fleet plan golden" `Slow
          test_fleet_10k_plan_golden;
      ] );
    ( "props.deploy",
      [
        qtest (prop_deploy_bookkeeping "baseline" Executor.baseline_config);
        qtest (prop_deploy_bookkeeping "cloudless" Executor.cloudless_config);
        qtest prop_deploy_order;
        qtest prop_idempotent;
        qtest prop_print_parse_fixpoint;
      ] );
    ( "props.lock",
      [ qtest prop_lock_exclusive ] );
  ]
