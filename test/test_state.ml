(* Tests for deployment state and the version store. *)

open Cloudless_hcl
module State = Cloudless_state.State
module Version_store = Cloudless_state.Version_store
module Smap = Value.Smap

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool
let string_ = Alcotest.string

let rs ?(rtype = "aws_vpc") ?(region = "us-east-1") ?(deps = []) name cloud_id
    attrs =
  {
    State.addr = Addr.make ~rtype ~rname:name ();
    cloud_id;
    rtype;
    region;
    attrs = Smap.of_seq (List.to_seq attrs);
    deps;
  }

let test_add_find_remove () =
  let s = State.empty in
  check int_ "serial 0" 0 (State.serial s);
  let s = State.add s (rs "main" "vpc-1" [ ("cidr_block", Value.Vstring "10.0.0.0/16") ]) in
  check int_ "serial bumped" 1 (State.serial s);
  check int_ "size" 1 (State.size s);
  let addr = Addr.make ~rtype:"aws_vpc" ~rname:"main" () in
  (match State.find_opt s addr with
  | Some r -> check string_ "cloud id" "vpc-1" r.State.cloud_id
  | None -> Alcotest.fail "missing");
  let s = State.remove s addr in
  check int_ "empty" 0 (State.size s);
  check int_ "serial bumped again" 2 (State.serial s)

let test_lookup_for_eval () =
  let s = State.add State.empty (rs "main" "vpc-1" [ ("id", Value.Vstring "vpc-1") ]) in
  let addr = Addr.make ~rtype:"aws_vpc" ~rname:"main" () in
  match State.lookup s addr with
  | Some attrs -> check bool_ "id present" true (Smap.mem "id" attrs)
  | None -> Alcotest.fail "lookup failed"

let test_find_by_cloud_id () =
  let s = State.add State.empty (rs "main" "vpc-42" []) in
  match State.find_by_cloud_id s "vpc-42" with
  | Some r -> check string_ "addr" "aws_vpc.main" (Addr.to_string r.State.addr)
  | None -> Alcotest.fail "not found"

let test_cloud_id_index_maintenance () =
  let addr_a = Addr.make ~rtype:"aws_vpc" ~rname:"a" () in
  (* removal drops the reverse-index entry *)
  let s = State.add State.empty (rs "a" "vpc-1" []) in
  let s = State.remove s addr_a in
  check bool_ "gone after remove" true (State.find_by_cloud_id s "vpc-1" = None);
  (* re-adding an addr under a new cloud id retires the old entry *)
  let s = State.add State.empty (rs "a" "vpc-old" []) in
  let s = State.add s (rs "a" "vpc-new" []) in
  check bool_ "old id gone" true (State.find_by_cloud_id s "vpc-old" = None);
  (match State.find_by_cloud_id s "vpc-new" with
  | Some r ->
      check string_ "new id resolves" "aws_vpc.a" (Addr.to_string r.State.addr)
  | None -> Alcotest.fail "new id missing");
  (* a cloud id taken over by another address survives the old owner's
     removal *)
  let s = State.add State.empty (rs "a" "vpc-1" []) in
  let s = State.add s (rs "b" "vpc-1" []) in
  let s = State.remove s addr_a in
  (match State.find_by_cloud_id s "vpc-1" with
  | Some r ->
      check string_ "b owns it" "aws_vpc.b" (Addr.to_string r.State.addr)
  | None -> Alcotest.fail "takeover entry lost");
  (* deserialized states answer reverse lookups too *)
  let s =
    State.of_string (State.to_string (State.add State.empty (rs "a" "vpc-9" [])))
  in
  match State.find_by_cloud_id s "vpc-9" with
  | Some r ->
      check string_ "after roundtrip" "aws_vpc.a" (Addr.to_string r.State.addr)
  | None -> Alcotest.fail "roundtrip lost index"

let test_orphans () =
  let s =
    State.add
      (State.add State.empty (rs "a" "vpc-1" []))
      (rs "b" "vpc-2" [])
  in
  let keep = [ Addr.make ~rtype:"aws_vpc" ~rname:"a" () ] in
  let orphans = State.orphans s keep in
  check int_ "one orphan" 1 (List.length orphans);
  check string_ "it's b" "aws_vpc.b" (Addr.to_string (List.hd orphans))

let test_serialization_roundtrip () =
  let s =
    State.add State.empty
      (rs "main" "vpc-1"
         [
           ("cidr_block", Value.Vstring "10.0.0.0/16");
           ("count", Value.Vint 3);
           ("enabled", Value.Vbool true);
           ("tags", Value.of_assoc [ ("env", Value.Vstring "prod") ]);
           ("zones", Value.Vlist [ Value.Vstring "a"; Value.Vstring "b" ]);
         ])
  in
  let s =
    State.add s
      (rs ~rtype:"aws_subnet"
         ~deps:[ Addr.make ~rtype:"aws_vpc" ~rname:"main" () ]
         "sub" "subnet-9" [ ("vpc_id", Value.Vstring "vpc-1") ])
  in
  let s = State.set_outputs s [ ("vpc_id", Value.Vstring "vpc-1") ] in
  let text = State.to_string s in
  let s' = State.of_string text in
  check int_ "size preserved" (State.size s) (State.size s');
  check int_ "serial preserved" (State.serial s) (State.serial s');
  let addr = Addr.make ~rtype:"aws_vpc" ~rname:"main" () in
  let r = Option.get (State.find_opt s' addr) in
  check bool_ "attrs preserved" true
    (Value.equal (Value.Vint 3) (Smap.find "count" r.State.attrs));
  let sub = Option.get (State.find_opt s' (Addr.make ~rtype:"aws_subnet" ~rname:"sub" ())) in
  check int_ "deps preserved" 1 (List.length sub.State.deps);
  check int_ "outputs preserved" 1 (List.length (State.outputs s'))

let test_serialization_sanitizes_unknowns () =
  let s =
    State.add State.empty (rs "main" "vpc-1" [ ("x", Value.unknown "a.b") ])
  in
  let s' = State.of_string (State.to_string s) in
  let r = Option.get (State.find_opt s' (Addr.make ~rtype:"aws_vpc" ~rname:"main" ())) in
  check bool_ "unknown became null" true
    (Value.equal Value.Vnull (Smap.find "x" r.State.attrs))

let test_diff () =
  let a =
    State.add
      (State.add State.empty (rs "x" "vpc-1" [ ("v", Value.Vint 1) ]))
      (rs "y" "vpc-2" [])
  in
  let b =
    State.add
      (State.add State.empty (rs "x" "vpc-1" [ ("v", Value.Vint 2) ]))
      (rs "z" "vpc-3" [])
  in
  let d = State.diff a b in
  check int_ "one added" 1 (List.length d.State.added);
  check int_ "one removed" 1 (List.length d.State.removed);
  check int_ "one modified" 1 (List.length d.State.modified);
  check bool_ "self diff empty" true (State.diff_is_empty (State.diff a a))

(* ------------------------------------------------------------------ *)
(* Version store ("time machine")                                      *)
(* ------------------------------------------------------------------ *)

let test_version_checkpoint_lineage () =
  let vs = Version_store.create () in
  check (Alcotest.option int_) "no head" None (Version_store.head vs);
  let v0 =
    Version_store.checkpoint vs ~time:0. ~description:"init" ~config_src:"a"
      ~state:State.empty
  in
  let s1 = State.add State.empty (rs "m" "vpc-1" []) in
  let v1 =
    Version_store.checkpoint vs ~time:10. ~description:"add vpc" ~config_src:"b"
      ~state:s1
  in
  check (Alcotest.option int_) "head at v1" (Some v1) (Version_store.head vs);
  let lineage = Version_store.lineage vs v1 in
  check int_ "two versions in lineage" 2 (List.length lineage);
  check int_ "v0 parent of v1" v0
    (Option.get (Option.get (Version_store.find vs v1)).Version_store.parent)

let test_version_diff_and_reset () =
  let vs = Version_store.create () in
  let v0 =
    Version_store.checkpoint vs ~time:0. ~description:"empty" ~config_src:""
      ~state:State.empty
  in
  let s1 = State.add State.empty (rs "m" "vpc-1" []) in
  let v1 =
    Version_store.checkpoint vs ~time:1. ~description:"one" ~config_src:""
      ~state:s1
  in
  (match Version_store.diff_versions vs ~from_id:v0 ~to_id:v1 with
  | Ok d -> check int_ "one added" 1 (List.length d.State.added)
  | Error e -> Alcotest.fail e);
  (match Version_store.reset_head vs v0 with
  | Ok () -> check (Alcotest.option int_) "head moved" (Some v0) (Version_store.head vs)
  | Error e -> Alcotest.fail e);
  match Version_store.reset_head vs 999 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected unknown version error"

let suites =
  [
    ( "state",
      [
        Alcotest.test_case "add/find/remove" `Quick test_add_find_remove;
        Alcotest.test_case "lookup for eval" `Quick test_lookup_for_eval;
        Alcotest.test_case "find by cloud id" `Quick test_find_by_cloud_id;
        Alcotest.test_case "cloud id index maintenance" `Quick
          test_cloud_id_index_maintenance;
        Alcotest.test_case "orphans" `Quick test_orphans;
        Alcotest.test_case "serialization round-trip" `Quick test_serialization_roundtrip;
        Alcotest.test_case "unknowns sanitized" `Quick test_serialization_sanitizes_unknowns;
        Alcotest.test_case "diff" `Quick test_diff;
      ] );
    ( "state.versions",
      [
        Alcotest.test_case "checkpoint & lineage" `Quick test_version_checkpoint_lineage;
        Alcotest.test_case "diff & reset" `Quick test_version_diff_and_reset;
      ] );
  ]
