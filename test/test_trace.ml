(* Stage tracing: the golden span sequence for a develop->apply run,
   counter attribution, timestamp monotonicity, and the JSONL sink
   round-trip. *)

module Lifecycle = Cloudless.Lifecycle
module Cli = Cloudless.Cli
module Io_util = Cloudless.Io_util
module Trace = Cloudless_obs.Trace
module Workload = Cloudless_workload.Workload

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool
let string_ = Alcotest.string
let strings_ = Alcotest.(list string)

let traced_lifecycle () =
  let sink, spans = Trace.memory_sink () in
  let trace = Trace.create sink in
  (Lifecycle.create ~trace (), spans)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Lifecycle.error_to_string e)

(* ------------------------------------------------------------------ *)
(* Golden span sequence                                                *)
(* ------------------------------------------------------------------ *)

(* develop -> apply over the web-tier fleet.  Spans are emitted in end
   order (children before parents); the sequence below is the contract
   the tentpole promises: validation inside develop, then apply
   enclosing expand -> plan -> execute -> expand (output recompute). *)
let test_golden_sequence () =
  let t, spans = traced_lifecycle () in
  ignore (ok (Lifecycle.develop t (Workload.web_tier ())));
  ignore (ok (Lifecycle.apply t));
  let spans = spans () in
  check strings_ "end-order span names"
    [ "validate"; "develop"; "expand"; "plan"; "execute"; "expand"; "apply" ]
    (List.map (fun s -> s.Trace.name) spans);
  (* nesting: verbs at depth 0, stages they enclose at depth 1 *)
  List.iter
    (fun s ->
      let expected =
        match s.Trace.name with "develop" | "apply" -> 0 | _ -> 1
      in
      check int_ (s.Trace.name ^ " depth") expected s.Trace.depth)
    spans;
  (* seq is begin order: develop begins before its validate child *)
  let seq name =
    (List.find (fun s -> s.Trace.name = name) spans).Trace.seq
  in
  check bool_ "develop begins before validate" true
    (seq "develop" < seq "validate");
  check bool_ "apply begins before plan" true (seq "apply" < seq "plan")

let test_monotone_and_counters () =
  let t, spans = traced_lifecycle () in
  ignore (ok (Lifecycle.develop t (Workload.web_tier ())));
  ignore (ok (Lifecycle.apply t));
  let spans = spans () in
  (* every span closes no earlier than it opened, on both clocks *)
  List.iter
    (fun s ->
      check bool_ (s.Trace.name ^ " wall monotone") true
        (s.Trace.wall_end >= s.Trace.wall_start);
      check bool_ (s.Trace.name ^ " sim monotone") true
        (s.Trace.sim_end >= s.Trace.sim_start))
    spans;
  (* begin order implies monotone wall-clock starts *)
  let by_seq =
    List.sort (fun a b -> compare a.Trace.seq b.Trace.seq) spans
  in
  ignore
    (List.fold_left
       (fun prev s ->
         check bool_ (s.Trace.name ^ " starts after predecessor") true
           (s.Trace.wall_start >= prev);
         s.Trace.wall_start)
       neg_infinity by_seq);
  (* counters come from the layer that owns them *)
  let span name = List.find (fun s -> s.Trace.name = name) spans in
  check bool_ "execute counts API calls" true
    (Trace.counter (span "execute") "api_calls" > 0);
  check bool_ "execute advances the simulated clock" true
    ((span "execute").Trace.sim_end > (span "execute").Trace.sim_start);
  check bool_ "plan counts creates" true
    (Trace.counter (span "plan") "creates" > 0);
  let expand = span "expand" in
  check bool_ "expand counts instances" true
    (Trace.counter expand "instances" > 0);
  check bool_ "validate meta-free run is clean" true
    (List.assoc_opt "error" (span "validate").Trace.meta = None)

(* A failing stage still leaves its span (flagged) in the trace. *)
let test_error_span_emitted () =
  let sink, spans = Trace.memory_sink () in
  let trace = Trace.create sink in
  (try
     Trace.with_span trace "boom" (fun () -> failwith "kaput")
   with Failure _ -> ());
  match spans () with
  | [ s ] ->
      check string_ "name" "boom" s.Trace.name;
      check bool_ "error meta" true
        (List.assoc_opt "error" s.Trace.meta <> None)
  | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans)

let test_counters_attribute_innermost () =
  let sink, spans = Trace.memory_sink () in
  let trace = Trace.create sink in
  Trace.with_span trace "outer" (fun () ->
      Trace.count trace "n" 1;
      Trace.with_span trace "inner" (fun () -> Trace.count trace "n" 10);
      Trace.count trace "n" 1);
  let span name = List.find (fun s -> s.Trace.name = name) (spans ()) in
  check int_ "inner got its own" 10 (Trace.counter (span "inner") "n");
  check int_ "outer unpolluted" 2 (Trace.counter (span "outer") "n")

let test_null_tracer_is_free () =
  (* counters and spans on the null tracer must be no-ops, not errors *)
  Trace.count Trace.null "n" 1;
  check int_ "null with_span passes value" 7
    (Trace.with_span Trace.null "x" (fun () -> 7));
  check bool_ "null is disabled" false (Trace.enabled Trace.null)

(* ------------------------------------------------------------------ *)
(* JSONL round-trip                                                    *)
(* ------------------------------------------------------------------ *)

let span_eq (a : Trace.span) (b : Trace.span) =
  a.Trace.name = b.Trace.name && a.Trace.seq = b.Trace.seq
  && a.Trace.depth = b.Trace.depth
  && a.Trace.sim_start = b.Trace.sim_start
  && a.Trace.sim_end = b.Trace.sim_end
  && a.Trace.wall_start = b.Trace.wall_start
  && a.Trace.wall_end = b.Trace.wall_end
  && Trace.counters a = Trace.counters b
  && List.sort compare a.Trace.meta = List.sort compare b.Trace.meta

let test_jsonl_roundtrip () =
  let t, spans = traced_lifecycle () in
  ignore (ok (Lifecycle.deploy t (Workload.web_tier ())));
  let spans = spans () in
  let path = Filename.temp_file "cloudless_trace" ".jsonl" in
  Trace.write_jsonl ~path spans;
  let back = Trace.read_jsonl ~path in
  Sys.remove path;
  check int_ "same count" (List.length spans) (List.length back);
  List.iter2
    (fun a b ->
      check bool_ (a.Trace.name ^ " round-trips exactly") true (span_eq a b))
    spans back

let test_cli_trace_flag () =
  let out = Buffer.create 256 and err = Buffer.create 256 in
  let io = { Cli.out = Buffer.add_string out; err = Buffer.add_string err } in
  let tf = Filename.temp_file "cloudless_trace" ".tf" in
  Io_util.write_file tf (Workload.web_tier ());
  let state = Filename.temp_file "cloudless_trace" ".cls" in
  Sys.remove state;
  let jsonl = Filename.temp_file "cloudless_trace" ".jsonl" in
  check int_ "apply succeeds" 0
    (Cli.apply ~io ~trace_path:jsonl ~file:tf ~state_path:state ());
  let spans = Trace.read_jsonl ~path:jsonl in
  Sys.remove jsonl;
  check bool_ "spans written" true (List.length spans > 0);
  let execute = List.find (fun s -> s.Trace.name = "execute") spans in
  check bool_ "api_calls counted" true (Trace.counter execute "api_calls" > 0);
  check bool_ "root span is the verb" true
    (List.exists (fun s -> s.Trace.name = "apply-cmd" && s.Trace.depth = 0) spans)

let suites =
  [
    ( "trace",
      [
        Alcotest.test_case "golden develop->apply sequence" `Quick
          test_golden_sequence;
        Alcotest.test_case "monotone timestamps & owned counters" `Quick
          test_monotone_and_counters;
        Alcotest.test_case "failing span still emitted" `Quick
          test_error_span_emitted;
        Alcotest.test_case "counters land on innermost span" `Quick
          test_counters_attribute_innermost;
        Alcotest.test_case "null tracer is a no-op" `Quick
          test_null_tracer_is_free;
        Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_roundtrip;
        Alcotest.test_case "cli --trace writes spans" `Quick test_cli_trace_flag;
      ] );
  ]
