(* E18 wave tests: the wave planner's slicing invariants (QCheck),
   the strict [wave =] sub-grammar of the scenario DSL, Wave_mark
   journal durability (roundtrip + cursor/restore), and a golden
   bad-change trace: canary gate trip -> wave rollback -> later waves
   halted, fleet left violation-free. *)

module Cloud = Cloudless_sim.Cloud
module Journal = Cloudless_state.Journal
module Fleet = Cloudless_controlplane.Fleet
module Shard = Cloudless_controlplane.Shard
module Scenario = Cloudless_controlplane.Scenario
module Rollout = Cloudless_controlplane.Rollout
module Change = Cloudless_wave.Change
module Planner = Cloudless_wave.Planner
module Wave = Cloudless_wave.Wave
module Rego_like = Cloudless_policy.Rego_like
module Cloud_rules = Cloudless_schema.Cloud_rules
module Err = Cloudless_error

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool
let string_ = Alcotest.string

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Planner slicing invariants                                          *)
(* ------------------------------------------------------------------ *)

let schedule_params = QCheck.(triple (int_range 1 5) (int_range 1 4) (int_range 0 40))

let prop_concat_reproduces_items =
  QCheck.Test.make ~count:300 ~name:"concat of waves = items, in order"
    schedule_params (fun (canary, growth, n) ->
      let items = List.init n (fun i -> i) in
      List.concat (Planner.waves ~canary ~growth items) = items)

let prop_no_empty_wave =
  QCheck.Test.make ~count:300 ~name:"no wave is empty" schedule_params
    (fun (canary, growth, n) ->
      let items = List.init n (fun i -> i) in
      List.for_all (fun w -> w <> []) (Planner.waves ~canary ~growth items))

let prop_geometric_schedule =
  QCheck.Test.make ~count:300
    ~name:"sizes follow canary*growth^k except the remainder"
    schedule_params (fun (canary, growth, n) ->
      let items = List.init n (fun i -> i) in
      let sizes = List.map List.length (Planner.waves ~canary ~growth items) in
      let k = List.length sizes in
      List.for_all2
        (fun i size ->
          let expected =
            canary * int_of_float (float_of_int growth ** float_of_int i)
          in
          if i < k - 1 then size = expected else size <= expected)
        (List.init k (fun i -> i))
        sizes)

let prop_wave_sizes_agree =
  QCheck.Test.make ~count:300 ~name:"wave_sizes matches the actual slicing"
    schedule_params (fun (canary, growth, n) ->
      let items = List.init n (fun i -> i) in
      Planner.wave_sizes ~canary ~growth n
      = List.map List.length (Planner.waves ~canary ~growth items))

let test_planner_rejects_degenerate () =
  check bool_ "canary 0 rejected" true
    (match Planner.waves ~canary:0 ~growth:2 [ 1 ] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check bool_ "growth 0 rejected" true
    (match Planner.waves ~canary:1 ~growth:0 [ 1 ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Scenario [wave =] sub-grammar                                       *)
(* ------------------------------------------------------------------ *)

let parse_err src =
  match Scenario.parse ~file:"t.scn" src with
  | (_ : Scenario.t) -> Alcotest.fail "parse accepted a malformed scenario"
  | exception Err.Error d -> d

let test_wave_grammar_ok () =
  let scn =
    Scenario.parse ~file:"t.scn"
      "tenants = 8\n\
       wave = start=600 attr=instance_type value=t3.micro\n\
       wave = start=900 kind=set_count count=4 canary=2 growth=3 \
       check=15 budget=50\n"
  in
  check int_ "two waves" 2 (List.length scn.Scenario.waves);
  (match scn.Scenario.waves with
  | [ a; b ] ->
      check bool_ "first wave start" true (a.Scenario.wstart = 600.);
      check int_ "default canary" 1 a.Scenario.wchange.Change.canary;
      check int_ "default growth" 2 a.Scenario.wchange.Change.growth;
      check bool_ "default check period" true (a.Scenario.wcheck = 60.);
      check int_ "second wave canary" 2 b.Scenario.wchange.Change.canary;
      check int_ "second wave growth" 3 b.Scenario.wchange.Change.growth;
      check bool_ "second wave check" true (b.Scenario.wcheck = 15.);
      check bool_ "budget carried" true
        (b.Scenario.wchange.Change.budget = Some 50.);
      check bool_ "located change name" true
        (contains ~sub:"t.scn:2" a.Scenario.wchange.Change.cname)
  | _ -> Alcotest.fail "waves out of order");
  let forbid =
    Scenario.parse ~file:"t.scn"
      "tenants = 2\nwave = start=10 attr=itype value=bad forbid=bad\n"
  in
  match forbid.Scenario.waves with
  | [ w ] -> check int_ "forbid compiles to one gate" 1
               (List.length w.Scenario.wchange.Change.gates)
  | _ -> Alcotest.fail "expected one wave"

let test_wave_grammar_errors () =
  let cases =
    [
      (* unknown sub-key, with the offending line located *)
      ("tenants = 2\nwave = start=1 attr=a value=v blast=9\n",
       "unknown wave key", 2);
      ("wave = start=1 kind=recolor\n", "unknown wave kind", 1);
      ("wave = attr=a value=v\n", "requires start", 1);
      ("wave = start=1 attr=a value=v canary=0\n", "canary must be >= 1", 1);
      ("wave = start=1 attr=a value=v growth=0\n", "growth must be >= 1", 1);
      ("wave = start=1 value=v\n", "requires attr", 1);
      ("wave = start=1 attr=a\n", "requires value", 1);
      ("wave = start=1 kind=set_count\n", "requires count", 1);
      (* kind-inapplicable keys are rejected, not ignored *)
      ("wave = start=1 attr=a value=v count=3\n", "only applies to kind=set_count", 1);
      ("wave = start=1 kind=set_count count=3 attr=a\n",
       "only apply to kind=set_attr", 1);
      ("wave = start=1 kind=set_count count=3 forbid=bad\n",
       "forbid= requires attr", 1);
      ("wave = start=abc attr=a value=v\n", "expects a number", 1);
      ("wave = start=1 attr=a value=v canary=x\n", "expects an integer", 1);
      ("wave = start=1 attr=a value=v nonsense\n", "k=v pairs", 1);
    ]
  in
  List.iter
    (fun (src, frag, line) ->
      let d = parse_err src in
      check string_ "code" "scenario-syntax" d.Err.Diagnostic.code;
      check bool_ "syntax stage" true
        (d.Err.Diagnostic.stage = Err.Diagnostic.Syntax);
      check bool_
        (Printf.sprintf "message %S mentions %S" d.Err.Diagnostic.message frag)
        true
        (contains ~sub:frag d.Err.Diagnostic.message);
      check bool_ "offending line located" true
        (contains ~sub:(Printf.sprintf "t.scn:%d:" line)
           d.Err.Diagnostic.message))
    cases

(* ------------------------------------------------------------------ *)
(* Wave_mark durability: roundtrip, cursor, restore                    *)
(* ------------------------------------------------------------------ *)

let mark wave wphase tenants wtime =
  Journal.Wave_mark { wave; wphase; tenants; wtime }

let test_wave_mark_roundtrip () =
  let entries =
    [
      mark 1 "started" [ "tenant0" ] 600.;
      mark 1 "committed" [ "tenant0" ] 660.;
      mark 2 "started" [ "tenant1"; "tenant2" ] 660.;
      mark 2 "rolled_back" [ "tenant1"; "tenant2" ] 720.;
      mark 0 "halted" [ "tenant3" ] 720.;
    ]
  in
  let text = Journal.to_string entries in
  check string_ "wave marks roundtrip byte-identically" text
    (Journal.to_string (Journal.of_string text))

let test_wave_cursor () =
  let resume_at entries =
    match Wave.cursor entries with
    | Wave.Resume_at k -> k
    | Wave.Finished p -> Alcotest.fail ("unexpected terminal " ^ p)
  in
  check int_ "empty journal starts from scratch" 0 (resume_at []);
  check int_ "started-but-uncommitted does not advance" 0
    (resume_at [ mark 1 "started" [ "t0" ] 1. ]);
  check int_ "commits advance the cursor past the last committed wave" 3
    (resume_at
       [
         mark 1 "started" [ "t0" ] 1.;
         mark 1 "committed" [ "t0" ] 2.;
         mark 2 "started" [ "t1" ] 2.;
         mark 2 "committed" [ "t1" ] 3.;
         mark 3 "started" [ "t2" ] 3.;
       ]);
  (match
     Wave.cursor
       [ mark 1 "committed" [ "t0" ] 1.; mark 2 "rolled_back" [ "t1" ] 2. ]
   with
  | Wave.Finished p -> check string_ "rollback is terminal" "rolled_back" p
  | Wave.Resume_at _ -> Alcotest.fail "rolled_back journal is not resumable");
  match Wave.cursor [ mark 0 "halted" [ "t1"; "t2" ] 2. ] with
  | Wave.Finished p -> check string_ "halt is terminal" "halted" p
  | Wave.Resume_at _ -> Alcotest.fail "halted journal is not resumable"

let small_change () =
  match
    Change.parse ~file:"<test>"
      {|
change "retype" {
  canary = 1
  growth = 2
  action "bump" {
    kind   = "set_attr"
    target = "aws_instance.*"
    attr   = "instance_type"
    value  = "t3.large"
  }
  gate "no_nano" {
    kind  = "attr_equals"
    rtype = "aws_instance"
    attr  = "instance_type"
    value = "t2.nano"
  }
}
|}
  with
  | [ c ] -> c
  | _ -> Alcotest.fail "expected one change block"

let test_wave_restore () =
  let tenants = [ "t0"; "t1"; "t2"; "t3" ] in
  let j = Journal.create () in
  let wv = Wave.create ~change:(small_change ()) ~tenants ~journal:j () in
  Wave.start wv 0 ~time:10.;
  Wave.commit wv 0 ~time:20.;
  Wave.start wv 1 ~time:20.;
  (* crash here: the canary committed, wave 1 in flight *)
  let entries = Journal.entries j in
  check int_ "cursor points at the first uncommitted wave" 1
    (match Wave.cursor entries with
    | Wave.Resume_at k -> k
    | Wave.Finished _ -> -1);
  let wv' =
    Wave.restore
      (Wave.create ~change:(small_change ()) ~tenants ())
      entries
  in
  (match Wave.next wv' with
  | Some w -> check int_ "resume re-runs the uncommitted wave" 1 w.Wave.index
  | None -> Alcotest.fail "restored machine has no next wave");
  check bool_ "committed tenants restored" true
    (Wave.committed_tenants wv' = [ "t0" ])

(* ------------------------------------------------------------------ *)
(* Golden bad-change trace on a live fleet                             *)
(* ------------------------------------------------------------------ *)

let scenario ~tenants ~shards =
  {
    Scenario.default with
    Scenario.tenants;
    shards;
    deployments_per_tenant = 1;
    resources = 6;
    requests_per_tenant = 1;
    drift_events = 0;
    policy_period = 0.;
    duration = 7200.;
  }

let build_fleet ~scn ~seed =
  let cloud =
    Cloud.create ~config:(Cloud_rules.config_with_checks ()) ~seed ()
  in
  let config = Scenario.service_config scn Shard.fleet_service in
  let fleet = ref (Fleet.create ~cloud ~shards:scn.Scenario.shards config) in
  for ti = 0 to scn.Scenario.tenants - 1 do
    let tenant = Printf.sprintf "tenant%d" ti in
    let dep =
      Fleet.add_deployment !fleet ~tenant ~dname:"d0"
        ~src:(Scenario.fleet_src scn ~wave:0)
    in
    ignore
      (Fleet.submit_request !fleet dep ~src:(Scenario.fleet_src scn ~wave:0)
        : [ `Accepted of int | `Deferred of int | `Rejected ])
  done;
  fleet

let violating_tenants fleet (change : Change.t) =
  List.filter
    (fun (dep : Shard.deployment) ->
      Rego_like.evaluate change.Change.gates
        (Shard.expand ~state:dep.Shard.state dep.Shard.config_src)
      <> [])
    (Fleet.deployments fleet)
  |> List.map (fun (d : Shard.deployment) -> d.Shard.tenant)

let bad_change () =
  match
    Change.parse ~file:"<test>"
      {|
change "bad" {
  canary = 1
  growth = 2
  action "bump" {
    kind   = "set_attr"
    target = "aws_instance.*"
    attr   = "instance_type"
    value  = "t2.nano"
  }
  gate "no_nano" {
    kind  = "attr_equals"
    rtype = "aws_instance"
    attr  = "instance_type"
    value = "t2.nano"
  }
}
|}
  with
  | [ c ] -> c
  | _ -> Alcotest.fail "expected one change block"

let test_bad_change_trace () =
  let scn = scenario ~tenants:4 ~shards:1 in
  let change = bad_change () in
  let fleet = build_fleet ~scn ~seed:42 in
  let journal = Journal.create () in
  let driver = Rollout.create ~journal ~check_period:30. ~change fleet () in
  Rollout.launch driver ~at:600.;
  Fleet.run !fleet ~until:7200.;
  (* gate trips at the canary boundary: exactly one tenant ever touched *)
  (match Rollout.outcome driver with
  | Some (Rollout.Rolled_back reasons) ->
      check bool_ "gate reason names the predicate" true
        (List.exists (contains ~sub:"no_nano") reasons)
  | other ->
      Alcotest.fail
        ("expected Rolled_back, got "
        ^
        match other with
        | None -> "still running"
        | Some o -> Rollout.outcome_to_string o))
  ;
  check int_ "blast radius = canary wave" 1
    (List.length (Rollout.touched_tenants driver));
  check int_ "no tenant left violating after rollback" 0
    (List.length (violating_tenants !fleet change));
  check bool_ "no wave ever committed" true
    (Rollout.committed_tenants driver = []);
  (* wave statuses: canary rolled back, every later wave halted *)
  (match Wave.waves (Rollout.wave_machine driver) with
  | first :: rest ->
      check bool_ "canary rolled back" true
        (first.Wave.status = Wave.Rolled_back);
      check bool_ "later waves halted" true
        (List.for_all (fun w -> w.Wave.status = Wave.Halted) rest);
      check bool_ "later waves exist" true (rest <> [])
  | [] -> Alcotest.fail "no waves planned");
  (* the durable record agrees: terminal rolled_back *)
  (match Wave.cursor (Journal.entries journal) with
  | Wave.Finished p -> check string_ "journal is terminal" "rolled_back" p
  | Wave.Resume_at _ -> Alcotest.fail "journal not terminal after rollback");
  (* the trace reads like the story above *)
  let log = String.concat "\n" (List.map snd (Rollout.events driver)) in
  check bool_ "trace mentions the gate failure" true
    (contains ~sub:"gate FAILED" log);
  check bool_ "trace mentions the halt" true
    (contains ~sub:"later waves halted" log)

let test_clean_change_converges () =
  let scn = scenario ~tenants:4 ~shards:1 in
  let change = small_change () in
  let fleet = build_fleet ~scn ~seed:42 in
  let driver = Rollout.create ~check_period:30. ~change fleet () in
  Rollout.launch driver ~at:600.;
  Fleet.run !fleet ~until:7200.;
  check bool_ "clean change converges" true (Rollout.converged driver);
  check int_ "every tenant committed" 4
    (List.length (Rollout.committed_tenants driver));
  check int_ "no rollbacks" 0 (Rollout.rollbacks driver)

(* ------------------------------------------------------------------ *)

let qtest = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "wave.planner",
      [
        qtest prop_concat_reproduces_items;
        qtest prop_no_empty_wave;
        qtest prop_geometric_schedule;
        qtest prop_wave_sizes_agree;
        Alcotest.test_case "degenerate schedules rejected" `Quick
          test_planner_rejects_degenerate;
      ] );
    ( "wave.scenario-grammar",
      [
        Alcotest.test_case "wave lines parse" `Quick test_wave_grammar_ok;
        Alcotest.test_case "malformed lines are located errors" `Quick
          test_wave_grammar_errors;
      ] );
    ( "wave.journal",
      [
        Alcotest.test_case "wave marks roundtrip" `Quick
          test_wave_mark_roundtrip;
        Alcotest.test_case "cursor semantics" `Quick test_wave_cursor;
        Alcotest.test_case "restore from a mid-rollout journal" `Quick
          test_wave_restore;
      ] );
    ( "wave.rollout",
      [
        Alcotest.test_case "bad change: canary trip, rollback, halt" `Quick
          test_bad_change_trace;
        Alcotest.test_case "clean change converges" `Quick
          test_clean_change_converges;
      ] );
  ]
