(* Aggregate test runner: each Test_* module exposes [suites]. *)

let () =
  Alcotest.run "cloudless"
    (Test_hcl.suites @ Test_hcl_eval.suites @ Test_sim.suites @ Test_pqueue.suites
     @ Test_deploy.suites @ Test_graph.suites @ Test_state.suites
     @ Test_schema_validate.suites @ Test_lock_rollback.suites @ Test_drift_debug.suites @ Test_policy.suites @ Test_synth.suites @ Test_lifecycle.suites @ Test_reconciler.suites @ Test_workload_props.suites @ Test_edsl.suites @ Test_edge_cases.suites @ Test_consistency.suites @ Test_errors.suites @ Test_trace.suites @ Test_crash.suites @ Test_controlplane.suites @ Test_fleet.suites @ Test_raw_speed.suites @ Test_resilience.suites @ Test_wave.suites)
