(* Tests for the dependency DAG: construction, topological order,
   levels, critical path, impact scope. *)

open Cloudless_hcl
module Dag = Cloudless_graph.Dag

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool
let string_ = Alcotest.string

let addr name = Addr.make ~rtype:"t_x" ~rname:name ()

(* a -> b -> d, a -> c -> d (diamond); payload = duration *)
let diamond () =
  let g = Dag.empty in
  let g = List.fold_left (fun g (n, d) -> Dag.add_node g (addr n) d) g
      [ ("a", 1.); ("b", 10.); ("c", 2.); ("d", 1.) ] in
  let g = Dag.add_edge g ~dependent:(addr "b") ~dependency:(addr "a") in
  let g = Dag.add_edge g ~dependent:(addr "c") ~dependency:(addr "a") in
  let g = Dag.add_edge g ~dependent:(addr "d") ~dependency:(addr "b") in
  let g = Dag.add_edge g ~dependent:(addr "d") ~dependency:(addr "c") in
  g

let names addrs = List.map (fun a -> a.Addr.rname) addrs

let test_topo_sort () =
  let order = names (Dag.topo_sort (diamond ())) in
  check string_ "a first" "a" (List.hd order);
  check string_ "d last" "d" (List.nth order 3);
  (* stable: b before c (insertion order) *)
  check (Alcotest.list string_) "full order" [ "a"; "b"; "c"; "d" ] order

let test_cycle_detection () =
  let g = diamond () in
  let g = Dag.add_edge g ~dependent:(addr "a") ~dependency:(addr "d") in
  check bool_ "cycle" true (Dag.has_cycle g);
  match Dag.topo_sort g with
  | exception Dag.Cycle _ -> ()
  | _ -> Alcotest.fail "expected Cycle"

let test_levels () =
  let ls = Dag.levels (diamond ()) in
  check int_ "3 levels" 3 (List.length ls);
  check (Alcotest.list string_) "middle level" [ "b"; "c" ] (names (List.nth ls 1));
  check int_ "depth" 3 (Dag.depth (diamond ()));
  check int_ "width" 2 (Dag.max_width (diamond ()))

let test_critical_path () =
  let g = diamond () in
  let duration a = Dag.payload g a in
  let total, path = Dag.critical_path g ~duration in
  check (Alcotest.float 1e-9) "1+10+1" 12. total;
  check (Alcotest.list string_) "path through b" [ "a"; "b"; "d" ] (names path)

let test_priorities () =
  let g = diamond () in
  let duration a = Dag.payload g a in
  let prio = Dag.priorities g ~duration in
  (* remaining longest path including self *)
  check (Alcotest.float 1e-9) "a = full path" 12. (prio (addr "a"));
  check (Alcotest.float 1e-9) "b on critical path" 11. (prio (addr "b"));
  check (Alcotest.float 1e-9) "c slack" 3. (prio (addr "c"));
  check bool_ "b more critical than c" true (prio (addr "b") > prio (addr "c"))

let test_ancestors_descendants () =
  let g = diamond () in
  let seeds = Addr.Set.singleton (addr "b") in
  check int_ "ancestors of b = {a,b}" 2 (Addr.Set.cardinal (Dag.ancestors g seeds));
  check int_ "descendants of b = {b,d}" 2
    (Addr.Set.cardinal (Dag.descendants g seeds))

let test_impact_scope () =
  let g = diamond () in
  (* editing c impacts c, d (dependents) + their deps a, b as context *)
  let scope = Dag.impact_scope g (Addr.Set.singleton (addr "c")) in
  check bool_ "c in scope" true (Addr.Set.mem (addr "c") scope);
  check bool_ "d in scope" true (Addr.Set.mem (addr "d") scope);
  check bool_ "a in scope (context dep of c)" true (Addr.Set.mem (addr "a") scope)

let test_impact_scope_small_for_leaf () =
  (* editing the sink d impacts only d + its direct deps *)
  let g = diamond () in
  let scope = Dag.impact_scope g (Addr.Set.singleton (addr "d")) in
  check int_ "d, b, c" 3 (Addr.Set.cardinal scope)

let test_restrict () =
  let g = diamond () in
  let keep = Addr.Set.of_list [ addr "a"; addr "b" ] in
  let g' = Dag.restrict g keep in
  check int_ "2 nodes" 2 (Dag.size g');
  check int_ "1 edge" 1 (Dag.edge_count g')

let test_of_instances () =
  let cfg =
    Config.parse ~file:"t"
      {|
resource "aws_vpc" "v" { cidr_block = "10.0.0.0/16" }
resource "aws_subnet" "s" {
  count  = 3
  vpc_id = aws_vpc.v.id
}
resource "aws_instance" "i" {
  ami           = "a"
  instance_type = "t"
  subnet_id     = aws_subnet.s[0].id
}
|}
  in
  let instances = (Eval.expand cfg).Eval.instances in
  let g = Dag.of_instances instances in
  check int_ "5 nodes" 5 (Dag.size g);
  (* each subnet depends on the vpc *)
  let subnet0 = Addr.make ~rtype:"aws_subnet" ~rname:"s" ~key:(Addr.Kint 0) () in
  check int_ "subnet deps" 1 (Addr.Set.cardinal (Dag.deps_of g subnet0));
  (* the instance depends on the subnets (base-resolved) *)
  let inst = Addr.make ~rtype:"aws_instance" ~rname:"i" () in
  check bool_ "instance deps nonempty" true
    (not (Addr.Set.is_empty (Dag.deps_of g inst)))

let test_to_dot () =
  let dot = Dag.to_dot (diamond ()) in
  check bool_ "digraph" true (Test_fixtures.contains_substring ~sub:"digraph" dot);
  check bool_ "edge" true (Test_fixtures.contains_substring ~sub:"->" dot)

(* ------------------------------------------------------------------ *)
(* Equivalence with the seed's list-scan reference traversals          *)
(* ------------------------------------------------------------------ *)

(* Node i gets a keyed address with base "n(i/3)", so three consecutive
   nodes share a base — exercises base-granularity resolution too. *)
let knode i =
  Addr.make ~rtype:"t_x"
    ~rname:(Printf.sprintf "n%d" (i / 3))
    ~key:(Addr.Kint (i mod 3)) ()

(* Random DAG: n nodes in insertion order; each edge (a, b) is oriented
   from the higher index to the lower, so the graph is acyclic by
   construction. *)
let build_random n pairs =
  let g = ref Dag.empty in
  for i = 0 to n - 1 do
    g := Dag.add_node !g (knode i) i
  done;
  List.iter
    (fun (a, b) ->
      let a = a mod n and b = b mod n in
      if a <> b then
        g :=
          Dag.add_edge !g
            ~dependent:(knode (max a b))
            ~dependency:(knode (min a b)))
    pairs;
  !g

let random_dag_arb =
  QCheck.(
    pair (int_range 1 30)
      (list_of_size Gen.(0 -- 60) (pair small_nat small_nat)))

let prop_kahn_matches_reference =
  QCheck.Test.make ~count:200 ~name:"Kahn topo/levels = reference on random DAGs"
    random_dag_arb
    (fun (n, pairs) ->
      let g = build_random n pairs in
      Dag.topo_sort g = Dag.Reference.topo_sort g
      && Dag.levels g = Dag.Reference.levels g
      && Dag.depth g = List.length (Dag.Reference.levels g))

let prop_impact_matches_reference =
  QCheck.Test.make ~count:100
    ~name:"plan impact scope = reference (exact + base edits)"
    QCheck.(pair random_dag_arb small_nat)
    (fun ((n, pairs), e) ->
      let g = build_random n pairs in
      let i = e mod n in
      (* the base address (no key) is not a graph node, so scoping must
         fan it out to every instance sharing the base *)
      let base =
        Addr.make ~rtype:"t_x" ~rname:(Printf.sprintf "n%d" (i / 3)) ()
      in
      let edited = [ knode i; base ] in
      let module Plan = Cloudless_plan.Plan in
      Addr.Set.equal
        (Plan.impact_scope ~graph:g ~edited)
        (Plan.Reference.impact_scope ~graph:g ~edited))

let test_memo_invalidation () =
  let g = diamond () in
  check (Alcotest.list string_) "initial" [ "a"; "b"; "c"; "d" ]
    (names (Dag.topo_sort g));
  (* adding an edge after a computed order must invalidate the cache *)
  let g = Dag.add_edge g ~dependent:(addr "b") ~dependency:(addr "c") in
  check (Alcotest.list string_) "after new edge" [ "a"; "c"; "b"; "d" ]
    (names (Dag.topo_sort g));
  check (Alcotest.list string_) "reference agrees"
    (names (Dag.Reference.topo_sort g))
    (names (Dag.topo_sort g));
  (* re-payloading an existing node keeps the topology *)
  let g = Dag.add_node g (addr "a") 99. in
  check (Alcotest.list string_) "after re-payload" [ "a"; "c"; "b"; "d" ]
    (names (Dag.topo_sort g))

(* Property: impact scope of a random seed set is monotone (adding
   seeds never shrinks it) and contains the seeds. *)
let prop_impact_monotone =
  QCheck.Test.make ~count:50 ~name:"impact scope monotone in seeds"
    QCheck.(pair (int_range 0 3) (int_range 0 3))
    (fun (i, j) ->
      let g = diamond () in
      let all = [| "a"; "b"; "c"; "d" |] in
      let s1 = Addr.Set.singleton (addr all.(i)) in
      let s2 = Addr.Set.add (addr all.(j)) s1 in
      let sc1 = Dag.impact_scope g s1 and sc2 = Dag.impact_scope g s2 in
      Addr.Set.subset sc1 sc2 && Addr.Set.mem (addr all.(i)) sc1)

let qtest = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "graph.dag",
      [
        Alcotest.test_case "topo sort" `Quick test_topo_sort;
        Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
        Alcotest.test_case "levels" `Quick test_levels;
        Alcotest.test_case "critical path" `Quick test_critical_path;
        Alcotest.test_case "priorities" `Quick test_priorities;
        Alcotest.test_case "ancestors/descendants" `Quick test_ancestors_descendants;
        Alcotest.test_case "impact scope" `Quick test_impact_scope;
        Alcotest.test_case "impact scope leaf" `Quick test_impact_scope_small_for_leaf;
        Alcotest.test_case "restrict" `Quick test_restrict;
        Alcotest.test_case "of_instances" `Quick test_of_instances;
        Alcotest.test_case "to_dot" `Quick test_to_dot;
        Alcotest.test_case "memo invalidation" `Quick test_memo_invalidation;
        qtest prop_impact_monotone;
        qtest prop_kahn_matches_reference;
        qtest prop_impact_matches_reference;
      ] );
  ]
