(* The unified error channel, end to end: malformed HCL, unknown
   references, dependency cycles and quota-exceeded deploys must all
   surface as located Diagnostic.t values — through the Lifecycle
   facade and through the in-process CLI handlers (asserting the
   exit-code convention: 1 = user/config error, 2 = deploy failure).
   No raw exception may escape either path. *)

module Lifecycle = Cloudless.Lifecycle
module Cli = Cloudless.Cli
module Io_util = Cloudless.Io_util
module Boundary = Cloudless.Boundary
module Diagnostic = Cloudless_validate.Diagnostic
module Loc = Cloudless_hcl.Loc
module Dag = Cloudless_graph.Dag
module Cloud = Cloudless_sim.Cloud

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let string_ = Alcotest.string

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let malformed_hcl = "resource \"aws_vpc\" \"main\" {\n  cidr_block = \n"

let unknown_ref_hcl =
  {|
resource "aws_instance" "web" {
  region = "us-east-1"
  subnet = aws_subnet.missing.id
}
|}

let cycle_hcl =
  {|
resource "aws_security_group" "a" {
  region = "us-east-1"
  name   = aws_security_group.b.id
}

resource "aws_security_group" "b" {
  region = "us-east-1"
  name   = aws_security_group.a.id
}
|}

let quota_hcl =
  {|
resource "aws_eip" "ip" {
  count  = 5
  region = "us-east-1"
}
|}

let quota_cloud_config =
  Cloudless_schema.Cloud_rules.config_with_checks
    ~base:{ Cloud.default_config with Cloud.quotas = [ ("aws_eip", 2) ] }
    ()

(* A temp file containing [contents]; cleaned up by the runner's tmpdir. *)
let temp_file ?(suffix = ".tf") contents =
  let path = Filename.temp_file "cloudless_err" suffix in
  Io_util.write_file path contents;
  path

let temp_path suffix =
  let path = Filename.temp_file "cloudless_err" suffix in
  Sys.remove path;
  path

(* Capture handler output so test logs stay readable. *)
let quiet_io () =
  let out = Buffer.create 256 and err = Buffer.create 256 in
  ( { Cli.out = Buffer.add_string out; err = Buffer.add_string err },
    fun () -> (Buffer.contents out, Buffer.contents err) )

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Through the Lifecycle facade                                        *)
(* ------------------------------------------------------------------ *)

let test_lifecycle_malformed () =
  let t = Lifecycle.create () in
  match Lifecycle.develop t malformed_hcl with
  | Ok _ -> Alcotest.fail "malformed HCL must not develop"
  | Error e -> (
      match Lifecycle.error_diagnostics e with
      | [] -> Alcotest.fail "expected at least one diagnostic"
      | d :: _ ->
          check bool_ "syntax stage" true (d.Diagnostic.stage = Diagnostic.Syntax);
          check bool_ "located" false (Loc.is_dummy d.Diagnostic.span);
          check bool_ "renders" true
            (contains ~sub:"syntax" (Diagnostic.to_string d)))

let test_lifecycle_unknown_ref () =
  let t = Lifecycle.create () in
  match Lifecycle.develop t unknown_ref_hcl with
  | Ok _ -> Alcotest.fail "unknown reference must not develop"
  | Error (Lifecycle.Invalid_config ds) ->
      check bool_ "has diagnostics" true (ds <> []);
      let d = List.hd ds in
      check bool_ "references stage" true
        (d.Diagnostic.stage = Diagnostic.References);
      check bool_ "located" false (Loc.is_dummy d.Diagnostic.span);
      check bool_ "line points into the block" true (Loc.line d.Diagnostic.span >= 2)
  | Error e -> Alcotest.failf "wrong error: %s" (Lifecycle.error_to_string e)

(* mutual references are caught as early as possible: the reference
   stage of validation reports the cycle with a source span, so the
   config never reaches the planner *)
let test_lifecycle_cycle () =
  let t = Lifecycle.create () in
  match Lifecycle.develop t cycle_hcl with
  | Ok _ -> Alcotest.fail "cyclic dependencies must not develop"
  | Error (Lifecycle.Invalid_config ds) ->
      let d = List.hd ds in
      check bool_ "references stage" true
        (d.Diagnostic.stage = Diagnostic.References);
      check bool_ "located" false (Loc.is_dummy d.Diagnostic.span);
      check bool_ "names the cycle" true
        (contains ~sub:"dependency cycle" d.Diagnostic.message)
  | Error e -> Alcotest.failf "wrong error: %s" (Lifecycle.error_to_string e)

(* a cycle that only materializes in the graph layer (e.g. mined
   dependencies) surfaces through the boundary as a located,
   addressed diagnostic *)
let test_boundary_dag_cycle () =
  let addr = Option.get (Cloudless_hcl.Addr.of_string "aws_vpc.a") in
  match
    Boundary.protect (fun () -> raise (Dag.Cycle [ addr ]))
  with
  | Ok _ -> Alcotest.fail "cycle must become an error"
  | Error d ->
      check string_ "code" "dependency-cycle" d.Diagnostic.code;
      check bool_ "plan stage" true (d.Diagnostic.stage = Diagnostic.Plan_stage);
      check bool_ "addressed" true (d.Diagnostic.addr = Some addr)

let test_lifecycle_quota () =
  let t = Lifecycle.create ~cloud_config:quota_cloud_config () in
  match Lifecycle.deploy t quota_hcl with
  | Ok _ -> Alcotest.fail "quota-exceeded deploy must fail"
  | Error (Lifecycle.Deploy_failed _ as e) ->
      let ds = Lifecycle.error_diagnostics e in
      check bool_ "per-failure diagnostics" true (List.length ds > 0);
      List.iter
        (fun d ->
          check bool_ "deploy stage" true (d.Diagnostic.stage = Diagnostic.Deploy);
          check bool_ "addressed" true (d.Diagnostic.addr <> None);
          check bool_ "mentions quota" true
            (contains ~sub:"quota" (Diagnostic.to_string d)))
        ds
  | Error e -> Alcotest.failf "wrong error: %s" (Lifecycle.error_to_string e)

(* ------------------------------------------------------------------ *)
(* Through the CLI handlers                                            *)
(* ------------------------------------------------------------------ *)

let test_cli_malformed () =
  let io, dump = quiet_io () in
  let file = temp_file malformed_hcl in
  let code = Cli.apply ~io ~file ~state_path:(temp_path ".cls") () in
  check int_ "config error exits 1" 1 code;
  let _, err = dump () in
  check bool_ "stderr is a rendered diagnostic" true
    (contains ~sub:"error[syntax/" err);
  check bool_ "stderr carries the location" true (contains ~sub:".tf:" err)

let test_cli_validate_exit_code () =
  let io, _ = quiet_io () in
  let file = temp_file unknown_ref_hcl in
  check int_ "validate exit 1" 1
    (Cli.validate ~io ~file ~state_path:(temp_path ".cls") ());
  let io, _ = quiet_io () in
  let good = temp_file (Cloudless_workload.Workload.web_tier ()) in
  check int_ "validate exit 0" 0
    (Cli.validate ~io ~file:good ~state_path:(temp_path ".cls") ())

let test_cli_cycle () =
  let io, dump = quiet_io () in
  let file = temp_file cycle_hcl in
  let code = Cli.apply ~io ~file ~state_path:(temp_path ".cls") () in
  check int_ "cycle exits 1" 1 code;
  let _, err = dump () in
  check bool_ "names the cycle" true (contains ~sub:"dependency cycle" err);
  check bool_ "rendered via Diagnostic" true (contains ~sub:"error[" err)

let test_cli_quota () =
  let io, dump = quiet_io () in
  let file = temp_file quota_hcl in
  let code =
    Cli.apply ~io ~cloud_config:quota_cloud_config ~file
      ~state_path:(temp_path ".cls") ()
  in
  check int_ "deploy failure exits 2" 2 code;
  let out, _ = dump () in
  check bool_ "failure is reported" true (contains ~sub:"FAILED" out);
  check bool_ "mentions quota" true (contains ~sub:"quota" out)

let test_cli_corrupt_state () =
  let io, dump = quiet_io () in
  let file = temp_file "resource \"aws_vpc\" \"v\" { region = \"us-east-1\" }\n" in
  let state_path = temp_file ~suffix:".cls" "resource \"half\" {" in
  let code = Cli.plan ~io ~file ~state_path () in
  check int_ "corrupt state exits 1" 1 code;
  let _, err = dump () in
  check bool_ "rendered via Diagnostic" true (contains ~sub:"error[" err)

(* Boundary.protect must pass unknown exceptions through untouched:
   they are bugs, and swallowing them would hide the backtrace. *)
let test_boundary_passthrough () =
  (match Boundary.protect (fun () -> 41 + 1) with
  | Ok n -> check int_ "ok passes through" 42 n
  | Error d -> Alcotest.failf "unexpected error: %s" (Diagnostic.to_string d));
  match Boundary.protect (fun () -> raise Exit) with
  | exception Exit -> ()
  | Ok _ | Error _ -> Alcotest.fail "foreign exception must propagate"

let suites =
  [
    ( "errors",
      [
        Alcotest.test_case "lifecycle: malformed HCL" `Quick
          test_lifecycle_malformed;
        Alcotest.test_case "lifecycle: unknown reference" `Quick
          test_lifecycle_unknown_ref;
        Alcotest.test_case "lifecycle: dependency cycle" `Quick
          test_lifecycle_cycle;
        Alcotest.test_case "boundary: dag cycle to diagnostic" `Quick
          test_boundary_dag_cycle;
        Alcotest.test_case "lifecycle: quota exceeded" `Quick
          test_lifecycle_quota;
        Alcotest.test_case "cli: malformed HCL exits 1" `Quick test_cli_malformed;
        Alcotest.test_case "cli: validate exit codes" `Quick
          test_cli_validate_exit_code;
        Alcotest.test_case "cli: dependency cycle exits 1" `Quick test_cli_cycle;
        Alcotest.test_case "cli: quota deploy exits 2" `Quick test_cli_quota;
        Alcotest.test_case "cli: corrupt state exits 1" `Quick
          test_cli_corrupt_state;
        Alcotest.test_case "boundary: foreign exceptions propagate" `Quick
          test_boundary_passthrough;
      ] );
  ]
