(* End-to-end deployment tests: expand -> plan -> apply against the
   simulated cloud, for both the baseline and cloudless engines. *)

open Cloudless_hcl
module Cloud = Cloudless_sim.Cloud
module State = Cloudless_state.State
module Plan = Cloudless_plan.Plan
module Executor = Cloudless_deploy.Executor
module Dag = Cloudless_graph.Dag
module Cloud_rules = Cloudless_schema.Cloud_rules
module Smap = Value.Smap

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool
let string_ = Alcotest.string

let data_resolver ~rtype ~name ~args:_ =
  match (rtype, name) with
  | "aws_region", _ -> Some (Smap.singleton "name" (Value.Vstring "us-east-1"))
  | _ -> None

let env = { Eval.default_env with Eval.data_resolver }

let expand_src src =
  (Eval.expand ~env (Config.parse ~file:"test.tf" src)).Eval.instances

let fresh_cloud ?(seed = 42) ?config () =
  let config =
    match config with
    | Some c -> c
    | None -> Cloud_rules.config_with_checks ()
  in
  Cloud.create ~config ~seed ()

let deploy ?(engine = Executor.baseline_config) ?(state = State.empty) cloud src =
  let instances = expand_src src in
  let plan = Plan.make ~state instances in
  Executor.apply cloud ~config:engine ~state ~plan ()

let web_tier =
  {|
resource "aws_vpc" "main" {
  cidr_block = "10.0.0.0/16"
  region     = "us-east-1"
}
resource "aws_subnet" "s" {
  count      = 2
  vpc_id     = aws_vpc.main.id
  cidr_block = cidrsubnet(aws_vpc.main.cidr_block, 8, count.index)
  region     = "us-east-1"
}
resource "aws_instance" "web" {
  count         = 2
  ami           = "ami-123"
  instance_type = "t3.small"
  subnet_id     = aws_subnet.s[count.index].id
  region        = "us-east-1"
}
|}

let test_deploy_web_tier () =
  let cloud = fresh_cloud () in
  let report = deploy cloud web_tier in
  check bool_ "no failures" true (Executor.succeeded report);
  check int_ "5 applied" 5 (List.length report.Executor.applied);
  check int_ "5 in state" 5 (State.size report.Executor.state);
  check int_ "5 in cloud" 5 (Cloud.resource_count cloud);
  (* subnet's vpc_id must hold the real cloud id, not an unknown *)
  let subnet =
    Option.get
      (State.find_opt report.Executor.state
         (Addr.make ~rtype:"aws_subnet" ~rname:"s" ~key:(Addr.Kint 0) ()))
  in
  let vpc =
    Option.get
      (State.find_opt report.Executor.state
         (Addr.make ~rtype:"aws_vpc" ~rname:"main" ()))
  in
  check string_ "reference resolved to cloud id"
    vpc.State.cloud_id
    (Value.to_string (Smap.find "vpc_id" subnet.State.attrs))

let test_deploy_respects_dependency_order () =
  let cloud = fresh_cloud () in
  let report = deploy cloud web_tier in
  check bool_ "ok" true (Executor.succeeded report);
  let log = Cloudless_sim.Activity_log.all (Cloud.log cloud) in
  let create_times =
    List.filter_map
      (fun (e : Cloudless_sim.Activity_log.entry) ->
        match e.Cloudless_sim.Activity_log.op with
        | Cloudless_sim.Activity_log.Log_create ->
            Some (e.Cloudless_sim.Activity_log.rtype, e.Cloudless_sim.Activity_log.time)
        | _ -> None)
      log
  in
  let time_of ty =
    List.filter_map (fun (t, tm) -> if t = ty then Some tm else None) create_times
  in
  let vpc_done = List.hd (time_of "aws_vpc") in
  List.iter
    (fun subnet_done -> check bool_ "vpc before subnet" true (vpc_done < subnet_done))
    (time_of "aws_subnet")

let test_second_apply_is_noop () =
  let cloud = fresh_cloud () in
  let report1 = deploy cloud web_tier in
  let instances = expand_src web_tier in
  (* re-plan against the resulting state: everything is a no-op *)
  let plan2 = Plan.make ~state:report1.Executor.state instances in
  check bool_ "empty plan" true (Plan.is_empty plan2)

let test_update_plan_and_apply () =
  let cloud = fresh_cloud () in
  let report1 = deploy cloud web_tier in
  let updated = Test_fixtures.replace_substring web_tier ~sub:"t3.small" ~by:"t3.large" in
  let instances = expand_src updated in
  let plan = Plan.make ~state:report1.Executor.state instances in
  let s = Plan.summarize plan in
  check int_ "two updates (both instances)" 2 s.Plan.to_update;
  check int_ "no creates" 0 s.Plan.to_create;
  let report2 =
    Executor.apply cloud ~config:Executor.baseline_config
      ~state:report1.Executor.state ~plan ()
  in
  check bool_ "update applied" true (Executor.succeeded report2)

let test_replace_on_force_new () =
  let cloud = fresh_cloud () in
  let report1 = deploy cloud web_tier in
  (* cidr_block on aws_vpc is force_new *)
  let updated = Test_fixtures.replace_substring web_tier ~sub:"10.0.0.0/16" ~by:"10.1.0.0/16" in
  let instances = expand_src updated in
  let plan = Plan.make ~state:report1.Executor.state instances in
  let s = Plan.summarize plan in
  check bool_ "vpc replaced" true (s.Plan.to_replace >= 1)

let test_delete_orphans () =
  let cloud = fresh_cloud () in
  let report1 = deploy cloud web_tier in
  (* new config without the instances *)
  let trimmed =
    {|
resource "aws_vpc" "main" {
  cidr_block = "10.0.0.0/16"
  region     = "us-east-1"
}
resource "aws_subnet" "s" {
  count      = 2
  vpc_id     = aws_vpc.main.id
  cidr_block = cidrsubnet(aws_vpc.main.cidr_block, 8, count.index)
  region     = "us-east-1"
}
|}
  in
  let instances = expand_src trimmed in
  let plan = Plan.make ~state:report1.Executor.state instances in
  let s = Plan.summarize plan in
  check int_ "two deletes" 2 s.Plan.to_delete;
  let report2 =
    Executor.apply cloud ~config:Executor.baseline_config
      ~state:report1.Executor.state ~plan ()
  in
  check bool_ "deletes applied" true (Executor.succeeded report2);
  check int_ "3 resources left" 3 (Cloud.resource_count cloud)

let test_delete_order_reversed () =
  (* destroying everything must delete dependents before dependencies *)
  let cloud = fresh_cloud () in
  let report1 = deploy cloud web_tier in
  let plan = Plan.make ~state:report1.Executor.state [] in
  check int_ "5 deletes" 5 (Plan.summarize plan).Plan.to_delete;
  let report2 =
    Executor.apply cloud ~config:Executor.baseline_config
      ~state:report1.Executor.state ~plan ()
  in
  check bool_ "destroy ok" true (Executor.succeeded report2);
  check int_ "cloud empty" 0 (Cloud.resource_count cloud);
  check int_ "state empty" 0 (State.size report2.Executor.state)

let test_cloudless_engine_also_correct () =
  let cloud = fresh_cloud () in
  let report = deploy ~engine:Executor.cloudless_config cloud web_tier in
  check bool_ "ok" true (Executor.succeeded report);
  check int_ "5 applied" 5 (List.length report.Executor.applied)

let test_cloudless_faster_on_wide_graph () =
  (* 30 independent slow-ish resources: parallelism cap 10 hurts the
     baseline; the cloudless engine runs them all at once *)
  let src =
    {|
resource "aws_instance" "w" {
  count         = 30
  ami           = "ami-1"
  instance_type = "t3.small"
  region        = "us-east-1"
}
|}
  in
  let cloud_a = fresh_cloud () in
  let r_base = deploy ~engine:Executor.baseline_config cloud_a src in
  let cloud_b = fresh_cloud () in
  let r_cl = deploy ~engine:Executor.cloudless_config cloud_b src in
  check bool_ "both ok" true (Executor.succeeded r_base && Executor.succeeded r_cl);
  check bool_
    (Printf.sprintf "cloudless (%.0fs) < baseline (%.0fs)"
       r_cl.Executor.makespan r_base.Executor.makespan)
    true
    (r_cl.Executor.makespan < r_base.Executor.makespan)

let test_semantic_check_fails_deploy () =
  (* VM referencing a NIC in another region: passes IaC syntax, fails in
     the cloud with the opaque message (§3.2/§3.5 scenario) *)
  let src =
    {|
resource "aws_network_interface" "nic" {
  name   = "nic1"
  region = "us-west-2"
}
resource "aws_virtual_machine" "vm" {
  name    = "vm1"
  nic_ids = [aws_network_interface.nic.id]
  region  = "us-east-1"
}
|}
  in
  let cloud = fresh_cloud () in
  let report = deploy cloud src in
  check int_ "one failure" 1 (List.length report.Executor.failed);
  let f = List.hd report.Executor.failed in
  check bool_ "opaque NIC message" true
    (Test_fixtures.contains_substring ~sub:"NIC" f.Executor.reason);
  (* NIC itself deployed fine *)
  check int_ "nic applied" 1 (List.length report.Executor.applied)

let test_failed_dependency_skips_dependents () =
  let config =
    Cloud_rules.config_with_checks
      ~base:
        {
          Cloud.default_config with
          Cloud.failure =
            Cloudless_sim.Failure.make ~permanent:[ ("aws_vpc", "denied") ] ();
        }
      ()
  in
  let cloud = fresh_cloud ~config () in
  let report = deploy cloud web_tier in
  check int_ "vpc failed" 1 (List.length report.Executor.failed);
  check int_ "subnets+instances skipped" 4 (List.length report.Executor.skipped)

let test_transient_failures_are_retried () =
  let config =
    Cloud_rules.config_with_checks
      ~base:
        {
          Cloud.default_config with
          Cloud.failure = Cloudless_sim.Failure.make ~transient_prob:0.3 ();
        }
      ()
  in
  let cloud = fresh_cloud ~config () in
  let report = deploy ~engine:Executor.cloudless_config cloud web_tier in
  check bool_ "eventually succeeds" true (Executor.succeeded report);
  check bool_ "retries happened" true (report.Executor.retries > 0)

let test_refresh_reads_state () =
  let cloud = fresh_cloud () in
  let report1 = deploy cloud web_tier in
  (* re-apply with baseline (full refresh): 5 reads *)
  let instances = expand_src web_tier in
  let plan = Plan.make ~state:report1.Executor.state instances in
  let report2 =
    Executor.apply cloud ~config:Executor.baseline_config
      ~state:report1.Executor.state ~plan ()
  in
  check int_ "full refresh reads all 5" 5 report2.Executor.refresh_reads

let test_deterministic_deploys () =
  let run () =
    let cloud = fresh_cloud ~seed:7 () in
    let r = deploy cloud web_tier in
    r.Executor.makespan
  in
  check (Alcotest.float 1e-9) "same seed, same makespan" (run ()) (run ())

let test_create_before_destroy () =
  (* with the lifecycle flag, the replacement VPC comes up before the
     old one is destroyed: the cloud briefly holds both, and the log
     shows create-before-delete *)
  let src cidr cbd =
    Printf.sprintf
      {|
resource "aws_vpc" "main" {
  cidr_block = "%s"
  region     = "us-east-1"
  lifecycle {
    create_before_destroy = %b
  }
}
|}
      cidr cbd
  in
  let order_of cbd =
    let cloud = fresh_cloud () in
    let report1 = deploy cloud (src "10.0.0.0/16" cbd) in
    assert (Executor.succeeded report1);
    (* force replacement: cidr_block is force_new *)
    let instances = expand_src (src "10.9.0.0/16" cbd) in
    let plan = Plan.make ~state:report1.Executor.state instances in
    check bool_ "replace planned" true ((Plan.summarize plan).Plan.to_replace = 1);
    let report2 =
      Executor.apply cloud ~config:Executor.cloudless_config
        ~state:report1.Executor.state ~plan ()
    in
    check bool_ "replace ok" true (Executor.succeeded report2);
    check int_ "one vpc afterwards" 1 (Cloud.resource_count cloud);
    (* order of the replacement ops in the activity log *)
    Cloudless_sim.Activity_log.all (Cloud.log cloud)
    |> List.filter_map (fun (e : Cloudless_sim.Activity_log.entry) ->
           match e.Cloudless_sim.Activity_log.op with
           | Cloudless_sim.Activity_log.Log_create -> Some "create"
           | Cloudless_sim.Activity_log.Log_delete -> Some "delete"
           | _ -> None)
    |> List.tl (* drop the initial create *)
  in
  check (Alcotest.list string_) "cbd: create then delete"
    [ "create"; "delete" ] (order_of true);
  check (Alcotest.list string_) "default: delete then create"
    [ "delete"; "create" ] (order_of false)

let test_prevent_destroy_blocks_replace () =
  let src cidr =
    Printf.sprintf
      {|
resource "aws_vpc" "main" {
  cidr_block = "%s"
  region     = "us-east-1"
  lifecycle {
    prevent_destroy = true
  }
}
|}
      cidr
  in
  let cloud = fresh_cloud () in
  let report1 = deploy cloud (src "10.0.0.0/16") in
  assert (Executor.succeeded report1);
  (* a force-new change on a guarded resource is rejected at plan time *)
  let instances = expand_src (src "10.7.0.0/16") in
  (match Plan.make ~state:report1.Executor.state instances with
  | exception Plan.Prevented (addr, reason) ->
      check string_ "guarded resource" "aws_vpc.main" (Addr.to_string addr);
      check bool_ "reason names the attribute" true
        (Test_fixtures.contains_substring ~sub:"cidr_block" reason)
  | _ -> Alcotest.fail "expected Plan.Prevented");
  (* in-place updates remain allowed *)
  let updated = expand_src (Test_fixtures.replace_substring (src "10.0.0.0/16")
    ~sub:"region     = \"us-east-1\"" ~by:"region     = \"us-east-1\"\n  enable_dns = true") in
  let plan = Plan.make ~state:report1.Executor.state updated in
  check int_ "update allowed" 1 (Plan.summarize plan).Plan.to_update

(* ------------------------------------------------------------------ *)
(* Scheduler determinism (E11 guard)                                   *)
(* ------------------------------------------------------------------ *)

(* Golden values recorded from the seed's list-based scheduler: the
   heap ready set must reproduce the exact makespan and apply order
   (identical tie-breaking), or E1/E2/E10 tables silently shift. *)
let test_seed_golden_makespans () =
  let golden =
    [
      ( Cloudless_workload.Workload.web_tier (),
        Executor.cloudless_config,
        471.87722419265299,
        Some
          [
            "aws_vpc.main"; "aws_subnet.app[0]"; "aws_security_group.web";
            "aws_subnet.app[1]"; "aws_security_group_rule.https";
            "aws_lb_target_group.tg"; "aws_db_subnet_group.db";
            "aws_instance.web[0]"; "aws_instance.web[1]";
            "aws_instance.web[2]"; "aws_instance.web[3]"; "aws_lb.front";
            "aws_lb_listener.https"; "aws_db_instance.db";
          ] );
      ( Cloudless_workload.Workload.web_tier (),
        Executor.baseline_config,
        471.7147692600555,
        None );
      ( Cloudless_workload.Workload.microservices ~services:4 (),
        Executor.cloudless_config,
        57.597893395300538,
        None );
      ( Cloudless_workload.Workload.layered ~width:4 ~depth:3 (),
        Executor.cloudless_config,
        276.02576543473987,
        None );
    ]
  in
  List.iter
    (fun (src, engine, makespan, applied) ->
      let cloud = fresh_cloud ~seed:42 () in
      let report = deploy ~engine cloud src in
      check bool_ "succeeded" true (Executor.succeeded report);
      check (Alcotest.float 0.) "seed makespan unchanged" makespan
        report.Executor.makespan;
      match applied with
      | None -> ()
      | Some order ->
          check (Alcotest.list string_) "seed apply order unchanged" order
            (List.map Addr.to_string report.Executor.applied))
    golden

(* The heap and the legacy list ready set must schedule identically on
   every policy; only the engine overhead may differ. *)
let test_heap_list_equivalent () =
  let srcs =
    [
      Cloudless_workload.Workload.web_tier ();
      Cloudless_workload.Workload.microservices ~services:6 ();
      Cloudless_workload.Workload.layered ~width:6 ~depth:4 ();
      Cloudless_workload.Workload.fleet ~resources:120 ();
    ]
  in
  List.iter
    (fun src ->
      List.iter
        (fun engine ->
          List.iter
            (fun seed ->
              let run sched =
                let cloud = fresh_cloud ~seed () in
                let instances = expand_src src in
                let plan = Plan.make ~state:State.empty instances in
                Executor.apply cloud ~config:engine ~state:State.empty ~plan
                  ~sched ()
              in
              let h = run Executor.Sched_heap in
              let l = run Executor.Sched_list in
              check (Alcotest.float 0.) "same makespan" l.Executor.makespan
                h.Executor.makespan;
              check (Alcotest.list string_) "same apply order"
                (List.map Addr.to_string l.Executor.applied)
                (List.map Addr.to_string h.Executor.applied);
              check int_ "same picks" l.Executor.sched_picks
                h.Executor.sched_picks;
              check int_ "same peak ready" l.Executor.peak_ready
                h.Executor.peak_ready)
            [ 42; 43 ])
        [ Executor.baseline_config; Executor.cloudless_config ])
    srcs

(* A failure cascade exercises the tombstone path (ready-set removal);
   both implementations must skip the same set. *)
let test_heap_list_equivalent_on_failure () =
  let src =
    Cloudless_workload.Workload.misconfigured Cloudless_workload.Workload.M_unknown_region
  in
  let run sched =
    let cloud = fresh_cloud ~seed:42 () in
    let instances = expand_src src in
    let plan = Plan.make ~state:State.empty instances in
    Executor.apply cloud ~config:Executor.cloudless_config ~state:State.empty
      ~plan ~sched ()
  in
  let h = run Executor.Sched_heap in
  let l = run Executor.Sched_list in
  check (Alcotest.list string_) "same applied"
    (List.map Addr.to_string l.Executor.applied)
    (List.map Addr.to_string h.Executor.applied);
  check (Alcotest.list string_) "same skipped"
    (List.sort compare (List.map Addr.to_string l.Executor.skipped))
    (List.sort compare (List.map Addr.to_string h.Executor.skipped));
  check int_ "same failures" (List.length l.Executor.failed)
    (List.length h.Executor.failed)

(* The fleet generator hits its resource budget exactly. *)
let test_fleet_exact_count () =
  List.iter
    (fun n ->
      let instances =
        expand_src (Cloudless_workload.Workload.fleet ~resources:n ())
      in
      check int_ "exact instance count" n (List.length instances))
    [ 1; 2; 9; 10; 100; 137; 1000 ]

let suites =
  [
    ( "deploy.end_to_end",
      [
        Alcotest.test_case "web tier" `Quick test_deploy_web_tier;
        Alcotest.test_case "dependency order" `Quick test_deploy_respects_dependency_order;
        Alcotest.test_case "second apply noop" `Quick test_second_apply_is_noop;
        Alcotest.test_case "update" `Quick test_update_plan_and_apply;
        Alcotest.test_case "replace on force_new" `Quick test_replace_on_force_new;
        Alcotest.test_case "create_before_destroy" `Quick test_create_before_destroy;
        Alcotest.test_case "prevent_destroy" `Quick test_prevent_destroy_blocks_replace;
        Alcotest.test_case "delete orphans" `Quick test_delete_orphans;
        Alcotest.test_case "destroy order" `Quick test_delete_order_reversed;
      ] );
    ( "deploy.engines",
      [
        Alcotest.test_case "cloudless correct" `Quick test_cloudless_engine_also_correct;
        Alcotest.test_case "cloudless faster on wide graph" `Quick test_cloudless_faster_on_wide_graph;
        Alcotest.test_case "semantic check fails late" `Quick test_semantic_check_fails_deploy;
        Alcotest.test_case "failed dep skips dependents" `Quick test_failed_dependency_skips_dependents;
        Alcotest.test_case "transient retried" `Quick test_transient_failures_are_retried;
        Alcotest.test_case "refresh reads" `Quick test_refresh_reads_state;
        Alcotest.test_case "determinism" `Quick test_deterministic_deploys;
      ] );
    ( "deploy.scheduler",
      [
        Alcotest.test_case "seed golden makespans" `Quick
          test_seed_golden_makespans;
        Alcotest.test_case "heap = list schedule" `Quick
          test_heap_list_equivalent;
        Alcotest.test_case "heap = list on failure" `Quick
          test_heap_list_equivalent_on_failure;
        Alcotest.test_case "fleet exact count" `Quick test_fleet_exact_count;
      ] );
  ]
