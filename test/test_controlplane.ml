(* Control-plane service tests: end-to-end scenario smoke, the lock
   admission properties the paper's multi-tenancy claim rests on
   (disjoint tenants never wait, conflicting work serializes in queue
   order), a golden drift-event -> scoped-reconcile trace, and crash
   resume with zero orphans/duplicates. *)

module Cloud = Cloudless_sim.Cloud
module Rate_limiter = Cloudless_sim.Rate_limiter
module Failure = Cloudless_sim.Failure
module State = Cloudless_state.State
module Lock_manager = Cloudless_lock.Lock_manager
module Control_plane = Cloudless_controlplane.Control_plane
module Scenario = Cloudless_controlplane.Scenario
module Trace = Cloudless_obs.Trace
module Metrics = Cloudless_obs.Metrics
module Cloud_rules = Cloudless_schema.Cloud_rules

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool
let string_ = Alcotest.string

(* Generous provider budgets so admission behaviour, not token-bucket
   throttling, decides timing (same trick as the E14 bench). *)
let fresh_cloud ?(seed = 42) () =
  Cloud.create
    ~config:(Cloud_rules.config_with_checks ())
    ~write_limiter:(Rate_limiter.create ~capacity:1e6 ~refill_rate:1e5)
    ~read_limiter:(Rate_limiter.create ~capacity:1e6 ~refill_rate:1e5)
    ~seed ()

let make_cp ?(trace = Trace.null) ?(config = Control_plane.cloudless_service)
    ?seed () =
  Control_plane.create ~cloud:(fresh_cloud ?seed ()) ~trace config

(* ------------------------------------------------------------------ *)
(* Scenario smoke                                                      *)
(* ------------------------------------------------------------------ *)

let test_scenario_smoke () =
  let scn =
    {
      Scenario.default with
      Scenario.tenants = 3;
      resources = 8;
      requests_per_tenant = 2;
      request_interval = 300.;
      drift_events = 4;
      drift_period = 60.;
      policy_period = 120.;
      duration = 1800.;
    }
  in
  let config =
    Scenario.service_config scn Control_plane.cloudless_service
  in
  let cp = ref (make_cp ~config ()) in
  let injections = Scenario.install scn cp in
  Control_plane.run !cp ~until:scn.Scenario.duration;
  let m = Control_plane.metrics !cp in
  check int_ "all requests completed" 6 (Metrics.counter m "requests_done");
  check int_ "resources under management" 24
    (Control_plane.managed_resource_count !cp);
  check bool_ "all injections fired" true (List.length !injections = 4);
  check bool_ "every injection detected" true
    (List.for_all
       (fun (inj : Scenario.injection) ->
         List.mem_assoc inj.Scenario.icloud_id
           (Control_plane.drift_detections !cp))
       !injections);
  check bool_ "reconciles ran" true (Metrics.counter m "reconciles" > 0);
  check bool_ "policy ticked" true (Metrics.counter m "policy_ticks" > 0);
  check bool_ "policy flagged drift" true
    (Metrics.counter m "policy_decisions" > 0);
  check bool_ "no orphans" true (Control_plane.orphans !cp = []);
  (* convergence: a fresh request against the final config is a no-op *)
  List.iter
    (fun (d : Control_plane.deployment) ->
      let instances =
        List.filter
          (fun (r : State.resource_state) -> r.State.rtype = "aws_instance")
          (State.resources d.Control_plane.state)
      in
      List.iter
        (fun (r : State.resource_state) ->
          match Cloud.lookup (Control_plane.cloud !cp) r.State.cloud_id with
          | Some live ->
              check bool_ "drift repaired" false
                (live.Cloud.attrs
                 |> Cloudless_hcl.Value.Smap.find_opt "instance_type"
                 = Some (Cloudless_hcl.Value.Vstring "t2.nano"))
          | None -> Alcotest.fail "managed instance missing from cloud")
        instances)
    (Control_plane.deployments !cp)

let test_metrics_deterministic () =
  let run () =
    let scn =
      {
        Scenario.default with
        Scenario.tenants = 2;
        requests_per_tenant = 2;
        drift_events = 3;
        duration = 1500.;
      }
    in
    let config =
      Scenario.service_config scn Control_plane.cloudless_service
    in
    let cp = ref (make_cp ~config ()) in
    ignore (Scenario.install scn cp);
    Control_plane.run !cp ~until:scn.Scenario.duration;
    Metrics.to_json (Control_plane.metrics !cp)
  in
  check string_ "byte-identical snapshots" (run ()) (run ())

(* ------------------------------------------------------------------ *)
(* Admission properties                                                *)
(* ------------------------------------------------------------------ *)

(* Disjoint tenants, one request each, submitted simultaneously: under
   Per_resource admission nobody ever waits on a lock. *)
let prop_disjoint_no_wait =
  QCheck.Test.make ~count:15 ~name:"disjoint tenants never wait on a lock"
    QCheck.(pair (int_range 2 6) (int_range 5 10))
    (fun (tenants, resources) ->
      let cp = make_cp () in
      let rids =
        List.init tenants (fun i ->
            let dep =
              Control_plane.add_deployment cp
                ~tenant:(Printf.sprintf "t%d" i)
                ~dname:"d0"
                ~src:(Scenario.fleet_src
                        { Scenario.default with Scenario.resources }
                        ~wave:0)
            in
            Control_plane.submit_request cp dep
              ~src:(Scenario.fleet_src
                      { Scenario.default with Scenario.resources }
                      ~wave:0))
      in
      Control_plane.run cp ~until:0.;
      let _, waits = Lock_manager.stats (Control_plane.lock cp) in
      ignore rids;
      waits = 0
      && Metrics.counter (Control_plane.metrics cp) "requests_done" = tenants)

(* Conflicting work (same deployment) serializes in queue order: the
   completion order of n stacked requests is exactly submission order,
   and each one past the first waited. *)
let prop_conflicting_fifo =
  QCheck.Test.make ~count:15 ~name:"conflicting work serializes in queue order"
    QCheck.(pair (int_range 2 5) (int_range 5 9))
    (fun (n, resources) ->
      let cp = make_cp () in
      let dep =
        Control_plane.add_deployment cp ~tenant:"t0" ~dname:"d0"
          ~src:(Scenario.fleet_src
                  { Scenario.default with Scenario.resources }
                  ~wave:0)
      in
      let rids =
        List.init n (fun w ->
            Control_plane.submit_request cp dep
              ~src:(Scenario.fleet_src
                      { Scenario.default with Scenario.resources }
                      ~wave:w))
      in
      Control_plane.run cp ~until:0.;
      let done_order = List.map fst (Control_plane.completed_requests cp) in
      let _, waits = Lock_manager.stats (Control_plane.lock cp) in
      done_order = rids && waits = n - 1)

(* ------------------------------------------------------------------ *)
(* Golden drift trace                                                  *)
(* ------------------------------------------------------------------ *)

(* One drifted attribute on a 12-resource fleet must produce exactly:
   a request span, then one reconcile span whose impact scope is the
   drifted instance plus its two direct dependencies (subnet + sg, the
   re-evaluation context) — not a full-fleet sweep. *)
let test_golden_drift_trace () =
  let sink, spans = Trace.memory_sink () in
  let cloud = fresh_cloud () in
  let trace = Trace.create ~sim_clock:(fun () -> Cloud.now cloud) sink in
  let cp =
    Control_plane.create ~cloud ~trace Control_plane.cloudless_service
  in
  let scn = { Scenario.default with Scenario.resources = 12 } in
  let dep =
    Control_plane.add_deployment cp ~tenant:"acme" ~dname:"prod"
      ~src:(Scenario.fleet_src scn ~wave:0)
  in
  ignore (Control_plane.submit_request cp dep ~src:(Scenario.fleet_src scn ~wave:0));
  (* drift one instance out-of-band after the apply settles *)
  Cloud.schedule cloud ~delay:300. (fun () ->
      let row =
        List.find
          (fun (r : State.resource_state) -> r.State.rtype = "aws_instance")
          (State.resources dep.Control_plane.state)
      in
      match
        Cloud.mutate_oob cloud ~script:"ops" ~cloud_id:row.State.cloud_id
          ~attr:"instance_type"
          ~value:(Cloudless_hcl.Value.Vstring "t2.nano")
      with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "oob mutation failed");
  Control_plane.run cp ~until:400.;
  let golden =
    List.map
      (fun (s : Trace.span) ->
        let scope =
          try List.assoc "scope" s.Trace.meta with Not_found -> "-"
        in
        Printf.sprintf "%s scope=%s" s.Trace.name scope)
      (spans ())
  in
  check
    Alcotest.(list string)
    "span sequence" [ "request scope=-"; "reconcile scope=3" ] golden;
  check int_ "exactly one detection" 1
    (List.length (Control_plane.drift_detections cp));
  check int_ "tailer produced one reconcile" 1
    (Metrics.counter (Control_plane.metrics cp) "reconciles")

(* ------------------------------------------------------------------ *)
(* Crash resume                                                        *)
(* ------------------------------------------------------------------ *)

let test_crash_resume () =
  let scn =
    {
      Scenario.default with
      Scenario.tenants = 3;
      resources = 8;
      requests_per_tenant = 2;
      request_interval = 400.;
      drift_events = 0;
      policy_period = 0.;
      duration = 1200.;
    }
  in
  let config =
    Scenario.service_config scn Control_plane.cloudless_service
  in
  let cp = ref (make_cp ~config ()) in
  ignore (Scenario.install scn cp);
  Control_plane.set_crash !cp (Failure.Crash_after 9);
  (match Control_plane.run !cp ~until:scn.Scenario.duration with
  | () -> Alcotest.fail "expected a crash"
  | exception Failure.Engine_crashed _ -> ());
  let fresh, reports = Control_plane.resume !cp in
  cp := fresh;
  check int_ "one report per deployment" 3 (List.length reports);
  Control_plane.run fresh ~until:scn.Scenario.duration;
  check bool_ "no orphans after resume" true (Control_plane.orphans fresh = []);
  check int_ "exact fleet per tenant, no duplicates" 24
    (Control_plane.managed_resource_count fresh);
  (* the successor's final convergence request is a no-op plan *)
  List.iter
    (fun (d : Control_plane.deployment) ->
      check int_ "deployment fully populated" 8 (State.size d.Control_plane.state))
    (Control_plane.deployments fresh)

let qtest = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "controlplane.service",
      [
        Alcotest.test_case "scenario smoke" `Slow test_scenario_smoke;
        Alcotest.test_case "metrics snapshots deterministic" `Slow
          test_metrics_deterministic;
        Alcotest.test_case "golden drift trace" `Quick test_golden_drift_trace;
        Alcotest.test_case "crash mid-service resumes clean" `Slow
          test_crash_resume;
      ] );
    ("controlplane.admission", [ qtest prop_disjoint_no_wait; qtest prop_conflicting_fifo ]);
  ]
