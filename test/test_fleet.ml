(* Multi-shard fleet tests (E15): consistent-hash routing properties
   (ring stability under growth, single ownership), push-based drift
   with cross-shard routing and a golden trace, shard-granularity crash
   resume with digest equality against an uncrashed run, admission
   backpressure, and the labeled metrics scopes the per-shard
   observability rides on. *)

module Cloud = Cloudless_sim.Cloud
module Rate_limiter = Cloudless_sim.Rate_limiter
module Failure = Cloudless_sim.Failure
module State = Cloudless_state.State
module Router = Cloudless_controlplane.Router
module Shard = Cloudless_controlplane.Shard
module Fleet = Cloudless_controlplane.Fleet
module Scenario = Cloudless_controlplane.Scenario
module Trace = Cloudless_obs.Trace
module Metrics = Cloudless_obs.Metrics
module Cloud_rules = Cloudless_schema.Cloud_rules

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool

let fresh_cloud ?(seed = 42) () =
  Cloud.create
    ~config:(Cloud_rules.config_with_checks ())
    ~write_limiter:(Rate_limiter.create ~capacity:1e6 ~refill_rate:1e5)
    ~read_limiter:(Rate_limiter.create ~capacity:1e6 ~refill_rate:1e5)
    ~seed ()

let tenant_names n = List.init n (Printf.sprintf "tenant%d")

(* ------------------------------------------------------------------ *)
(* Router properties                                                   *)
(* ------------------------------------------------------------------ *)

(* Growing the ring from n to n+1 shards must remap only ~1/(n+1) of
   tenants.  2.5x the ideal fraction is a generous, non-flaky bound for
   64 vnodes/shard; the hash is deterministic, so a pass is stable. *)
let prop_ring_stability =
  QCheck.Test.make ~count:20 ~name:"adding a shard moves <= ~1/N tenants"
    QCheck.(pair (int_range 2 8) (int_range 100 300))
    (fun (shards, tenants) ->
      let before = Router.create ~shards () in
      let after = Router.create ~shards:(shards + 1) () in
      let moved =
        List.length
          (List.filter
             (fun t -> Router.ring_assign before t <> Router.ring_assign after t)
             (tenant_names tenants))
      in
      float_of_int moved
      <= 2.5 *. float_of_int tenants /. float_of_int (shards + 1))

(* Assignment is a total function onto [0, shards): every tenant has
   exactly one owner, and pins never escape the range. *)
let prop_single_owner =
  QCheck.Test.make ~count:30 ~name:"every tenant owned by exactly one shard"
    QCheck.(pair (int_range 1 9) (int_range 1 50))
    (fun (shards, tenants) ->
      let r = Router.create ~shards () in
      List.for_all
        (fun t ->
          let s = Router.assign r t in
          s >= 0 && s < shards && Router.assign r t = s)
        (tenant_names tenants))

(* A registered deployment lives in exactly one shard's list. *)
let test_fleet_single_registration () =
  let fleet =
    Fleet.create ~cloud:(fresh_cloud ()) ~shards:4 Shard.fleet_service
  in
  List.iter
    (fun t ->
      ignore
        (Fleet.add_deployment fleet ~tenant:t ~dname:"d0"
           ~src:(Scenario.fleet_src Scenario.default ~wave:0)))
    (tenant_names 12);
  List.iter
    (fun t ->
      let owners =
        List.filter
          (fun s -> Shard.find_deployment s ~tenant:t ~dname:"d0" <> None)
          (Fleet.shards fleet)
      in
      check int_ (t ^ " registered on exactly one shard") 1
        (List.length owners))
    (tenant_names 12)

let test_partition_covers_all_shards () =
  (* cloud ids hash over a different domain than tenants; with a few
     dozen ids every shard should classify something *)
  let r = Router.create ~shards:4 () in
  let hit = Array.make 4 false in
  List.iter
    (fun i -> hit.(Router.partition r (Printf.sprintf "instance-%06x" i)) <- true)
    (List.init 64 Fun.id);
  check bool_ "all partitions used" true (Array.for_all Fun.id hit)

(* ------------------------------------------------------------------ *)
(* Golden cross-shard drift trace                                      *)
(* ------------------------------------------------------------------ *)

(* One tenant on a two-shard fleet in [Subscribe] mode.  An OOB
   mutation at t=300 must produce: the apply's request span, then a
   scoped reconcile span — and the detection must be *instant* (the
   subscription classifies the entry inside the very append), with the
   activity log never polled. *)
let test_golden_subscribe_trace () =
  let sink, spans = Trace.memory_sink () in
  let cloud = fresh_cloud () in
  let trace = Trace.create ~sim_clock:(fun () -> Cloud.now cloud) sink in
  let fleet = Fleet.create ~cloud ~trace ~shards:2 Shard.fleet_service in
  let scn = { Scenario.default with Scenario.resources = 12 } in
  let dep =
    Fleet.add_deployment fleet ~tenant:"acme" ~dname:"prod"
      ~src:(Scenario.fleet_src scn ~wave:0)
  in
  ignore
    (Fleet.submit_request fleet dep ~src:(Scenario.fleet_src scn ~wave:0));
  let drifted = ref "" in
  Cloud.schedule cloud ~delay:300. (fun () ->
      let row =
        List.find
          (fun (r : State.resource_state) -> r.State.rtype = "aws_instance")
          (State.resources dep.Shard.state)
      in
      drifted := row.State.cloud_id;
      match
        Cloud.mutate_oob cloud ~script:"ops" ~cloud_id:row.State.cloud_id
          ~attr:"instance_type"
          ~value:(Cloudless_hcl.Value.Vstring "t2.nano")
      with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "oob mutation failed");
  Fleet.run fleet ~until:400.;
  let golden =
    List.map
      (fun (s : Trace.span) ->
        let scope =
          try List.assoc "scope" s.Trace.meta with Not_found -> "-"
        in
        Printf.sprintf "%s scope=%s" s.Trace.name scope)
      (spans ())
  in
  check
    Alcotest.(list string)
    "span sequence" [ "request scope=-"; "reconcile scope=3" ] golden;
  (match Fleet.drift_detections fleet with
  | [ (cid, at) ] ->
      check Alcotest.string "drifted resource detected" !drifted cid;
      check (Alcotest.float 1e-9) "detection is instant (push, not poll)" 300.
        at
  | l -> Alcotest.failf "expected one detection, got %d" (List.length l));
  let m = Fleet.metrics fleet in
  check int_ "log never polled" 0 (Metrics.counter m "log_polls");
  let owner = Router.assign (Fleet.router fleet) "acme" in
  let classifier = Router.partition (Fleet.router fleet) !drifted in
  check int_ "cross-shard hop counted iff classifier is not the owner"
    (if owner <> classifier then 1 else 0)
    (Metrics.counter m "cross_shard_routed")

(* A multi-tenant scenario routinely crosses shards, and the converged
   digest is identical at any shard count. *)
let test_cross_shard_routing_and_digest () =
  let scn =
    {
      Scenario.default with
      Scenario.tenants = 8;
      resources = 8;
      requests_per_tenant = 2;
      request_interval = 300.;
      drift_events = 8;
      drift_period = 60.;
      policy_period = 0.;
      duration = 1800.;
    }
  in
  let run shards =
    let config = Scenario.service_config { scn with Scenario.shards } Shard.fleet_service in
    let fleet = ref (Fleet.create ~cloud:(fresh_cloud ()) ~shards config) in
    let injections = Scenario.install_fleet scn fleet in
    Fleet.run !fleet ~until:scn.Scenario.duration;
    check int_ "all injections fired" 8 (List.length !injections);
    check int_ "every injection detected" 8
      (List.length (Fleet.drift_detections !fleet));
    (!fleet, Metrics.counter (Fleet.metrics !fleet) "cross_shard_routed")
  in
  let f2, crossed2 = run 2 in
  let f3, _ = run 3 in
  check bool_ "some drift crossed shards" true (crossed2 > 0);
  check Alcotest.string "digest invariant under shard count"
    (Fleet.state_digest f2) (Fleet.state_digest f3)

(* ------------------------------------------------------------------ *)
(* Crash resume at shard granularity                                   *)
(* ------------------------------------------------------------------ *)

let test_fleet_crash_resume () =
  let scn =
    {
      Scenario.default with
      Scenario.tenants = 6;
      shards = 2;
      resources = 8;
      requests_per_tenant = 1;
      drift_events = 0;
      policy_period = 0.;
      duration = 1200.;
    }
  in
  let config = Scenario.service_config scn Shard.fleet_service in
  let run ?crash () =
    let fleet = ref (Fleet.create ~cloud:(fresh_cloud ()) ~shards:2 config) in
    ignore (Scenario.install_fleet scn fleet);
    (match crash with
    | Some k -> Fleet.set_crash !fleet (Failure.Crash_after k)
    | None -> ());
    let crashed =
      match Fleet.run !fleet ~until:scn.Scenario.duration with
      | () -> false
      | exception Failure.Engine_crashed _ -> true
    in
    (fleet, crashed)
  in
  let ref_fleet, ref_crashed = run () in
  check bool_ "reference run stayed up" false ref_crashed;
  let fleet_ref, crashed = run ~crash:10 () in
  check bool_ "crash gate tripped" true crashed;
  let fresh, reports = Fleet.resume !fleet_ref in
  fleet_ref := fresh;
  check int_ "one recovery report per deployment" 6 (List.length reports);
  check int_ "successor keeps the shard count" 2 (Fleet.shard_count fresh);
  Fleet.run fresh ~until:scn.Scenario.duration;
  check bool_ "no orphans" true (Fleet.orphans fresh = []);
  check int_ "exact fleet, no duplicates" 48
    (Fleet.managed_resource_count fresh);
  check Alcotest.string "digest equals the uncrashed run"
    (Fleet.state_digest !ref_fleet) (Fleet.state_digest fresh)

(* ------------------------------------------------------------------ *)
(* Admission backpressure                                              *)
(* ------------------------------------------------------------------ *)

let burst_fleet admission =
  let config =
    { Shard.fleet_service with Shard.max_queue_depth = 1; admission }
  in
  let fleet = Fleet.create ~cloud:(fresh_cloud ()) ~shards:1 config in
  let dep =
    Fleet.add_deployment fleet ~tenant:"hot" ~dname:"d0"
      ~src:(Scenario.fleet_src Scenario.default ~wave:0)
  in
  (fleet, dep)

(* Queue depth counts queued + lock-blocked work, not the in-flight
   holder: request 1 executes immediately, request 2 becomes the lock
   waiter that fills the depth-1 bound, requests 3-4 are over it. *)
let test_backpressure_defer () =
  let fleet, dep = burst_fleet Shard.Defer in
  let src = Scenario.fleet_src Scenario.default ~wave:0 in
  let outcomes = List.init 4 (fun _ -> Fleet.submit_request fleet dep ~src) in
  (match outcomes with
  | [ `Accepted _; `Accepted _; `Deferred _; `Deferred _ ] -> ()
  | _ -> Alcotest.fail "expected 2 admitted then 2 deferred");
  Fleet.run fleet ~until:600.;
  let m = Fleet.metrics fleet in
  check int_ "every request eventually completed" 4
    (Metrics.counter m "requests_done");
  check bool_ "deferrals recorded" true
    (Metrics.counter m "requests_deferred" >= 2)

let test_backpressure_reject () =
  let fleet, dep = burst_fleet Shard.Reject in
  let src = Scenario.fleet_src Scenario.default ~wave:0 in
  let outcomes = List.init 4 (fun _ -> Fleet.submit_request fleet dep ~src) in
  let rejected =
    List.length (List.filter (function `Rejected -> true | _ -> false) outcomes)
  in
  check int_ "burst tail rejected" 2 rejected;
  Fleet.run fleet ~until:600.;
  let m = Fleet.metrics fleet in
  check int_ "only the admitted requests ran" 2
    (Metrics.counter m "requests_done");
  check int_ "rejections recorded" 2 (Metrics.counter m "requests_rejected")

(* ------------------------------------------------------------------ *)
(* Labeled metric scopes                                               *)
(* ------------------------------------------------------------------ *)

let test_metric_scopes () =
  let m = Metrics.create () in
  let s0 = Metrics.scoped m (Some "shard0") in
  let s1 = Metrics.scoped m (Some "shard1") in
  let plain = Metrics.unscoped m in
  Metrics.scope_inc s0 "api_calls";
  Metrics.scope_inc s0 "api_calls";
  Metrics.scope_inc s1 "api_calls";
  Metrics.scope_inc plain "api_calls";
  check int_ "base counter aggregates every scope" 4
    (Metrics.counter m "api_calls");
  check int_ "shard0 label isolated" 2 (Metrics.counter m "api_calls.shard0");
  check int_ "shard1 label isolated" 1 (Metrics.counter m "api_calls.shard1");
  check int_ "unscoped writes no label" 0
    (Metrics.counter m "api_calls.")

let qtest = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "fleet.router",
      [
        qtest prop_ring_stability;
        qtest prop_single_owner;
        Alcotest.test_case "single registration" `Quick
          test_fleet_single_registration;
        Alcotest.test_case "partition covers all shards" `Quick
          test_partition_covers_all_shards;
      ] );
    ( "fleet.drift",
      [
        Alcotest.test_case "golden subscribe trace" `Quick
          test_golden_subscribe_trace;
        Alcotest.test_case "cross-shard routing + digest invariance" `Slow
          test_cross_shard_routing_and_digest;
      ] );
    ( "fleet.resilience",
      [
        Alcotest.test_case "crash resumes at shard granularity" `Slow
          test_fleet_crash_resume;
        Alcotest.test_case "defer backpressure" `Quick test_backpressure_defer;
        Alcotest.test_case "reject backpressure" `Quick
          test_backpressure_reject;
      ] );
    ("fleet.obs", [ Alcotest.test_case "metric scopes" `Quick test_metric_scopes ]);
  ]
