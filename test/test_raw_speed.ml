(* The raw-speed core (E16): the interned-id hot path must be
   observably identical to the seed's reference implementations.

   - the address interner's basic contract;
   - [Plan.exec_graph]/[exec_rounds] vs the [Dag]-based oracle on
     random fleet/chain workloads;
   - the [Workload.fleet_instances]/[chain_instances] fast paths vs
     the parsed-and-evaluated text generators, field for field;
   - the journal's fused buffer encoder vs [Journal.Reference] over
     adversarial values (quotes, backslashes, interpolation starts,
     control bytes, unknowns, deep nesting);
   - [State.orphans] (hashtable membership) vs a set-based oracle;
   - [Shard.apply] byte-identity across domain counts on a 10k plan. *)

open Cloudless_hcl
module State = Cloudless_state.State
module Journal = Cloudless_state.Journal
module Plan = Cloudless_plan.Plan
module Executor = Cloudless_deploy.Executor
module Shard = Cloudless_deploy.Shard
module Dag = Cloudless_graph.Dag
module Intern = Cloudless_graph.Intern
module Workload = Cloudless_workload.Workload
module Cloud = Cloudless_sim.Cloud

let check = Alcotest.check
let int_ = Alcotest.int
let qtest = QCheck_alcotest.to_alcotest
let addr_ty = Alcotest.testable Addr.pp Addr.equal

let mk ?key rtype rname = Addr.make ?key ~rtype ~rname ()

(* ------------------------------------------------------------------ *)
(* Interner                                                            *)
(* ------------------------------------------------------------------ *)

let test_intern_basics () =
  let t = Intern.create ~capacity:2 () in
  let a = mk "aws_vpc" "main" in
  let b = mk "aws_subnet" "a" in
  check int_ "first id" 0 (Intern.intern t a);
  check int_ "second id" 1 (Intern.intern t b);
  check int_ "stable on re-intern" 0 (Intern.intern t a);
  check int_ "length" 2 (Intern.length t);
  check (Alcotest.option int_) "find_opt hit" (Some 1) (Intern.find_opt t b);
  check (Alcotest.option int_) "find_opt miss" None
    (Intern.find_opt t (mk "aws_eip" "x"));
  check addr_ty "addr roundtrip" a (Intern.addr t 0);
  (* growth beyond the initial capacity mints dense ids in order *)
  for i = 0 to 99 do
    check int_ "dense"
      (i + 2)
      (Intern.intern t (mk "aws_eip" (Printf.sprintf "e%d" i)))
  done;
  check int_ "grown length" 102 (Intern.length t);
  (match Intern.addr t 500 with
  | exception Cloudless_error.Error _ -> ()
  | _ -> Alcotest.fail "out-of-range id must raise");
  let order = ref [] in
  Intern.iter (fun id ad -> order := (id, ad) :: !order) t;
  check int_ "iter covers all" 102 (List.length !order);
  check int_ "iter ascending" 0 (fst (List.hd (List.rev !order)))

let test_intern_of_list () =
  let a = mk "t" "a" and b = mk "t" "b" in
  let t = Intern.of_list [ a; b; a; b; a ] in
  check int_ "duplicates collapse" 2 (Intern.length t);
  check addr_ty "list order 0" a (Intern.addr t 0);
  check addr_ty "list order 1" b (Intern.addr t 1)

(* ------------------------------------------------------------------ *)
(* exec_graph/exec_rounds vs the Dag oracle                            *)
(* ------------------------------------------------------------------ *)

(* Random instance workload: a fleet (wide, grouped) or a chain
   (maximally deep), sizes small enough to keep the oracle cheap. *)
let workload_gen =
  QCheck.Gen.(
    pair bool (int_range 1 120) >|= fun (chain, n) ->
    if chain then ("chain", Workload.chain_instances ~resources:n ())
    else ("fleet", Workload.fleet_instances ~resources:n ()))

let workload_arb =
  QCheck.make workload_gen ~print:(fun (kind, is) ->
      Printf.sprintf "%s of %d" kind (List.length is))

let prop_exec_rounds_match_oracle =
  QCheck.Test.make ~count:60
    ~name:"exec_graph rounds = Dag rounds of execution_graph"
    workload_arb
    (fun (_, instances) ->
      let plan = Plan.make ~state:State.empty instances in
      let xg = Plan.exec_graph plan in
      let flat_rounds =
        List.map
          (List.map (fun id -> xg.Plan.xchanges.(id).Plan.addr))
          (Plan.exec_rounds xg)
      in
      let oracle_rounds = Dag.levels (Plan.execution_graph plan) in
      flat_rounds = oracle_rounds)

let prop_execution_graph_matches_reference =
  QCheck.Test.make ~count:40
    ~name:"execution_graph = Reference.execution_graph on random workloads"
    workload_arb
    (fun (_, instances) ->
      let plan = Plan.make ~state:State.empty instances in
      let g = Plan.execution_graph plan in
      let r = Plan.Reference.execution_graph plan in
      Dag.nodes g = Dag.nodes r
      && List.for_all
           (fun a -> Addr.Set.equal (Dag.deps_of g a) (Dag.deps_of r a))
           (Dag.nodes g))

(* ------------------------------------------------------------------ *)
(* Dag.rounds_into vs Dag.Reference.rounds on adversarial DAGs         *)
(* ------------------------------------------------------------------ *)

let node i = mk ~key:(Addr.Kint i) "node" "n"

(* A dag over nodes [0 .. n-1] (insertion order = interned id) with the
   given (dependent, dependency) edges. *)
let dag_of ~n edges =
  let g =
    List.fold_left
      (fun g i -> Dag.add_node g (node i) i)
      Dag.empty
      (List.init n Fun.id)
  in
  List.fold_left
    (fun g (a, b) -> Dag.add_edge g ~dependent:(node a) ~dependency:(node b))
    g edges

(* Rounds through the zero-alloc kernel, mapped back to addresses so
   they compare against the reference's [Addr.t list list]. *)
let rounds_via_kernel g =
  let n = Dag.size g in
  let nodes = Array.of_list (Dag.nodes g) in
  let order = Array.make (max 1 n) 0 in
  let offsets = Array.make (n + 1) 0 in
  let rounds = Dag.rounds_into g ~order ~offsets in
  List.init rounds (fun k ->
      List.init
        (offsets.(k + 1) - offsets.(k))
        (fun i -> nodes.(order.(offsets.(k) + i))))

let check_rounds_match ~what g =
  if rounds_via_kernel g <> Dag.Reference.rounds g then
    Alcotest.failf "%s: rounds_into disagrees with Reference.rounds" what

let test_rounds_into_adversarial () =
  check_rounds_match ~what:"empty" (dag_of ~n:0 []);
  check (Alcotest.list (Alcotest.list addr_ty)) "empty has no rounds" []
    (rounds_via_kernel (dag_of ~n:0 []));
  (* single round: no edges — one ascending slice *)
  let flat = dag_of ~n:17 [] in
  check_rounds_match ~what:"single round" flat;
  check int_ "single round count" 1 (List.length (rounds_via_kernel flat));
  (* diamond ladder: 0 -> (1,2) -> 3 -> (4,5) -> 6 -> ... each diamond
     adds two rounds; tie-break order inside the wide rounds matters *)
  let ladder depth =
    let edges = ref [] in
    for d = 0 to depth - 1 do
      let top = 3 * d and bottom = (3 * d) + 3 in
      edges :=
        (top + 1, top) :: (top + 2, top)
        :: (bottom, top + 1) :: (bottom, top + 2)
        :: !edges
    done;
    dag_of ~n:((3 * depth) + 1) !edges
  in
  List.iter
    (fun d ->
      let g = ladder d in
      check_rounds_match ~what:(Printf.sprintf "diamond ladder %d" d) g;
      check int_
        (Printf.sprintf "ladder %d depth" d)
        ((2 * d) + 1)
        (List.length (rounds_via_kernel g)))
    [ 1; 2; 7 ];
  (* a cycle raises in both implementations *)
  let cyclic = dag_of ~n:3 [ (0, 1); (1, 2); (2, 0) ] in
  (match rounds_via_kernel cyclic with
  | exception Dag.Cycle blocked ->
      check int_ "cycle blocks all three" 3 (List.length blocked)
  | _ -> Alcotest.fail "rounds_into must raise Cycle");
  match Dag.Reference.rounds cyclic with
  | exception Dag.Cycle _ -> ()
  | _ -> Alcotest.fail "Reference.rounds must raise Cycle"

(* Random forward-edge DAGs: any (dependent i, dependency j) with j < i
   is acyclic by construction, so density can be cranked without care. *)
let dag_gen =
  QCheck.Gen.(
    int_range 0 60 >>= fun n ->
    if n < 2 then return (n, [])
    else
      let edge =
        int_range 0 ((n * n) - 1) >|= fun e ->
        let i = e / n and j = e mod n in
        if i > j then (i, j) else (j, i)
      in
      list_size (int_range 0 (3 * n)) edge >|= fun edges ->
      (n, List.filter (fun (a, b) -> a <> b) edges))

let dag_arb =
  QCheck.make dag_gen ~print:(fun (n, edges) ->
      Printf.sprintf "n=%d edges=[%s]" n
        (String.concat ";"
           (List.map (fun (a, b) -> Printf.sprintf "%d<-%d" b a) edges)))

let prop_rounds_into_matches_reference =
  QCheck.Test.make ~count:200
    ~name:"Dag.rounds_into = Reference.rounds on random forward-edge DAGs"
    dag_arb
    (fun (n, edges) ->
      let g = dag_of ~n edges in
      rounds_via_kernel g = Dag.Reference.rounds g)

(* Scheduling order at 10k, pinned: the digest covers the round
   structure and every address in kernel emission order, so any change
   to tie-breaking, round boundaries, or the freeze's row order shows
   up here as a byte diff.  (The qcheck property above proves the
   kernel equals the seed's Dag oracle; this pins the concrete 10k
   artifact across refactors.) *)
let exec_order_digest xg =
  let n = Plan.exec_size xg in
  let order = Array.make (max 1 n) 0 in
  let offsets = Array.make (n + 1) 0 in
  let rounds = Plan.exec_rounds_into xg ~order ~offsets in
  let buf = Buffer.create (16 * n) in
  Buffer.add_string buf (string_of_int rounds);
  for k = 0 to rounds do
    Buffer.add_char buf '|';
    Buffer.add_string buf (string_of_int offsets.(k))
  done;
  for i = 0 to n - 1 do
    Buffer.add_char buf '\n';
    Buffer.add_string buf
      (Addr.to_string xg.Plan.xchanges.(order.(i)).Plan.addr)
  done;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let test_exec_rounds_golden_10k () =
  let digest_of instances =
    exec_order_digest
      (Plan.exec_graph (Plan.make ~state:State.empty instances))
  in
  check Alcotest.string "fleet 10k order digest" "a4b37ac064cf0b2f46649e77bb3f3d18"
    (digest_of (Workload.fleet_instances ~resources:10_000 ()));
  check Alcotest.string "chain 1k order digest" "1ac4385d07f2a32556004cfc26d54163"
    (digest_of (Workload.chain_instances ~resources:1_000 ()))

(* ------------------------------------------------------------------ *)
(* Fast-path generators vs the parsed text                             *)
(* ------------------------------------------------------------------ *)

let expand_text src =
  let cfg = Config.parse ~file:"gen.tf" src in
  (Eval.expand cfg).Eval.instances

let check_instances_match ~what fast parsed =
  check int_ (what ^ ": count") (List.length parsed) (List.length fast);
  List.iter2
    (fun (f : Eval.instance) (p : Eval.instance) ->
      let where = what ^ ": " ^ Addr.to_string p.Eval.addr in
      check addr_ty (where ^ " addr") p.Eval.addr f.Eval.addr;
      check Alcotest.string (where ^ " provider") p.Eval.provider
        f.Eval.provider;
      if not (Value.Smap.equal Value.equal p.Eval.attrs f.Eval.attrs) then
        Alcotest.failf "%s: attrs differ" where;
      check (Alcotest.list addr_ty) (where ^ " ref_deps") p.Eval.ref_deps
        f.Eval.ref_deps;
      check
        (Alcotest.list addr_ty)
        (where ^ " explicit_deps") p.Eval.explicit_deps f.Eval.explicit_deps;
      if p.Eval.lifecycle <> f.Eval.lifecycle then
        Alcotest.failf "%s: lifecycle differs" where)
    fast parsed

let test_fleet_fast_path () =
  List.iter
    (fun n ->
      check_instances_match
        ~what:(Printf.sprintf "fleet %d" n)
        (Workload.fleet_instances ~resources:n ())
        (expand_text (Workload.fleet ~resources:n ())))
    [ 1; 2; 7; 25; 100 ]

let test_chain_fast_path () =
  List.iter
    (fun n ->
      check_instances_match
        ~what:(Printf.sprintf "chain %d" n)
        (Workload.chain_instances ~resources:n ())
        (expand_text (Workload.chain ~resources:n ())))
    [ 1; 2; 13; 40 ]

(* ------------------------------------------------------------------ *)
(* Journal encoder vs Reference                                        *)
(* ------------------------------------------------------------------ *)

(* Strings that exercise every branch of the fused escaper: HCL-level
   escapes (quote, backslash, interpolation start), JSON-level escapes
   (newline, tab, CR, control bytes), and clean runs around them. *)
let nasty_string_gen =
  QCheck.Gen.(
    oneof
      [
        small_string ~gen:printable;
        oneofl
          [
            "";
            "plain";
            "qu\"ote";
            "back\\slash";
            "new\nline\tand\ttab";
            "\r\x01\x1f";
            "${interp}";
            "$not_interp";
            "trailing$";
            "a-b_c.d";
            "ends with ${";
            "\\${both}\"";
          ];
      ])

let value_gen =
  QCheck.Gen.(
    sized @@ fix (fun self k ->
        let leaf =
          oneof
            [
              return Value.Vnull;
              map (fun b -> Value.Vbool b) bool;
              map (fun i -> Value.Vint i) small_signed_int;
              map
                (fun f -> Value.Vfloat f)
                (oneofl [ 0.; 0.5; -1.25; 3.0; 1e30; 123456.789 ]);
              map (fun s -> Value.Vstring s) nasty_string_gen;
              map (fun s -> Value.Vunknown s) nasty_string_gen;
            ]
        in
        if k = 0 then leaf
        else
          frequency
            [
              (3, leaf);
              ( 1,
                map
                  (fun vs -> Value.Vlist vs)
                  (list_size (0 -- 4) (self (k / 2))) );
              ( 1,
                map
                  (fun kvs ->
                    Value.Vmap
                      (List.fold_left
                         (fun m (k, v) -> Value.Smap.add k v m)
                         Value.Smap.empty kvs))
                  (list_size (0 -- 4)
                     (pair nasty_string_gen (self (k / 2)))) );
            ]))

let smap_gen =
  QCheck.Gen.(
    map
      (fun kvs ->
        List.fold_left
          (fun m (k, v) -> Value.Smap.add k v m)
          Value.Smap.empty kvs)
      (list_size (0 -- 6) (pair nasty_string_gen (value_gen))))

let addr_gen =
  QCheck.Gen.(
    let ident = oneofl [ "aws_instance"; "aws_vpc"; "we$ird"; "x" ] in
    let key =
      oneof
        [
          return Addr.Knone;
          map (fun i -> Addr.Kint i) small_nat;
          map (fun s -> Addr.Kstr s) nasty_string_gen;
        ]
    in
    let mode = oneofl [ Addr.Managed; Addr.Data ] in
    let mpath = oneofl [ []; [ "net" ]; [ "a"; "b" ] ] in
    map
      (fun ((rtype, rname), (key, (mode, module_path))) ->
        Addr.make ~module_path ~mode ~key ~rtype ~rname ())
      (pair (pair ident ident) (pair key (pair mode mpath))))

let entry_gen =
  QCheck.Gen.(
    let kind = oneofl [ Journal.Op_create; Journal.Op_update; Journal.Op_delete ] in
    let time = oneofl [ 0.; 12.5; 1e9; 0.1 +. 0.2; Float.nan ] in
    oneof
      [
        map
          (fun (e, (c, t)) -> Journal.Run_started { engine = e; changes = c; time = t })
          (pair nasty_string_gen (pair small_nat time));
        map
          (fun ((a, k), ((p, d), ((r, pr), (c, t)))) ->
            Journal.Intent
              {
                Journal.op = c;
                iaddr = a;
                kind = k;
                rtype = r;
                region = "us-east-1";
                payload = p;
                prior_cloud_id = pr;
                deps = d;
                log_cursor = c;
                itime = t;
              })
          (pair (pair addr_gen kind)
             (pair
                (pair smap_gen (list_size (0 -- 3) addr_gen))
                (pair
                   (pair nasty_string_gen (option nasty_string_gen))
                   (pair small_nat time))));
        map
          (fun ((a, k), ((at, ci), ((ok, re), (rs, t)))) ->
            Journal.Outcome
              {
                Journal.oop = 1;
                oaddr = a;
                okind = k;
                ok;
                cloud_id = ci;
                attrs = at;
                retried = re;
                reason = rs;
                otime = t;
              })
          (pair (pair addr_gen kind)
             (pair
                (pair smap_gen (option nasty_string_gen))
                (pair (pair bool bool)
                   (pair (option nasty_string_gen) time))));
        map (fun t -> Journal.Run_finished { time = t }) time;
      ])

let prop_journal_encoder_matches_reference =
  QCheck.Test.make ~count:500
    ~name:"journal buffer encoder = Reference, byte for byte"
    (QCheck.make entry_gen)
    (fun entry ->
      Journal.entry_to_line entry = Journal.Reference.entry_to_line entry)

let test_journal_to_string_matches_reference () =
  let entries =
    [
      Journal.Run_started { engine = "cloudless"; changes = 2; time = 0. };
      Journal.Intent
        {
          Journal.op = 1;
          iaddr = mk ~key:(Addr.Kstr "we\"ird") "aws_instance" "web";
          kind = Journal.Op_create;
          rtype = "aws_instance";
          region = "us-east-1";
          payload =
            Value.Smap.singleton "startup"
              (Value.Vstring "echo \"${hi}\"\n\ttail");
          prior_cloud_id = None;
          deps = [ mk "aws_vpc" "main"; mk ~key:(Addr.Kint 3) "aws_subnet" "a" ];
          log_cursor = 0;
          itime = 1.5;
        };
      Journal.Run_finished { time = 2.5 };
    ]
  in
  check Alcotest.string "to_string equal"
    (Journal.Reference.to_string entries)
    (Journal.to_string entries)

(* ------------------------------------------------------------------ *)
(* Orphan detection vs a set oracle                                    *)
(* ------------------------------------------------------------------ *)

let prop_orphans_match_set_oracle =
  QCheck.Test.make ~count:100 ~name:"State.orphans = set-difference oracle"
    QCheck.(pair (int_range 0 40) (int_range 0 40))
    (fun (nstate, nkeep) ->
      let row i =
        {
          State.addr = mk ~key:(Addr.Kint i) "aws_eip" "pool";
          cloud_id = Printf.sprintf "eip-%d" i;
          rtype = "aws_eip";
          region = "us-east-1";
          attrs = Value.Smap.empty;
          deps = [];
        }
      in
      let state =
        List.fold_left
          (fun st i -> State.add st (row i))
          State.empty
          (List.init nstate Fun.id)
      in
      (* overlap and non-state addresses both present *)
      let keep =
        List.init nkeep (fun i -> mk ~key:(Addr.Kint (2 * i)) "aws_eip" "pool")
      in
      let oracle =
        let keep_set = Addr.Set.of_list keep in
        List.filter
          (fun a -> not (Addr.Set.mem a keep_set))
          (List.map (fun (r : State.resource_state) -> r.State.addr)
             (State.resources state))
      in
      State.orphans state keep = oracle)

(* ------------------------------------------------------------------ *)
(* Sharded apply: byte identity across domain counts                   *)
(* ------------------------------------------------------------------ *)

let fresh_cloud () =
  Cloud.create
    ~config:(Cloudless_schema.Cloud_rules.config_with_checks ())
    ~seed:42 ()

let shard_digest (r : Shard.report) =
  let buf = Buffer.create 4096 in
  List.iter
    (fun a ->
      Buffer.add_string buf (Addr.to_string a);
      Buffer.add_char buf '\n')
    r.Shard.applied;
  Buffer.add_string buf (Printf.sprintf "%.17g\n" r.Shard.makespan);
  Buffer.add_string buf (State.to_string r.Shard.state);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let test_shard_domains_byte_identical () =
  let instances = Workload.fleet_instances ~fleets:4 ~resources:10_000 () in
  let plan = Plan.make ~state:State.empty instances in
  let run domains =
    let r =
      Shard.apply
        ~make_cloud:(fun _ -> fresh_cloud ())
        ~domains ~config:Executor.cloudless_config ~state:State.empty ~plan ()
    in
    if not (Shard.succeeded r) then Alcotest.fail "sharded apply failed";
    (r, shard_digest r)
  in
  let r1, d1 = run 1 in
  let _, d4 = run 4 in
  check int_ "one shard per fleet" 4 (List.length r1.Shard.shards);
  check int_ "all resources applied" 10_000 (List.length r1.Shard.applied);
  check Alcotest.string "domains 1 = domains 4, byte for byte" d1 d4;
  check int_ "merged state size" 10_000 (State.size r1.Shard.state)

let suites =
  [
    ( "raw_speed.intern",
      [
        Alcotest.test_case "basics" `Quick test_intern_basics;
        Alcotest.test_case "of_list" `Quick test_intern_of_list;
      ] );
    ( "raw_speed.plan",
      [
        qtest prop_exec_rounds_match_oracle;
        qtest prop_execution_graph_matches_reference;
        qtest prop_orphans_match_set_oracle;
        Alcotest.test_case "10k/1k scheduling order golden" `Quick
          test_exec_rounds_golden_10k;
      ] );
    ( "raw_speed.dag",
      [
        Alcotest.test_case "adversarial shapes" `Quick
          test_rounds_into_adversarial;
        qtest prop_rounds_into_matches_reference;
      ] );
    ( "raw_speed.workload",
      [
        Alcotest.test_case "fleet fast path = parsed text" `Quick
          test_fleet_fast_path;
        Alcotest.test_case "chain fast path = parsed text" `Quick
          test_chain_fast_path;
      ] );
    ( "raw_speed.journal",
      [
        qtest prop_journal_encoder_matches_reference;
        Alcotest.test_case "to_string = Reference.to_string" `Quick
          test_journal_to_string_matches_reference;
      ] );
    ( "raw_speed.shard",
      [
        Alcotest.test_case "10k fleet: domains 1 = domains 4" `Slow
          test_shard_domains_byte_identical;
      ] );
  ]
