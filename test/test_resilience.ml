(* E17 resilience tests: circuit-breaker state machine (unit + QCheck
   shadow model), the strict episode sub-grammar of the scenario DSL,
   the episode engine's windows/verdicts/quota floors, the executor's
   distinct outage diagnostic, scan shedding under an open breaker,
   and chaos determinism (same seed, byte-identical metrics). *)

open Cloudless_hcl
module Cloud = Cloudless_sim.Cloud
module Failure = Cloudless_sim.Failure
module Prng = Cloudless_sim.Prng
module Activity_log = Cloudless_sim.Activity_log
module State = Cloudless_state.State
module Plan = Cloudless_plan.Plan
module Executor = Cloudless_deploy.Executor
module Breaker = Cloudless_deploy.Breaker
module Control_plane = Cloudless_controlplane.Control_plane
module Fleet = Cloudless_controlplane.Fleet
module Shard = Cloudless_controlplane.Shard
module Scenario = Cloudless_controlplane.Scenario
module Metrics = Cloudless_obs.Metrics
module Cloud_rules = Cloudless_schema.Cloud_rules
module Err = Cloudless_error
module Smap = Value.Smap

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool
let string_ = Alcotest.string

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Breaker state machine                                               *)
(* ------------------------------------------------------------------ *)

let bcfg =
  { Breaker.failure_threshold = 3; cooldown = 10.; cooldown_factor = 2.;
    max_cooldown = 100. }

let k = ("create", "aws_instance")

let test_breaker_trip_cycle () =
  let b = Breaker.create ~config:bcfg () in
  let kind, rtype = k in
  check bool_ "fresh cell proceeds" true
    (Breaker.acquire b ~now:0. ~kind ~rtype = `Proceed);
  Breaker.failure b ~now:1. ~kind ~rtype;
  Breaker.failure b ~now:2. ~kind ~rtype;
  check bool_ "below threshold stays closed" true
    (Breaker.state b ~kind ~rtype = Breaker.Closed);
  Breaker.failure b ~now:3. ~kind ~rtype;
  check bool_ "threshold trips open" true
    (Breaker.state b ~kind ~rtype = Breaker.Open);
  (match Breaker.acquire b ~now:5. ~kind ~rtype with
  | `Reject d -> check bool_ "remaining cooldown" true (abs_float (d -. 8.) < 1e-9)
  | `Proceed -> Alcotest.fail "open cell granted a call");
  check int_ "rejection counted" 1 (Breaker.rejections b);
  (* cooldown elapsed: exactly one probe *)
  check bool_ "probe granted" true
    (Breaker.acquire b ~now:13. ~kind ~rtype = `Proceed);
  check bool_ "half open" true
    (Breaker.state b ~kind ~rtype = Breaker.Half_open);
  check bool_ "second probe rejected" true
    (match Breaker.acquire b ~now:13. ~kind ~rtype with
    | `Reject _ -> true
    | `Proceed -> false);
  (* failed probe re-trips with doubled cooldown *)
  Breaker.failure b ~now:14. ~kind ~rtype;
  check bool_ "re-tripped" true (Breaker.state b ~kind ~rtype = Breaker.Open);
  (match Breaker.next_probe_at b with
  | Some t -> check bool_ "cooldown doubled" true (abs_float (t -. 34.) < 1e-9)
  | None -> Alcotest.fail "no probe time while open");
  (* successful probe closes and resets the escalation *)
  check bool_ "second probe granted" true
    (Breaker.acquire b ~now:40. ~kind ~rtype = `Proceed);
  Breaker.success b ~now:41. ~kind ~rtype;
  check bool_ "closed after good probe" true
    (Breaker.state b ~kind ~rtype = Breaker.Closed);
  Breaker.failure b ~now:50. ~kind ~rtype;
  Breaker.failure b ~now:51. ~kind ~rtype;
  Breaker.failure b ~now:52. ~kind ~rtype;
  (match Breaker.next_probe_at b with
  | Some t ->
      check bool_ "escalation reset after close" true
        (abs_float (t -. 62.) < 1e-9)
  | None -> Alcotest.fail "no probe time after re-trip");
  check int_ "no violations in a clean run" 0 (Breaker.violations b)

let test_breaker_transitions_observed () =
  let log = ref [] in
  let b =
    Breaker.create ~config:bcfg
      ~on_transition:(fun ~kind:_ ~rtype:_ ~before ~after ~now:_ ->
        log := (before, after) :: !log)
      ()
  in
  let kind, rtype = k in
  for _ = 1 to 3 do Breaker.failure b ~now:0. ~kind ~rtype done;
  ignore (Breaker.acquire b ~now:20. ~kind ~rtype);
  Breaker.success b ~now:21. ~kind ~rtype;
  check bool_ "closed->open->half_open->closed" true
    (List.rev !log
    = [
        (Breaker.Closed, Breaker.Open);
        (Breaker.Open, Breaker.Half_open);
        (Breaker.Half_open, Breaker.Closed);
      ])

(* Shadow-model property: replay a random schedule of outcomes and
   clock advances against the breaker; every granted acquire must find
   the cell not Open (the note_issue tripwire), and every rejection
   must happen strictly inside the cooldown window. *)
let prop_never_proceed_while_open =
  QCheck.Test.make ~count:200 ~name:"breaker never grants while open"
    QCheck.(pair (int_range 0 1_000_000) (int_range 10 60))
    (fun (seed, steps) ->
      let rng = Prng.create seed in
      let b = Breaker.create ~config:bcfg () in
      let kind, rtype = k in
      let now = ref 0. in
      for _ = 1 to steps do
        now := !now +. Prng.float_range rng 0. 8.;
        match Breaker.acquire b ~now:!now ~kind ~rtype with
        | `Proceed ->
            Breaker.note_issue b ~kind ~rtype;
            if Prng.float_range rng 0. 1. < 0.6 then
              Breaker.failure b ~now:!now ~kind ~rtype
            else Breaker.success b ~now:!now ~kind ~rtype
        | `Reject _ -> ()
      done;
      Breaker.violations b = 0)

(* ------------------------------------------------------------------ *)
(* Episode engine                                                      *)
(* ------------------------------------------------------------------ *)

let test_episode_windows () =
  let e =
    Failure.episode ~rtype:"aws_instance" ~region:"us-east-1" ~magnitude:0.5
      ~start_:100. ~finish:200. Failure.Error_storm
  in
  check bool_ "inside window" true
    (Failure.episode_active e ~now:150. ~rtype:"aws_instance"
       ~region:"us-east-1");
  check bool_ "before window" false
    (Failure.episode_active e ~now:99. ~rtype:"aws_instance"
       ~region:"us-east-1");
  check bool_ "finish exclusive" false
    (Failure.episode_active e ~now:200. ~rtype:"aws_instance"
       ~region:"us-east-1");
  check bool_ "other rtype unaffected" false
    (Failure.episode_active e ~now:150. ~rtype:"aws_vpc" ~region:"us-east-1");
  check bool_ "other region unaffected" false
    (Failure.episode_active e ~now:150. ~rtype:"aws_instance"
       ~region:"eu-west-1")

let test_episode_verdicts () =
  let outage = Failure.episode ~start_:0. ~finish:100. Failure.Outage in
  let p = Prng.create 7 in
  (match
     Failure.episode_verdict [ outage ] p ~now:50. ~rtype:"aws_vpc"
       ~region:"us-east-1"
   with
  | Some (Failure.Ep_error _) -> ()
  | _ -> Alcotest.fail "outage must fail the write");
  check bool_ "outside window falls through" true
    (Failure.episode_verdict [ outage ] p ~now:150. ~rtype:"aws_vpc"
       ~region:"us-east-1"
    = None);
  let throttle =
    Failure.episode ~magnitude:42. ~start_:0. ~finish:100.
      Failure.Throttle_storm
  in
  (match
     Failure.episode_verdict [ throttle ] p ~now:10. ~rtype:"aws_vpc"
       ~region:"us-east-1"
   with
  | Some (Failure.Ep_throttle after) ->
      check bool_ "retry-after is the magnitude" true (after = 42.)
  | _ -> Alcotest.fail "throttle storm must throttle");
  (* error storms consume PRNG; same seed, same verdict sequence *)
  let storm =
    Failure.episode ~magnitude:0.5 ~start_:0. ~finish:100. Failure.Error_storm
  in
  let draw seed =
    let p = Prng.create seed in
    List.init 32 (fun _ ->
        Failure.episode_verdict [ storm ] p ~now:10. ~rtype:"aws_vpc"
          ~region:"us-east-1"
        <> None)
  in
  check bool_ "error-storm draws are deterministic" true (draw 3 = draw 3)

let test_quota_floor () =
  let cut rtype q =
    Failure.episode ?rtype ~magnitude:(float_of_int q) ~start_:0. ~finish:100.
      Failure.Quota_cut
  in
  check bool_ "lowest active floor wins" true
    (Failure.quota_floor
       [ cut None 8; cut (Some "aws_instance") 3 ]
       ~now:10. ~rtype:"aws_instance" ~region:"r"
    = Some 3);
  check bool_ "no active cut, no floor" true
    (Failure.quota_floor [ cut None 8 ] ~now:200. ~rtype:"aws_instance"
       ~region:"r"
    = None)

let test_cloud_episode_markers () =
  let cloud =
    Cloud.create ~config:(Cloud_rules.config_with_checks ()) ~seed:1 ()
  in
  Cloud.set_episodes cloud
    [ Failure.episode ~start_:5. ~finish:10. Failure.Outage ];
  Cloud.run_until_idle cloud;
  let markers =
    List.filter_map
      (fun (e : Activity_log.entry) ->
        match e.Activity_log.op with
        | Activity_log.Log_failure msg when contains ~sub:"episode" msg ->
            Some msg
        | _ -> None)
      (Activity_log.all (Cloud.log cloud))
  in
  check bool_ "start marker logged" true
    (List.exists (contains ~sub:"episode-start:outage") markers);
  check bool_ "end marker logged" true
    (List.exists (contains ~sub:"episode-end:outage") markers)

(* ------------------------------------------------------------------ *)
(* Scenario episode grammar: strict, typed, located                    *)
(* ------------------------------------------------------------------ *)

let parse_err src =
  match Scenario.parse ~file:"t.scn" src with
  | (_ : Scenario.t) -> Alcotest.fail "parse accepted a malformed scenario"
  | exception Err.Error d -> d

let test_episode_grammar_ok () =
  let scn =
    Scenario.parse
      "tenants = 4\n\
       breaker = on\n\
       calm_tenants = 2\n\
       episode = kind=outage start=100 end=200\n\
       episode = kind=error_storm rtype=aws_instance p=0.7 start=300 end=400\n\
       episode = kind=spot count=3 start=500\n"
  in
  check bool_ "breaker armed" true scn.Scenario.breaker;
  check int_ "calm tenants" 2 scn.Scenario.calm_tenants;
  check int_ "three episodes" 3 (List.length scn.Scenario.episodes);
  (match scn.Scenario.episodes with
  | [ outage; storm; spot ] ->
      check bool_ "outage kind" true (outage.Failure.ekind = Failure.Outage);
      check bool_ "storm magnitude" true (storm.Failure.emag = 0.7);
      check bool_ "storm rtype" true
        (storm.Failure.ertype = Some "aws_instance");
      check bool_ "spot count" true (spot.Failure.emag = 3.);
      check bool_ "spot window defaults past start" true
        (spot.Failure.efinish > spot.Failure.estart)
  | _ -> Alcotest.fail "episodes out of order")

let test_episode_grammar_errors () =
  let cases =
    [
      (* unknown episode sub-key, with the offending line located *)
      ("tenants = 2\nepisode = kind=outage start=1 end=2 blast=9\n",
       "unknown episode key", 2);
      ("episode = kind=meteor start=1 end=2\n", "unknown episode kind", 1);
      ("episode = kind=outage end=2\n", "requires start", 1);
      ("episode = kind=error_storm start=1 end=2\n", "requires p", 1);
      (* magnitudes are kind-checked *)
      ("episode = kind=outage start=1 end=2 p=0.5\n", "only applies", 1);
      ("episode = kind=outage start=5 end=2\n", "must be after", 1);
      ("episode = kind=outage start=abc end=2\n", "expects a number", 1);
      ("breaker = maybe\n", "breaker expects on|off", 1);
      (* the top-level grammar stays strict too *)
      ("chaos_monkey = on\n", "unknown scenario key", 1);
    ]
  in
  List.iter
    (fun (src, frag, line) ->
      let d = parse_err src in
      check string_ "code" "scenario-syntax" d.Err.Diagnostic.code;
      check bool_ "syntax stage" true
        (d.Err.Diagnostic.stage = Err.Diagnostic.Syntax);
      check bool_
        (Printf.sprintf "message %S mentions %S" d.Err.Diagnostic.message frag)
        true
        (contains ~sub:frag d.Err.Diagnostic.message);
      check bool_ "offending line located" true
        (contains ~sub:(Printf.sprintf "t.scn:%d:" line)
           d.Err.Diagnostic.message))
    cases

(* ------------------------------------------------------------------ *)
(* Executor: distinct outage diagnostic                                *)
(* ------------------------------------------------------------------ *)

let expand_src src =
  (Eval.expand ~env:Eval.default_env (Config.parse ~file:"t.tf" src)).Eval.instances

let vpc_src =
  {|
resource "aws_vpc" "main" {
  cidr_block = "10.0.0.0/16"
  region     = "us-east-1"
}
|}

let run_exhaustion ~with_breaker =
  let config =
    {
      (Cloud_rules.config_with_checks ()) with
      Cloud.failure =
        Failure.make ~transient_types:[ ("aws_vpc", "api down") ] ();
    }
  in
  let cloud = Cloud.create ~config ~seed:3 () in
  let plan = Plan.make ~state:State.empty (expand_src vpc_src) in
  let breaker =
    if with_breaker then
      Some
        (Breaker.create
           ~config:{ bcfg with Breaker.failure_threshold = 2 }
           ())
    else None
  in
  let report =
    Executor.apply cloud ~config:Executor.baseline_config ~state:State.empty
      ~plan ?breaker ()
  in
  List.map (fun d -> d.Err.Diagnostic.code) report.Executor.diagnostics

let test_outage_diagnostic () =
  (match run_exhaustion ~with_breaker:true with
  | [ code ] -> check string_ "outage-flavored exhaustion" "retries-exhausted-outage" code
  | codes ->
      Alcotest.fail
        (Printf.sprintf "expected one diagnostic, got [%s]"
           (String.concat "; " codes)));
  match run_exhaustion ~with_breaker:false with
  | [ code ] -> check string_ "generic exhaustion" "retries-exhausted" code
  | codes ->
      Alcotest.fail
        (Printf.sprintf "expected one diagnostic, got [%s]"
           (String.concat "; " codes))

(* ------------------------------------------------------------------ *)
(* Degraded mode: scan shedding + parked work drains                   *)
(* ------------------------------------------------------------------ *)

let shed_scenario =
  "tenants = 2\n\
   resources = 6\n\
   requests_per_tenant = 2\n\
   request_interval = 100\n\
   drift_events = 0\n\
   drift_period = 30\n\
   policy_period = 0\n\
   duration = 900\n\
   breaker = on\n\
   episode = kind=outage start=90 end=300\n"

let test_scan_shed_and_drain () =
  let scn = Scenario.parse shed_scenario in
  let cloud =
    Cloud.create ~config:(Cloud_rules.config_with_checks ()) ~seed:5 ()
  in
  let config = Scenario.service_config scn Control_plane.baseline_service in
  let cp = ref (Control_plane.create ~cloud config) in
  let _injections = Scenario.install scn cp in
  Control_plane.run !cp ~until:scn.Scenario.duration;
  let m = Control_plane.metrics !cp in
  check bool_ "breaker opened under outage" true
    (Metrics.counter m "breaker_opened" > 0);
  check bool_ "baseline sweeps shed while open" true
    (Metrics.counter m "scans_shed" > 0);
  check int_ "all requests eventually done" 4
    (Metrics.counter m "requests_done");
  check bool_ "degraded window entered" true
    (Metrics.counter m "degraded_entries" > 0);
  check bool_ "nothing parked at the end" true
    (List.for_all
       (fun s -> Shard.parked_work s = 0)
       [ Control_plane.shard !cp ])

(* ------------------------------------------------------------------ *)
(* Chaos determinism on the fleet                                      *)
(* ------------------------------------------------------------------ *)

let chaos_scenario =
  "tenants = 6\n\
   shards = 2\n\
   resources = 8\n\
   requests_per_tenant = 2\n\
   request_interval = 300\n\
   drift_events = 0\n\
   drift_period = 60\n\
   policy_period = 0\n\
   duration = 1000\n\
   breaker = on\n\
   calm_tenants = 1\n\
   episode = kind=outage start=20 end=120\n\
   episode = kind=error_storm rtype=aws_instance p=0.6 start=280 end=420\n\
   episode = kind=spot count=2 start=600\n"

let chaos_run () =
  let scn = Scenario.parse chaos_scenario in
  let cloud =
    Cloud.create ~config:(Cloud_rules.config_with_checks ()) ~seed:11 ()
  in
  let config = Scenario.service_config scn Shard.fleet_service in
  let fleet = ref (Fleet.create ~cloud ~shards:scn.Scenario.shards config) in
  let _injections = Scenario.install_fleet scn fleet in
  Fleet.run !fleet ~until:scn.Scenario.duration;
  !fleet

let test_chaos_determinism () =
  let a = Metrics.to_json (Fleet.metrics (chaos_run ())) in
  let b = Metrics.to_json (Fleet.metrics (chaos_run ())) in
  check bool_ "byte-identical snapshots" true (String.equal a b)

let test_chaos_converges () =
  let fleet = chaos_run () in
  let scn = Scenario.parse chaos_scenario in
  check int_ "managed rows" (scn.Scenario.tenants * scn.Scenario.resources)
    (Fleet.managed_resource_count fleet);
  let m = Fleet.metrics fleet in
  check int_ "requests done"
    (scn.Scenario.tenants * scn.Scenario.requests_per_tenant)
    (Metrics.counter m "requests_done");
  let violations =
    List.fold_left
      (fun acc s ->
        acc + match Shard.breaker s with Some b -> Breaker.violations b | None -> 0)
      0 (Fleet.shards fleet)
  in
  check int_ "no calls through an open breaker" 0 violations

(* ------------------------------------------------------------------ *)

let qtest = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "resilience.breaker",
      [
        Alcotest.test_case "trip/probe/close cycle" `Quick
          test_breaker_trip_cycle;
        Alcotest.test_case "transition observer" `Quick
          test_breaker_transitions_observed;
        qtest prop_never_proceed_while_open;
      ] );
    ( "resilience.episodes",
      [
        Alcotest.test_case "window matching" `Quick test_episode_windows;
        Alcotest.test_case "verdicts" `Quick test_episode_verdicts;
        Alcotest.test_case "quota floor" `Quick test_quota_floor;
        Alcotest.test_case "activity-log markers" `Quick
          test_cloud_episode_markers;
      ] );
    ( "resilience.scenario-grammar",
      [
        Alcotest.test_case "episode lines parse" `Quick
          test_episode_grammar_ok;
        Alcotest.test_case "malformed lines are located errors" `Quick
          test_episode_grammar_errors;
      ] );
    ( "resilience.degraded-mode",
      [
        Alcotest.test_case "outage diagnostic" `Quick test_outage_diagnostic;
        Alcotest.test_case "scan shed + drain" `Quick test_scan_shed_and_drain;
        Alcotest.test_case "chaos determinism" `Quick test_chaos_determinism;
        Alcotest.test_case "chaos convergence" `Quick test_chaos_converges;
      ] );
  ]
