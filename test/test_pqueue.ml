(* Tests for the shared keyed priority queue: ordering and tie-break
   properties under both orders, lazy deletion via tombstones, and the
   live-length accounting the executor's ready set relies on. *)

module Pq = Cloudless_sim.Pqueue

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool

let drain q =
  let rec go acc =
    match Pq.pop q with
    | None -> List.rev acc
    | Some (prio, key, payload) -> go ((prio, key, payload) :: acc)
  in
  go []

(* Reference order: sort (prio, insertion index) pairs the way the heap
   promises to pop them. *)
let expected_order order prios =
  let indexed = List.mapi (fun i p -> (p, i)) prios in
  let cmp (pa, ia) (pb, ib) =
    match order with
    | Pq.Min_first -> if pa <> pb then compare pa pb else compare ia ib
    | Pq.Max_first -> if pa <> pb then compare pb pa else compare ib ia
  in
  List.map snd (List.sort cmp indexed)

let prop_pop_sorted order name =
  QCheck.Test.make ~count:300 ~name
    QCheck.(list (float_range (-100.) 100.))
    (fun prios ->
      let q = Pq.create order in
      List.iteri (fun i p -> Pq.push q ~prio:p ~key:i i) prios;
      let popped = List.map (fun (_, _, i) -> i) (drain q) in
      popped = expected_order order prios)

let prop_min_sorted = prop_pop_sorted Pq.Min_first "Min_first pops (prio asc, seq asc)"
let prop_max_sorted = prop_pop_sorted Pq.Max_first "Max_first pops (prio desc, seq desc)"

(* All-equal priorities isolate the tie-break. *)
let test_ties_fifo () =
  let q = Pq.create Pq.Min_first in
  List.iter (fun i -> Pq.push q ~prio:1. ~key:i i) [ 0; 1; 2; 3; 4 ];
  check (Alcotest.list int_) "insertion order"
    [ 0; 1; 2; 3; 4 ]
    (List.map (fun (_, k, _) -> k) (drain q))

let test_ties_lifo () =
  let q = Pq.create Pq.Max_first in
  List.iter (fun i -> Pq.push q ~prio:1. ~key:i i) [ 0; 1; 2; 3; 4 ];
  check (Alcotest.list int_) "reverse insertion order"
    [ 4; 3; 2; 1; 0 ]
    (List.map (fun (_, k, _) -> k) (drain q))

let test_remove_tombstones () =
  let q = Pq.create Pq.Min_first in
  List.iter (fun i -> Pq.push q ~prio:(float_of_int i) ~key:i i) [ 0; 1; 2; 3; 4 ];
  check int_ "five live" 5 (Pq.length q);
  check bool_ "remove known" true (Pq.remove q 2);
  check bool_ "remove again fails" false (Pq.remove q 2);
  check bool_ "remove unknown fails" false (Pq.remove q 99);
  check int_ "four live" 4 (Pq.length q);
  check bool_ "gone from mem" false (Pq.mem q 2);
  check bool_ "others remain" true (Pq.mem q 3);
  check (Alcotest.list int_) "pop skips tombstone"
    [ 0; 1; 3; 4 ]
    (List.map (fun (_, k, _) -> k) (drain q));
  check bool_ "empty" true (Pq.is_empty q)

let test_remove_head_then_peek () =
  let q = Pq.create Pq.Min_first in
  Pq.push q ~prio:1. ~key:"a" ();
  Pq.push q ~prio:2. ~key:"b" ();
  ignore (Pq.remove q "a");
  (match Pq.peek q with
  | Some (p, k, ()) ->
      check (Alcotest.float 0.) "peek skips tombstoned head" 2. p;
      check Alcotest.string "key b" "b" k
  | None -> Alcotest.fail "expected an entry");
  check (Alcotest.option (Alcotest.float 0.)) "peek_prio" (Some 2.)
    (Pq.peek_prio q)

let test_peak_length () =
  let q = Pq.create Pq.Min_first in
  List.iter (fun i -> Pq.push q ~prio:(float_of_int i) ~key:i i) [ 0; 1; 2 ];
  ignore (Pq.pop q);
  ignore (Pq.pop q);
  List.iter (fun i -> Pq.push q ~prio:(float_of_int i) ~key:i i) [ 3; 4 ];
  check int_ "peak is high-water mark" 3 (Pq.peak_length q);
  check int_ "current length" 3 (Pq.length q)

(* Interleave pushes, pops, and removes against a naive sorted-list
   model.  Keys are unique (the insertion sequence number), mirroring
   how the executor's ready set uses the queue — under key reuse the
   lazy tombstone may resolve to a later entry, see the interface. *)
let prop_model =
  let op =
    QCheck.(
      oneof
        [
          map (fun p -> `Push p) (float_range 0. 50.);
          always `Pop;
          map (fun k -> `Remove k) (int_range 0 40);
        ])
  in
  QCheck.Test.make ~count:300 ~name:"matches a sorted-list model"
    (QCheck.list op)
    (fun ops ->
      let q = Pq.create Pq.Min_first in
      (* model: list of (prio, key) of live entries; key = seq, unique *)
      let model = ref [] in
      let seq = ref 0 in
      let model_sorted () =
        List.sort
          (fun (pa, ka) (pb, kb) ->
            if pa <> pb then compare pa pb else compare ka kb)
          !model
      in
      List.for_all
        (fun op ->
          match op with
          | `Push p ->
              Pq.push q ~prio:p ~key:!seq !seq;
              model := (p, !seq) :: !model;
              incr seq;
              Pq.length q = List.length !model
          | `Pop -> (
              match (Pq.pop q, model_sorted ()) with
              | None, [] -> true
              | Some (p, k, _), (mp, mk) :: rest ->
                  model := rest;
                  p = mp && k = mk
              | _ -> false)
          | `Remove k ->
              let had = List.exists (fun (_, mk) -> mk = k) !model in
              let removed = Pq.remove q k in
              if removed then
                model := List.filter (fun (_, mk) -> mk <> k) !model;
              removed = had
              && Pq.length q = List.length !model
              && Pq.mem q k = false)
        ops)

let qtest = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "sim.pqueue",
      [
        qtest prop_min_sorted;
        qtest prop_max_sorted;
        Alcotest.test_case "min ties are FIFO" `Quick test_ties_fifo;
        Alcotest.test_case "max ties are LIFO" `Quick test_ties_lifo;
        Alcotest.test_case "remove tombstones" `Quick test_remove_tombstones;
        Alcotest.test_case "peek skips tombstones" `Quick test_remove_head_then_peek;
        Alcotest.test_case "peak length" `Quick test_peak_length;
        qtest prop_model;
      ] );
  ]
