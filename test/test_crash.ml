(* Crash safety end to end: atomic state writes, the write-ahead
   deployment journal (round-trip, torn-tail tolerance, idempotent
   replay), kill-anywhere crash/resume convergence through the
   Lifecycle facade, retry-exhaustion diagnostics, and the CLI's
   `apply --resume` path. *)

open Cloudless_hcl
module Cloud = Cloudless_sim.Cloud
module Sim_failure = Cloudless_sim.Failure
module Activity_log = Cloudless_sim.Activity_log
module State = Cloudless_state.State
module Journal = Cloudless_state.Journal
module Plan = Cloudless_plan.Plan
module Executor = Cloudless_deploy.Executor
module Recovery = Cloudless_deploy.Recovery
module Diagnostic = Cloudless_validate.Diagnostic
module Lifecycle = Cloudless.Lifecycle
module Cli = Cloudless.Cli
module Io_util = Cloudless.Io_util
module Smap = Value.Smap

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool
let string_ = Alcotest.string

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let temp_path suffix =
  let path = Filename.temp_file "cloudless_crash" suffix in
  Sys.remove path;
  path

let addr rtype rname = Addr.make ~rtype ~rname ()

(* ------------------------------------------------------------------ *)
(* Atomic writes                                                       *)
(* ------------------------------------------------------------------ *)

let test_write_file_atomic () =
  let path = temp_path ".txt" in
  Io_util.write_file path "first";
  check string_ "fresh write lands" "first" (Io_util.read_file path);
  Io_util.write_file path "second";
  check string_ "overwrite lands" "second" (Io_util.read_file path);
  (* the temporary must never be left behind *)
  check bool_ "no .tmp residue" false (Sys.file_exists (path ^ ".tmp"));
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Journal serialization                                               *)
(* ------------------------------------------------------------------ *)

let sample_entries =
  let attrs =
    Smap.of_seq
      (List.to_seq
         [
           ("name", Value.Vstring "web \"quoted\"\n");
           ("count", Value.Vint 3);
           ("enabled", Value.Vbool true);
           ("tags", Value.Vlist [ Value.Vstring "a"; Value.Vstring "b" ]);
           ("nested", Value.Vmap (Smap.singleton "k" (Value.Vstring "v")));
           ("nothing", Value.Vnull);
         ])
  in
  [
    Journal.Run_started { engine = "cloudless"; changes = 2; time = 0. };
    Journal.Intent
      {
        Journal.op = 1;
        iaddr = addr "aws_vpc" "main";
        kind = Journal.Op_create;
        rtype = "aws_vpc";
        region = "us-east-1";
        payload = attrs;
        prior_cloud_id = None;
        deps = [ addr "aws_subnet" "s"; Addr.make ~rtype:"aws_eip" ~rname:"e" ~key:(Addr.Kint 2) () ];
        log_cursor = 7;
        itime = 1.5;
      };
    Journal.Outcome
      {
        Journal.oop = 1;
        oaddr = addr "aws_vpc" "main";
        okind = Journal.Op_create;
        ok = true;
        cloud_id = Some "vpc-000001";
        attrs;
        retried = false;
        reason = None;
        otime = 4.25;
      };
    Journal.Outcome
      {
        Journal.oop = 2;
        oaddr = addr "aws_subnet" "s";
        okind = Journal.Op_update;
        ok = false;
        cloud_id = None;
        attrs = Smap.empty;
        retried = true;
        reason = Some "throttled; retry after 1.0s";
        otime = 5.;
      };
    Journal.Run_finished { time = 9.75 };
  ]

let test_journal_round_trip () =
  let text = Journal.to_string sample_entries in
  let back = Journal.of_string text in
  check int_ "all entries survive" (List.length sample_entries)
    (List.length back);
  (* maps re-parsed from text can have a different internal tree shape,
     so equality is judged on the canonical rendering *)
  check string_ "render/parse/render is a fixpoint" text
    (Journal.to_string back)

let test_journal_torn_tail () =
  let text = Journal.to_string sample_entries in
  (* chop the file mid-way through the last line, as a crash during an
     append would *)
  let torn = String.sub text 0 (String.length text - 7) in
  let back = Journal.of_string torn in
  check int_ "only the torn line is dropped"
    (List.length sample_entries - 1)
    (List.length back)

let test_journal_file_load () =
  let path = temp_path ".journal" in
  let j = Journal.create ~path () in
  List.iter (Journal.append j) sample_entries;
  Journal.close j;
  check string_ "loaded = appended"
    (Journal.to_string sample_entries)
    (Journal.to_string (Journal.load path));
  Sys.remove path

let test_replay_idempotent () =
  let st1 = Journal.replay State.empty sample_entries in
  check int_ "create replayed" 1 (State.size st1);
  let r = Option.get (State.find_opt st1 (addr "aws_vpc" "main")) in
  check string_ "cloud id from outcome" "vpc-000001" r.State.cloud_id;
  check int_ "deps preserved" 2 (List.length r.State.deps);
  let st2 = Journal.replay st1 sample_entries in
  (* identical rows; only the state serial counter may tick *)
  let rows st =
    String.concat "\n"
      (List.filter
         (fun line -> not (contains ~sub:"serial" line))
         (String.split_on_char '\n' (State.to_string st)))
  in
  check string_ "replay is idempotent" (rows st1) (rows st2)

(* ------------------------------------------------------------------ *)
(* Kill-anywhere crash/resume through the Lifecycle                    *)
(* ------------------------------------------------------------------ *)

let fleet_src = Cloudless_workload.Workload.fleet ~resources:10 ()

let engine_creates cloud =
  List.length
    (List.filter
       (fun (e : Activity_log.entry) ->
         match (e.Activity_log.op, e.Activity_log.actor) with
         | Activity_log.Log_create, Activity_log.Iac_engine _ -> true
         | _ -> false)
       (Activity_log.all (Cloud.log cloud)))

let crash_and_resume ?mode ~src ~k () =
  let t = Lifecycle.create ~seed:42 ~engine:Executor.cloudless_config () in
  Lifecycle.enable_journal ?mode t;
  Lifecycle.set_crash t (Sim_failure.Crash_after k);
  match Lifecycle.deploy t src with
  | Ok _ -> (t, None) (* k past the last op *)
  | Error (Lifecycle.Crashed n) -> (
      match Lifecycle.resume t with
      | Ok (_report, rr) -> (t, Some (n, rr))
      | Error e -> Alcotest.failf "resume failed: %s" (Lifecycle.error_to_string e))
  | Error e -> Alcotest.failf "deploy failed: %s" (Lifecycle.error_to_string e)

let test_crash_resume_every_k () =
  for k = 0 to 10 do
    let t, crashed = crash_and_resume ~src:fleet_src ~k () in
    let cloud = Lifecycle.cloud t in
    let state = Lifecycle.state t in
    check int_ (Printf.sprintf "k=%d: all 10 tracked" k) 10 (State.size state);
    check int_
      (Printf.sprintf "k=%d: no orphans" k)
      0
      (List.length (Recovery.orphans cloud ~state));
    check int_
      (Printf.sprintf "k=%d: no duplicate creates" k)
      10 (engine_creates cloud);
    (match Lifecycle.plan t with
    | Ok (p, _) ->
        check bool_ (Printf.sprintf "k=%d: converged (empty plan)" k) true
          (Plan.is_empty p)
    | Error e -> Alcotest.failf "plan failed: %s" (Lifecycle.error_to_string e));
    if k < 10 then
      check bool_ (Printf.sprintf "k=%d: crash observed" k) true
        (crashed <> None)
  done

let test_crashed_error_shape () =
  let t = Lifecycle.create ~seed:42 () in
  Lifecycle.enable_journal t;
  Lifecycle.set_crash t (Sim_failure.Crash_after 1);
  match Lifecycle.deploy t fleet_src with
  | Error (Lifecycle.Crashed n as e) ->
      check int_ "died after 1 op" 1 n;
      check bool_ "message mentions the crash" true
        (contains ~sub:"crashed" (Lifecycle.error_to_string e));
      let d = List.hd (Lifecycle.error_diagnostics e) in
      check string_ "diagnostic code" "engine-crashed" d.Diagnostic.code
  | Ok _ -> Alcotest.fail "expected a crash"
  | Error e -> Alcotest.failf "wrong error: %s" (Lifecycle.error_to_string e)

(* Adoption must claim exactly the in-flight creates: with unbounded
   parallelism and a crash mid-fleet, the ops already submitted
   complete on the cloud and every one of them is adopted (not
   re-created), keeping total creates at the fleet size. *)
let test_adoption_accounting () =
  let _, crashed = crash_and_resume ~src:fleet_src ~k:5 () in
  match crashed with
  | Some (n, rr) ->
      check int_ "crash index honoured" 5 n;
      check bool_ "some creates were in flight" true
        (List.length rr.Recovery.adopted > 0);
      (* the crash op's own intent never reached the cloud *)
      check int_ "crash op re-planned" 1 (List.length rr.Recovery.replanned)
  | None -> Alcotest.fail "expected a crash at k=5"

(* ------------------------------------------------------------------ *)
(* Group-commit journal mode                                           *)
(* ------------------------------------------------------------------ *)

(* The E13 kill-anywhere sweep under group commit: intents batch behind
   one flush barrier and their cloud calls are withheld until it runs,
   so the write-ahead invariant holds batch-wise.  A crash may eat up to
   K not-yet-issued ops — recovery must replan those (no intent, no
   cloud activity) and adopt the issued ones, converging with zero
   orphans and zero duplicate creates at every kill point, for every
   batch size. *)
let test_group_crash_resume_every_k () =
  List.iter
    (fun batch ->
      for k = 0 to 10 do
        let t, _ =
          crash_and_resume ~mode:(Journal.Group batch) ~src:fleet_src ~k ()
        in
        let cloud = Lifecycle.cloud t in
        let state = Lifecycle.state t in
        let tag = Printf.sprintf "group %d, k=%d" batch k in
        check int_ (tag ^ ": all 10 tracked") 10 (State.size state);
        check int_ (tag ^ ": no orphans") 0
          (List.length (Recovery.orphans cloud ~state));
        check int_ (tag ^ ": no duplicate creates") 10 (engine_creates cloud);
        match Lifecycle.plan t with
        | Ok (p, _) ->
            check bool_ (tag ^ ": converged (empty plan)") true
              (Plan.is_empty p)
        | Error e ->
            Alcotest.failf "%s: plan failed: %s" tag
              (Lifecycle.error_to_string e)
      done)
    [ 1; 3; 64 ]

(* Disk fidelity of the crash window: nothing reaches the file between
   barriers, so abandoning a journal (= the process dying) leaves
   exactly the barrier history on disk — batched intents vanish without
   even a torn tail. *)
let test_group_abandon_disk_fidelity () =
  let intent op =
    Journal.Intent
      {
        Journal.op;
        iaddr = Addr.make ~rtype:"aws_eip" ~rname:"e" ~key:(Addr.Kint op) ();
        kind = Journal.Op_create;
        rtype = "aws_eip";
        region = "us-east-1";
        payload = Smap.empty;
        prior_cloud_id = None;
        deps = [];
        log_cursor = 0;
        itime = float_of_int op;
      }
  in
  let tags entries = List.map (function
    | Journal.Run_started _ -> "start"
    | Journal.Intent i -> Printf.sprintf "intent%d" i.Journal.op
    | Journal.Outcome _ -> "outcome"
    | Journal.Run_finished _ -> "finish"
    | Journal.Wave_mark _ -> "wave")
    entries
  in
  (* two intents below the batch cap of 3: abandoned with the batch *)
  let path = temp_path ".journal" in
  let j = Journal.create ~path ~mode:(Journal.Group 3) () in
  Journal.append j
    (Journal.Run_started { engine = "cloudless"; changes = 5; time = 0. });
  Journal.append j (intent 1);
  Journal.append j (intent 2);
  check
    Alcotest.(list string)
    "in-memory view still has the batch"
    [ "start"; "intent1"; "intent2" ]
    (tags (Journal.entries j));
  Journal.abandon j;
  check
    Alcotest.(list string)
    "disk = barrier history only" [ "start" ]
    (tags (Journal.load path));
  check
    Alcotest.(list string)
    "abandon trims the retained copy to the durable prefix" [ "start" ]
    (tags (Journal.entries j));
  Sys.remove path;
  (* a full batch barriers itself: all three intents survive the crash *)
  let path = temp_path ".journal" in
  let j = Journal.create ~path ~mode:(Journal.Group 3) () in
  Journal.append j
    (Journal.Run_started { engine = "cloudless"; changes = 5; time = 0. });
  List.iter (fun op -> Journal.append j (intent op)) [ 1; 2; 3; 4 ];
  Journal.abandon j;
  check
    Alcotest.(list string)
    "self-triggered barrier at the cap; the straggler dies"
    [ "start"; "intent1"; "intent2"; "intent3" ]
    (tags (Journal.load path));
  Sys.remove path;
  (* WAL mode: every intent is its own barrier — abandon loses nothing
     but a trailing outcome *)
  let path = temp_path ".journal" in
  let j = Journal.create ~path () in
  Journal.append j
    (Journal.Run_started { engine = "cloudless"; changes = 5; time = 0. });
  Journal.append j (intent 1);
  Journal.append j
    (Journal.Outcome
       {
         Journal.oop = 1;
         oaddr = addr "aws_eip" "e";
         okind = Journal.Op_create;
         ok = true;
         cloud_id = Some "eip-1";
         attrs = Smap.empty;
         retried = false;
         reason = None;
         otime = 2.;
       });
  Journal.abandon j;
  check
    Alcotest.(list string)
    "wal: intents durable, trailing outcome in the crash window"
    [ "start"; "intent1" ]
    (tags (Journal.load path));
  Sys.remove path

(* A clean group-commit run must land the same resources and state as
   WAL — the batching only moves flush boundaries, never the simulated
   schedule's outcome. *)
let test_group_clean_run_equals_wal () =
  let run mode =
    let t = Lifecycle.create ~seed:42 ~engine:Executor.cloudless_config () in
    Lifecycle.enable_journal ~mode t;
    match Lifecycle.deploy t fleet_src with
    | Ok report -> (t, report)
    | Error e -> Alcotest.failf "deploy failed: %s" (Lifecycle.error_to_string e)
  in
  let t_wal, r_wal = run Journal.Wal in
  let t_grp, r_grp = run (Journal.Group 4) in
  check
    Alcotest.(list string)
    "same applied set"
    (List.map Addr.to_string r_wal.Executor.applied)
    (List.map Addr.to_string r_grp.Executor.applied);
  check string_ "same final state"
    (State.to_string (Lifecycle.state t_wal))
    (State.to_string (Lifecycle.state t_grp));
  check (Alcotest.float 1e-9) "same makespan" r_wal.Executor.makespan
    r_grp.Executor.makespan;
  let unresolved t =
    match Lifecycle.journal t with
    | Some j -> List.length (Journal.unresolved (Journal.entries j))
    | None -> -1
  in
  check int_ "group journal fully resolved" 0 (unresolved t_grp)

(* ------------------------------------------------------------------ *)
(* Determinism + golden trace                                          *)
(* ------------------------------------------------------------------ *)

let chain3 =
  {|
resource "aws_vpc" "main" {
  cidr_block = "10.0.0.0/16"
  region     = "us-east-1"
}
resource "aws_subnet" "s" {
  vpc_id     = aws_vpc.main.id
  cidr_block = "10.0.1.0/24"
  region     = "us-east-1"
}
resource "aws_instance" "web" {
  ami           = "ami-123"
  instance_type = "t3.small"
  subnet_id     = aws_subnet.s.id
  region        = "us-east-1"
}
|}

let entry_tag = function
  | Journal.Run_started { engine; _ } -> "start:" ^ engine
  | Journal.Intent i ->
      Printf.sprintf "intent:%s:%s"
        (Journal.op_kind_to_string i.Journal.kind)
        (Addr.to_string i.Journal.iaddr)
  | Journal.Outcome o ->
      Printf.sprintf "outcome:%s:%s:%s"
        (Journal.op_kind_to_string o.Journal.okind)
        (Addr.to_string o.Journal.oaddr)
        (if o.Journal.ok then "ok" else "err")
  | Journal.Run_finished _ -> "finish"
  | Journal.Wave_mark { wave; wphase; _ } ->
      Printf.sprintf "wave:%d:%s" wave wphase

let journal_of t =
  match Lifecycle.journal t with
  | Some j -> Journal.entries j
  | None -> []

let test_determinism_and_golden () =
  let t1, _ = crash_and_resume ~src:chain3 ~k:2 () in
  let t2, _ = crash_and_resume ~src:chain3 ~k:2 () in
  check string_ "journals byte-identical"
    (Journal.to_string (journal_of t1))
    (Journal.to_string (journal_of t2));
  check string_ "final states byte-identical"
    (State.to_string (Lifecycle.state t1))
    (State.to_string (Lifecycle.state t2));
  (* the golden crash→resume→converge trace for a 3-deep chain killed
     at the third op: segment 1 creates vpc and subnet, dies holding
     the instance's intent; segment 2 adopts nothing new to create
     except the instance *)
  check
    Alcotest.(list string)
    "golden entry sequence"
    [
      "start:cloudless";
      "intent:create:aws_vpc.main";
      "outcome:create:aws_vpc.main:ok";
      "intent:create:aws_subnet.s";
      "outcome:create:aws_subnet.s:ok";
      "intent:create:aws_instance.web";
      (* — crash: no outcome for op 3 — *)
      "start:cloudless";
      "intent:create:aws_instance.web";
      "outcome:create:aws_instance.web:ok";
      "finish";
    ]
    (List.map entry_tag (journal_of t1))

(* ------------------------------------------------------------------ *)
(* Retry exhaustion                                                    *)
(* ------------------------------------------------------------------ *)

let test_retry_exhaustion () =
  let failure =
    Sim_failure.make
      ~transient_types:[ ("aws_subnet", "subnet API is melting") ]
      ()
  in
  let base = { Cloud.default_config with Cloud.failure } in
  let config = Cloudless_schema.Cloud_rules.config_with_checks ~base () in
  let cloud = Cloud.create ~config ~seed:42 () in
  let env = Eval.default_env in
  let instances =
    (Eval.expand ~env (Config.parse ~file:"t.tf" chain3)).Eval.instances
  in
  let plan = Plan.make ~state:State.empty instances in
  let journal = Journal.create () in
  let engine = { Executor.cloudless_config with Executor.max_retries = 2 } in
  let report =
    Executor.apply cloud ~config:engine ~state:State.empty ~plan ~journal ()
  in
  check int_ "vpc applied" 1 (List.length report.Executor.applied);
  check int_ "subnet failed" 1 (List.length report.Executor.failed);
  check int_ "instance skipped" 1 (List.length report.Executor.skipped);
  let d =
    match report.Executor.diagnostics with
    | [ d ] -> d
    | ds -> Alcotest.failf "expected 1 diagnostic, got %d" (List.length ds)
  in
  check string_ "diagnostic code" "retries-exhausted" d.Diagnostic.code;
  check bool_ "diagnostic carries the addr" true
    (d.Diagnostic.addr = Some (addr "aws_subnet" "s"));
  check bool_ "stage is deploy" true (d.Diagnostic.stage = Diagnostic.Deploy);
  (* the journal's view of the run: the vpc is safely recorded, the
     subnet's attempts are all failed outcomes, nothing is unresolved *)
  let replayed = Journal.replay State.empty (Journal.entries journal) in
  check int_ "replay recovers the vpc" 1 (State.size replayed);
  check bool_ "vpc in replayed state" true
    (State.find_opt replayed (addr "aws_vpc" "main") <> None);
  check int_ "no unresolved intents" 0
    (List.length (Journal.unresolved (Journal.entries journal)))

(* ------------------------------------------------------------------ *)
(* CLI --resume                                                        *)
(* ------------------------------------------------------------------ *)

let quiet_io () =
  let out = Buffer.create 256 and err = Buffer.create 256 in
  ( { Cli.out = Buffer.add_string out; err = Buffer.add_string err },
    fun () -> (Buffer.contents out, Buffer.contents err) )

let two_vpcs =
  {|
resource "aws_vpc" "a" {
  cidr_block = "10.0.0.0/16"
  region     = "us-east-1"
}
resource "aws_vpc" "b" {
  cidr_block = "10.1.0.0/16"
  region     = "us-east-1"
}
|}

let one_vpc =
  {|
resource "aws_vpc" "a" {
  cidr_block = "10.0.0.0/16"
  region     = "us-east-1"
}
|}

let temp_tf contents =
  let path = Filename.temp_file "cloudless_crash" ".tf" in
  Io_util.write_file path contents;
  path

let test_cli_apply_clears_journal () =
  let io, _ = quiet_io () in
  let state_path = temp_path ".cls" in
  let code = Cli.apply ~io ~file:(temp_tf two_vpcs) ~state_path () in
  check int_ "apply ok" 0 code;
  check bool_ "journal removed after a clean apply" false
    (Sys.file_exists (state_path ^ ".journal"))

let test_cli_resume_merges_journal () =
  let io, _ = quiet_io () in
  let state_path = temp_path ".cls" in
  (* a previous run applied vpc a only... *)
  check int_ "seed apply ok" 0
    (Cli.apply ~io ~file:(temp_tf one_vpc) ~state_path ());
  (* ...then a run creating vpc b crashed after journaling its outcome
     but before the end-of-run state write: fabricate that journal *)
  let attrs = Smap.singleton "cidr_block" (Value.Vstring "10.1.0.0/16") in
  let j = Journal.create ~path:(state_path ^ ".journal") () in
  Journal.append j
    (Journal.Run_started { engine = "cloudless"; changes = 1; time = 0. });
  Journal.append j
    (Journal.Intent
       {
         Journal.op = 1;
         iaddr = addr "aws_vpc" "b";
         kind = Journal.Op_create;
         rtype = "aws_vpc";
         region = "us-east-1";
         payload = attrs;
         prior_cloud_id = None;
         deps = [];
         log_cursor = 0;
         itime = 0.5;
       });
  Journal.append j
    (Journal.Outcome
       {
         Journal.oop = 1;
         oaddr = addr "aws_vpc" "b";
         okind = Journal.Op_create;
         ok = true;
         cloud_id = Some "vpc-9999";
         attrs = Smap.add "region" (Value.Vstring "us-east-1") attrs;
         retried = false;
         reason = None;
         otime = 2.;
       });
  Journal.close j;
  let io, dump = quiet_io () in
  let code =
    Cli.apply ~io ~resume:true ~file:(temp_tf two_vpcs) ~state_path ()
  in
  let out, _ = dump () in
  check int_ "resume exits 0" 0 code;
  check bool_ "reports the recovery" true
    (contains ~sub:"Resumed from journal: 1 completed operation(s)" out);
  (* the journaled create was trusted: nothing left to change *)
  check bool_ "no duplicate create" true (contains ~sub:"No changes" out);
  check bool_ "journal cleared" false
    (Sys.file_exists (state_path ^ ".journal"));
  let final = State.of_string ~file:state_path (Io_util.read_file state_path) in
  check int_ "both vpcs tracked" 2 (State.size final)

let test_cli_resume_without_journal () =
  let io, dump = quiet_io () in
  let state_path = temp_path ".cls" in
  let code =
    Cli.apply ~io ~resume:true ~file:(temp_tf one_vpc) ~state_path ()
  in
  let out, _ = dump () in
  check int_ "plain apply semantics" 0 code;
  check bool_ "says nothing to resume" true
    (contains ~sub:"No deployment journal found" out)

let suites =
  [
    ( "crash",
      [
        Alcotest.test_case "io_util: write_file is atomic" `Quick
          test_write_file_atomic;
        Alcotest.test_case "journal: entry round-trip" `Quick
          test_journal_round_trip;
        Alcotest.test_case "journal: torn tail tolerated" `Quick
          test_journal_torn_tail;
        Alcotest.test_case "journal: file append/load" `Quick
          test_journal_file_load;
        Alcotest.test_case "journal: replay is idempotent" `Quick
          test_replay_idempotent;
        Alcotest.test_case "lifecycle: crash+resume converges at every k"
          `Quick test_crash_resume_every_k;
        Alcotest.test_case "lifecycle: Crashed error shape" `Quick
          test_crashed_error_shape;
        Alcotest.test_case "recovery: adoption accounting" `Quick
          test_adoption_accounting;
        Alcotest.test_case "group commit: crash+resume converges at every k"
          `Quick test_group_crash_resume_every_k;
        Alcotest.test_case "group commit: abandon leaves the barrier history"
          `Quick test_group_abandon_disk_fidelity;
        Alcotest.test_case "group commit: clean run = wal" `Quick
          test_group_clean_run_equals_wal;
        Alcotest.test_case "golden crash->resume->converge trace" `Quick
          test_determinism_and_golden;
        Alcotest.test_case "executor: retry exhaustion diagnostics" `Quick
          test_retry_exhaustion;
        Alcotest.test_case "cli: clean apply clears the journal" `Quick
          test_cli_apply_clears_journal;
        Alcotest.test_case "cli: --resume merges the journal" `Quick
          test_cli_resume_merges_journal;
        Alcotest.test_case "cli: --resume without a journal" `Quick
          test_cli_resume_without_journal;
      ] );
  ]
